//! `hds-served`: the HiDeStore network daemon and its client.
//!
//! This crate turns the local repository engine into a network service over
//! the framed wire protocol of `hidestore-proto`:
//!
//! * [`serve`] starts the daemon — a `TcpListener` acceptor feeding a
//!   [`hidestore_sync::BoundedQueue`] of connections to a worker pool, each
//!   worker speaking the HELLO-negotiated protocol over one connection at a
//!   time. The returned [`ServerHandle`] exposes the bound address, live
//!   [`StatsSnapshot`] counters, graceful [`ServerHandle::request_shutdown`]
//!   / [`ServerHandle::join`], and a force-stop on drop.
//! * [`RemoteClient`] is the matching blocking client used by the
//!   `--remote` CLI paths and the test/bench harnesses.
//! * [`view`] builds the protocol's `List`/`Stats` response types from a
//!   repository, shared by the daemon and the local CLI's `--json` output.
//!
//! Concurrency and crash-safety are delegated downward: the repository is
//! held in a [`hidestore_core::RepositoryHandle`] (single writer lock,
//! concurrent snapshot readers, rollback-by-reopen on failed mutations), and
//! the commit journal underneath keeps the on-disk state atomic even if the
//! daemon is killed mid-mutation.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod client;
mod retry;
mod server;
mod session;
pub mod stats;
pub mod view;

pub use client::{default_net_timeout, BackupAttempt, ClientError, RemoteClient, RestoreAttempt};
pub use retry::{retryable, ResumeEvent, RetryClient, RetryCounters, RetryPolicy};
pub use server::{serve, ServerConfig, ServerError, ServerHandle, DATA_CHUNK};
pub use session::SessionTable;
pub use stats::{ServerStats, StatsSnapshot};

#[cfg(test)]
mod tests {
    use super::*;
    use hidestore_core::HiDeStoreConfig;
    use hidestore_proto::ErrorCode;
    use std::path::{Path, PathBuf};

    fn temp(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("hidestore-served-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn init_repo(dir: &Path) {
        HiDeStoreConfig::small_for_tests().save_to(dir).unwrap();
    }

    fn quiet_config() -> ServerConfig {
        ServerConfig {
            quiet: true,
            ..ServerConfig::default()
        }
    }

    #[test]
    fn ping_round_trip_and_graceful_shutdown() {
        let dir = temp("ping");
        init_repo(&dir);
        let handle = serve(&dir, quiet_config()).unwrap();
        let addr = handle.addr();
        let mut client = RemoteClient::connect(addr).unwrap();
        assert_eq!(client.version(), hidestore_proto::PROTO_VERSION);
        client.ping().unwrap();
        client.shutdown().unwrap();
        let stats = handle.join();
        assert!(stats.requests_ok >= 2, "ping + shutdown: {stats}");
        // A post-shutdown connect must be refused.
        assert!(RemoteClient::connect(addr).is_err());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn backup_then_restore_round_trips_bytes() {
        let dir = temp("roundtrip");
        init_repo(&dir);
        let handle = serve(&dir, quiet_config()).unwrap();
        let payload: Vec<u8> = (0..600_000u32).map(|i| (i * 31 % 251) as u8).collect();
        let mut client = RemoteClient::connect(handle.addr()).unwrap();
        let summary = client.backup_bytes(&payload).unwrap();
        assert_eq!(summary.version, 1);
        assert_eq!(summary.logical_bytes, payload.len() as u64);
        let mut out = Vec::new();
        let restored = client.restore_to(1, &mut out).unwrap();
        assert_eq!(out, payload);
        assert_eq!(restored.bytes_restored, payload.len() as u64);
        let list = client.list().unwrap();
        assert_eq!(list.versions.len(), 1);
        assert_eq!(list.versions[0].bytes, payload.len() as u64);
        client.shutdown().unwrap();
        handle.join();
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn unknown_version_is_a_typed_not_found() {
        let dir = temp("notfound");
        init_repo(&dir);
        let handle = serve(&dir, quiet_config()).unwrap();
        let mut client = RemoteClient::connect(handle.addr()).unwrap();
        for version in [0u32, 7] {
            let err = client.restore_to(version, &mut Vec::new()).unwrap_err();
            match err {
                ClientError::Remote(e) => assert_eq!(e.code, ErrorCode::NotFound),
                other => panic!("expected Remote(NotFound), got {other}"),
            }
        }
        // The connection survives typed errors.
        client.ping().unwrap();
        client.shutdown().unwrap();
        handle.join();
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn oversize_backup_stream_is_rejected() {
        let dir = temp("oversize");
        init_repo(&dir);
        let config = ServerConfig {
            limits: hidestore_proto::Limits {
                max_stream: 10_000,
                ..hidestore_proto::Limits::default()
            },
            ..quiet_config()
        };
        let handle = serve(&dir, config).unwrap();
        let mut client = RemoteClient::connect(handle.addr()).unwrap();
        let err = client.backup_bytes(&vec![0u8; 50_000]).unwrap_err();
        match err {
            ClientError::Remote(e) => assert_eq!(e.code, ErrorCode::TooLarge),
            other => panic!("expected Remote(TooLarge), got {other}"),
        }
        let stats = handle.shutdown_and_join();
        assert_eq!(stats.rejected_oversize, 1);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn drop_force_stops_the_server() {
        let dir = temp("drop");
        init_repo(&dir);
        let handle = serve(&dir, quiet_config()).unwrap();
        let addr = handle.addr();
        drop(handle);
        assert!(RemoteClient::connect(addr).is_err());
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
