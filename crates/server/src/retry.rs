//! Retrying, resuming client: [`RetryPolicy`] backoff + [`RetryClient`].
//!
//! The plain [`RemoteClient`](crate::RemoteClient) is one connection: any
//! transport fault kills the operation. [`RetryClient`] wraps it with the
//! full fault-tolerance loop:
//!
//! * **Retry classification.** Only failures the protocol marks transient
//!   are retried: transport/frame errors (the connection died — refused,
//!   reset, timed out, torn mid-frame) and ERROR frames whose
//!   [`ErrorCode::is_retryable`] holds (`busy`, `shutting-down`,
//!   `timeout`). A typed `malformed`/`not-found`/`conflict` answer is a
//!   real answer and surfaces immediately.
//! * **Decorrelated-jitter backoff.** Each wait is drawn uniformly from
//!   `[base, prev * 3]`, clamped to `max_delay` — attempts from many
//!   clients decorrelate instead of stampeding in lockstep. A `Busy`
//!   refusal's `retry_after_ms` hint raises the floor of the next wait.
//! * **Budgets.** At most `max_attempts` connection attempts and
//!   `overall_deadline` wall time; each attempt runs under the policy's
//!   per-attempt I/O timeout.
//! * **Idempotency + resume.** [`RetryClient::backup`] generates one
//!   [`SessionToken`] for the whole operation and drives the protocol's
//!   `BackupResume` flow, so a retry continues from the server's
//!   acknowledged offset and a commit that raced the lost acknowledgement
//!   is answered from the server's dedup cache — never committed twice.
//!   [`RetryClient::restore`] keeps the bytes already received and resumes
//!   with `RestoreResume` at that offset, re-transferring only the tail.

use std::net::ToSocketAddrs;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant, SystemTime};

use hidestore_netfault::{AnyStream, NetPlan, RealStream};
use hidestore_proto::{BackupSummary, Limits, RestoreSummary, SessionToken, TenantId};

use crate::client::{default_net_timeout, ClientError, RemoteClient};

/// Backoff, deadline, and jitter parameters for [`RetryClient`].
#[derive(Debug, Clone)]
pub struct RetryPolicy {
    /// Lower bound of every backoff wait.
    pub base_delay: Duration,
    /// Upper clamp on any single backoff wait.
    pub max_delay: Duration,
    /// Per-attempt I/O deadline handed to each fresh connection
    /// (`Duration::ZERO` disables it).
    pub attempt_timeout: Duration,
    /// Total wall-clock budget across all attempts of one operation.
    pub overall_deadline: Duration,
    /// Maximum connection attempts per operation (at least 1).
    pub max_attempts: u32,
    /// Seed for the deterministic jitter stream (tests pin it).
    pub seed: u64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            base_delay: Duration::from_millis(50),
            max_delay: Duration::from_secs(2),
            attempt_timeout: default_net_timeout(),
            overall_deadline: Duration::from_secs(60),
            max_attempts: 8,
            seed: 0x9E37_79B9_7F4A_7C15,
        }
    }
}

impl RetryPolicy {
    /// Variant with the given backoff range.
    #[must_use]
    pub fn with_delays(mut self, base: Duration, max: Duration) -> Self {
        self.base_delay = base;
        self.max_delay = max;
        self
    }

    /// Variant with the given per-attempt I/O deadline.
    #[must_use]
    pub fn with_attempt_timeout(mut self, timeout: Duration) -> Self {
        self.attempt_timeout = timeout;
        self
    }

    /// Variant with the given overall deadline and attempt cap.
    #[must_use]
    pub fn with_budget(mut self, overall: Duration, max_attempts: u32) -> Self {
        self.overall_deadline = overall;
        self.max_attempts = max_attempts.max(1);
        self
    }

    /// Variant with the given jitter seed.
    #[must_use]
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Runs `attempt` under this policy until it succeeds, fails
    /// non-retryably, or exhausts the attempt/deadline budget. Each call
    /// to `attempt` is one numbered try; `counters` records attempts,
    /// retries, and busy backoffs. Exposed so harnesses can script the
    /// attempt sequence without a live server.
    ///
    /// # Errors
    ///
    /// The last attempt's error once the budget is spent or the error is
    /// not retryable.
    pub fn run<T>(
        &self,
        counters: &mut RetryCounters,
        mut attempt: impl FnMut(u32) -> Result<T, ClientError>,
    ) -> Result<T, ClientError> {
        let started = Instant::now();
        let mut jitter = Jitter::new(self.seed);
        let mut prev_delay = self.base_delay;
        let max_attempts = self.max_attempts.max(1);
        let mut tries = 0u32;
        loop {
            tries += 1;
            counters.attempts += 1;
            let err = match attempt(tries) {
                Ok(value) => return Ok(value),
                Err(e) => e,
            };
            if !retryable(&err) || tries >= max_attempts {
                return Err(err);
            }
            let spent = started.elapsed();
            if spent >= self.overall_deadline {
                return Err(err);
            }
            counters.retries += 1;
            // Decorrelated jitter: uniform in [base, prev * 3], clamped.
            let hi = prev_delay
                .saturating_mul(3)
                .clamp(self.base_delay, self.max_delay);
            let mut delay = jitter.between(self.base_delay, hi);
            if let ClientError::Remote(w) = &err {
                if w.retry_after_ms > 0 {
                    counters.busy_backoffs += 1;
                    delay = delay.max(Duration::from_millis(u64::from(w.retry_after_ms)));
                }
            }
            prev_delay = delay;
            let remaining = self.overall_deadline.saturating_sub(spent);
            std::thread::sleep(delay.min(remaining));
        }
    }
}

/// Whether an error is worth a fresh attempt: transport/frame failures
/// (the connection is dead either way; the resumable protocol makes the
/// retry safe) and ERROR frames with a retryable [`ErrorCode`]. Protocol
/// violations and typed permanent answers are not retried.
///
/// [`ErrorCode`]: hidestore_proto::ErrorCode
#[must_use]
pub fn retryable(err: &ClientError) -> bool {
    match err {
        ClientError::Frame(_) => true,
        ClientError::Remote(e) => e.code.is_retryable(),
        ClientError::Protocol(_) => false,
    }
}

/// One successful resumed (or deduped) transfer leg, for asserting that a
/// resume re-transferred only the tail.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ResumeEvent {
    /// Byte offset the attempt continued from (`> 0` means bytes from an
    /// earlier attempt were NOT re-transferred).
    pub offset: u64,
    /// Bytes actually moved over the wire by this attempt.
    pub transferred: u64,
    /// Total logical bytes of the operation.
    pub total: u64,
    /// True when the server answered from its idempotency cache without
    /// accepting any bytes (the previous attempt had already committed).
    pub deduped: bool,
}

/// Observable accounting of one [`RetryClient`]'s lifetime.
#[derive(Debug, Clone, Default)]
pub struct RetryCounters {
    /// Connection attempts made (1 per try, including the first).
    pub attempts: u64,
    /// Attempts that followed a retryable failure.
    pub retries: u64,
    /// Backoffs whose floor was raised by a `Busy` `retry_after_ms` hint.
    pub busy_backoffs: u64,
    /// Every backup/restore attempt that completed with a non-zero resume
    /// offset or a dedup answer.
    pub resumes: Vec<ResumeEvent>,
}

/// A fault-tolerant client: reconnects, retries, and resumes operations
/// against an `hds-served` daemon according to a [`RetryPolicy`].
pub struct RetryClient {
    addr: String,
    limits: Limits,
    policy: RetryPolicy,
    fault: Option<NetPlan>,
    tenant: Option<TenantId>,
    counters: RetryCounters,
}

impl RetryClient {
    /// A retrying client for the daemon at `addr` (resolved per attempt,
    /// so the daemon may restart on the same address between retries).
    #[must_use]
    pub fn new(addr: impl Into<String>, policy: RetryPolicy) -> Self {
        RetryClient {
            addr: addr.into(),
            limits: Limits::default(),
            policy,
            fault: None,
            tenant: None,
            counters: RetryCounters::default(),
        }
    }

    /// Variant with explicit frame/stream limits.
    #[must_use]
    pub fn with_limits(mut self, limits: Limits) -> Self {
        self.limits = limits;
        self
    }

    /// Variant whose every operation is addressed to `tenant`. Each
    /// attempt re-applies the tenant after its fresh handshake; a peer
    /// too old for tenant addressing fails the attempt with a
    /// (non-retryable) protocol error.
    #[must_use]
    pub fn with_tenant(mut self, tenant: TenantId) -> Self {
        self.tenant = Some(tenant);
        self
    }

    /// Variant whose every connection is wrapped by `plan` — the chaos
    /// harness's hook for injecting client-side wire faults.
    #[must_use]
    pub fn with_fault(mut self, plan: NetPlan) -> Self {
        self.fault = Some(plan);
        self
    }

    /// The accounting accumulated so far.
    pub fn counters(&self) -> &RetryCounters {
        &self.counters
    }

    fn connect(&self) -> Result<RemoteClient<AnyStream>, ClientError> {
        let addr = self
            .addr
            .to_socket_addrs()
            .map_err(ClientError::from)?
            .next()
            .ok_or_else(|| ClientError::Protocol(format!("{} resolves to nothing", self.addr)))?;
        let tcp = RealStream::connect(addr)?.into_tcp();
        let stream = match &self.fault {
            Some(plan) => AnyStream::Fault(plan.wrap(tcp)),
            None => AnyStream::Real(RealStream::from_tcp(tcp)),
        };
        let mut client = RemoteClient::handshake(stream, self.limits, self.policy.attempt_timeout)?;
        if let Some(tenant) = &self.tenant {
            client.set_tenant(tenant.clone())?;
        }
        Ok(client)
    }

    /// Pings the daemon, retrying per policy.
    ///
    /// # Errors
    ///
    /// The final attempt's error once retries are exhausted.
    pub fn ping(&mut self) -> Result<(), ClientError> {
        let policy = self.policy.clone();
        let mut counters = std::mem::take(&mut self.counters);
        let result = policy.run(&mut counters, |_| {
            let mut client = self.connect()?;
            client.ping()
        });
        self.counters = counters;
        result
    }

    /// Fetches the version listing, retrying per policy.
    ///
    /// # Errors
    ///
    /// The final attempt's error once retries are exhausted.
    pub fn list(&mut self) -> Result<hidestore_proto::ListResponse, ClientError> {
        let policy = self.policy.clone();
        let mut counters = std::mem::take(&mut self.counters);
        let result = policy.run(&mut counters, |_| {
            let mut client = self.connect()?;
            client.list()
        });
        self.counters = counters;
        result
    }

    /// Streams `data` as a new backup version, retrying and resuming on
    /// transient failures. One idempotency token covers every attempt:
    /// the server continues from its acknowledged offset and never
    /// commits the token twice, even if the success acknowledgement
    /// itself was lost.
    ///
    /// # Errors
    ///
    /// The final attempt's error once retries are exhausted.
    pub fn backup(&mut self, data: &[u8]) -> Result<BackupSummary, ClientError> {
        let token = generate_token(self.policy.seed);
        let total = data.len() as u64;
        let policy = self.policy.clone();
        let mut counters = std::mem::take(&mut self.counters);
        let result = policy.run(&mut counters, |_| {
            let mut client = self.connect()?;
            let attempt = client.backup_resume(token, data)?;
            if attempt.resumed_at > 0 || attempt.deduped {
                self.counters.resumes.push(ResumeEvent {
                    offset: attempt.resumed_at,
                    transferred: attempt.sent,
                    total,
                    deduped: attempt.deduped,
                });
            }
            Ok(attempt.summary)
        });
        // Resume events recorded inside the closure landed on the (empty)
        // self.counters; merge them back under the swapped-out totals.
        counters.resumes.append(&mut self.counters.resumes);
        self.counters = counters;
        result
    }

    /// Restores `version` into a buffer, retrying and resuming on
    /// transient failures: bytes received before an interruption are kept
    /// and the next attempt asks the daemon to continue at that offset,
    /// so only the tail crosses the wire again.
    ///
    /// # Errors
    ///
    /// The final attempt's error once retries are exhausted.
    pub fn restore(&mut self, version: u32) -> Result<(Vec<u8>, RestoreSummary), ClientError> {
        let policy = self.policy.clone();
        let mut buf: Vec<u8> = Vec::new();
        let mut counters = std::mem::take(&mut self.counters);
        let result = policy.run(&mut counters, |_| {
            let offset = buf.len() as u64;
            let mut client = self.connect()?;
            let attempt = client.restore_resume(version, offset, &mut buf)?;
            if offset > 0 {
                self.counters.resumes.push(ResumeEvent {
                    offset,
                    transferred: attempt.received,
                    total: attempt.total_bytes,
                    deduped: false,
                });
            }
            Ok(attempt.summary)
        });
        counters.resumes.append(&mut self.counters.resumes);
        self.counters = counters;
        result.map(|summary| (buf, summary))
    }
}

/// Deterministic-enough unique token: a process-wide sequence number mixed
/// with the wall clock, the process id, and the policy seed through
/// splitmix64. Uniqueness (not unpredictability) is what the dedup
/// protocol needs.
fn generate_token(seed: u64) -> SessionToken {
    static SEQ: AtomicU64 = AtomicU64::new(0);
    let seq = SEQ.fetch_add(1, Ordering::Relaxed);
    let nanos = SystemTime::now()
        .duration_since(SystemTime::UNIX_EPOCH)
        .map(|d| d.as_nanos() as u64)
        .unwrap_or(0);
    let a = splitmix64(seed ^ nanos);
    let b = splitmix64(a ^ seq.wrapping_mul(0xA24B_AED4_963E_E407) ^ u64::from(std::process::id()));
    let mut token = [0u8; 16];
    token[..8].copy_from_slice(&a.to_le_bytes());
    token[8..].copy_from_slice(&b.to_le_bytes());
    token
}

fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Minimal deterministic uniform sampler for the jitter stream.
struct Jitter {
    state: u64,
}

impl Jitter {
    fn new(seed: u64) -> Self {
        Jitter {
            state: splitmix64(seed | 1),
        }
    }

    fn next_u64(&mut self) -> u64 {
        self.state = splitmix64(self.state);
        self.state
    }

    /// Uniform duration in `[lo, hi]` (returns `lo` when the range is
    /// empty or inverted).
    fn between(&mut self, lo: Duration, hi: Duration) -> Duration {
        let (lo_n, hi_n) = (lo.as_nanos() as u64, hi.as_nanos() as u64);
        if hi_n <= lo_n {
            return lo;
        }
        let span = hi_n - lo_n;
        Duration::from_nanos(lo_n + self.next_u64() % (span + 1))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hidestore_proto::{ErrorCode, WireError};

    fn fast_policy() -> RetryPolicy {
        RetryPolicy::default()
            .with_delays(Duration::from_millis(1), Duration::from_millis(5))
            .with_budget(Duration::from_secs(10), 6)
            .with_seed(7)
    }

    #[test]
    fn scripted_shutting_down_attempts_then_succeeds() {
        // The satellite scenario at unit level: a daemon restarting under
        // the client answers `shutting-down` twice, then a live "server"
        // accepts. The policy must retry through both refusals.
        let policy = fast_policy();
        let mut counters = RetryCounters::default();
        let result = policy.run(&mut counters, |try_no| {
            if try_no <= 2 {
                Err(ClientError::Remote(WireError::new(
                    ErrorCode::ShuttingDown,
                    "daemon is draining",
                )))
            } else {
                Ok(try_no)
            }
        });
        assert_eq!(result.unwrap(), 3);
        assert_eq!(counters.attempts, 3);
        assert_eq!(counters.retries, 2);
    }

    #[test]
    fn non_retryable_errors_surface_immediately() {
        let policy = fast_policy();
        let mut counters = RetryCounters::default();
        let result: Result<(), _> = policy.run(&mut counters, |_| {
            Err(ClientError::Remote(WireError::new(
                ErrorCode::NotFound,
                "no such version",
            )))
        });
        assert!(matches!(result, Err(ClientError::Remote(_))));
        assert_eq!(counters.attempts, 1, "permanent answers are not retried");
        assert_eq!(counters.retries, 0);
    }

    #[test]
    fn attempt_budget_bounds_the_loop() {
        let policy = fast_policy().with_budget(Duration::from_secs(10), 3);
        let mut counters = RetryCounters::default();
        let result: Result<(), _> = policy.run(&mut counters, |_| {
            Err(ClientError::Frame(hidestore_proto::FrameError::Io(
                std::io::Error::from(std::io::ErrorKind::ConnectionRefused),
            )))
        });
        assert!(result.is_err());
        assert_eq!(counters.attempts, 3);
    }

    #[test]
    fn busy_hint_raises_backoff_floor_and_counts() {
        let policy = fast_policy();
        let mut counters = RetryCounters::default();
        let started = Instant::now();
        let result = policy.run(&mut counters, |try_no| {
            if try_no == 1 {
                Err(ClientError::Remote(WireError::busy(30, "queue full")))
            } else {
                Ok(())
            }
        });
        result.unwrap();
        assert_eq!(counters.busy_backoffs, 1);
        assert!(
            started.elapsed() >= Duration::from_millis(30),
            "the retry_after hint must floor the wait"
        );
    }

    #[test]
    fn retry_classification_matches_the_taxonomy() {
        let io = |kind: std::io::ErrorKind| {
            ClientError::Frame(hidestore_proto::FrameError::Io(std::io::Error::from(kind)))
        };
        assert!(retryable(&io(std::io::ErrorKind::ConnectionRefused)));
        assert!(retryable(&io(std::io::ErrorKind::ConnectionReset)));
        assert!(retryable(&io(std::io::ErrorKind::TimedOut)));
        for (code, want) in [
            (ErrorCode::ShuttingDown, true),
            (ErrorCode::Busy, true),
            (ErrorCode::Timeout, true),
            (ErrorCode::Malformed, false),
            (ErrorCode::NotFound, false),
            (ErrorCode::Conflict, false),
            (ErrorCode::Internal, false),
        ] {
            assert_eq!(
                retryable(&ClientError::Remote(WireError::new(code, "x"))),
                want,
                "{code}"
            );
        }
        assert!(!retryable(&ClientError::Protocol("nonsense".into())));
    }

    #[test]
    fn jitter_is_deterministic_and_in_range() {
        let lo = Duration::from_millis(10);
        let hi = Duration::from_millis(90);
        let mut a = Jitter::new(42);
        let mut b = Jitter::new(42);
        for _ in 0..100 {
            let x = a.between(lo, hi);
            assert_eq!(x, b.between(lo, hi), "same seed, same stream");
            assert!(x >= lo && x <= hi);
        }
        assert_eq!(a.between(hi, lo), hi, "inverted range collapses to lo");
    }

    #[test]
    fn tokens_are_unique() {
        let mut seen = std::collections::HashSet::new();
        for _ in 0..1000 {
            assert!(seen.insert(generate_token(1)), "token collision");
        }
    }
}
