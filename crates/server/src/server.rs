//! The `hds-served` daemon: a thread-per-connection TCP server over the
//! framed wire protocol.
//!
//! # Architecture
//!
//! ```text
//!             acceptor thread                 worker pool (N threads)
//!   TcpListener --accept--> BoundedQueue --pop--> handle_connection
//!                           (hidestore-sync,       |  HELLO negotiation
//!                            backpressure on       |  request loop
//!                            accept bursts)        |  per-request log line
//!                                                  v
//!                                         RepositoryHandle
//!                                 (single writer-lock: mutations
//!                                  serialize; restores/listings run
//!                                  concurrently on snapshots)
//! ```
//!
//! * **Robustness.** Every connection has read/write timeouts; frames and
//!   streams are size-limited; a torn frame, CRC mismatch, or mid-stream
//!   disconnect aborts only that request. Mutations go through
//!   [`RepositoryHandle::write`], so a failed backup/prune is rolled back
//!   (the journal keeps disk atomic, the handle reloads memory) and the
//!   repository stays `hds-fsck`-clean.
//! * **Graceful shutdown.** [`ServerHandle::request_shutdown`] (also
//!   triggered by the protocol's `Shutdown` request) stops the acceptor via
//!   a wake connection, lets in-flight requests finish, refuses queued
//!   connections with a typed `shutting-down` error, and joins every
//!   thread. Dropping an un-joined handle force-cancels the queue instead
//!   (the `CancelGuard` path). There is no signal handler — the workspace
//!   is std-only — but an unannounced SIGTERM/SIGKILL is still safe: the
//!   commit journal makes every mutation atomic, so the next open recovers
//!   the last committed state.

use std::fmt;
use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::Path;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use hidestore_core::{HiDeStoreError, RepositoryHandle};
use hidestore_proto::{
    read_frame, write_frame, ErrorCode, Frame, FrameError, FrameKind, Hello, Limits, PruneSummary,
    Request, Response, RestoreSummary, VerifySummary, WireError,
};
use hidestore_restore::Faa;
use hidestore_storage::VersionId;
use hidestore_sync::{BoundedQueue, CancelGuard, ProducerGuard};

use crate::stats::{ServerStats, StatsSnapshot};
use crate::view;

/// Payload bytes per DATA frame when streaming restores to a client.
pub const DATA_CHUNK: usize = 256 * 1024;

/// Bytes of the restore cache each served restore gets (matches the local
/// CLI's default FAA cache).
const RESTORE_CACHE_BYTES: usize = 32 << 20;

/// Server configuration.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Address to bind, e.g. `127.0.0.1:0` for an ephemeral loopback port.
    pub bind: String,
    /// Worker threads (concurrent connections served). At least 1.
    pub workers: usize,
    /// Accepted connections queued ahead of the workers before the
    /// acceptor blocks (backpressure).
    pub queue_depth: usize,
    /// Per-connection read deadline; zero disables the timeout.
    pub read_timeout: Duration,
    /// Per-connection write deadline; zero disables the timeout.
    pub write_timeout: Duration,
    /// Frame/stream size limits enforced on everything received.
    pub limits: Limits,
    /// Suppress per-request log lines (tests, benchmarks).
    pub quiet: bool,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            bind: "127.0.0.1:0".into(),
            workers: 4,
            queue_depth: 16,
            read_timeout: Duration::from_secs(30),
            write_timeout: Duration::from_secs(30),
            limits: Limits::default(),
            quiet: false,
        }
    }
}

/// Errors starting the daemon.
#[derive(Debug)]
pub enum ServerError {
    /// Binding or configuring the listener failed.
    Io(io::Error),
    /// Opening the repository failed.
    Repo(HiDeStoreError),
}

impl fmt::Display for ServerError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServerError::Io(e) => write!(f, "listener error: {e}"),
            ServerError::Repo(e) => write!(f, "repository error: {e}"),
        }
    }
}

impl std::error::Error for ServerError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ServerError::Io(e) => Some(e),
            ServerError::Repo(e) => Some(e),
        }
    }
}

impl From<io::Error> for ServerError {
    fn from(e: io::Error) -> Self {
        ServerError::Io(e)
    }
}

impl From<HiDeStoreError> for ServerError {
    fn from(e: HiDeStoreError) -> Self {
        ServerError::Repo(e)
    }
}

/// State shared by the acceptor, the workers, and the handle.
struct Shared {
    repo: RepositoryHandle,
    queue: BoundedQueue<(TcpStream, SocketAddr)>,
    shutdown: AtomicBool,
    stats: ServerStats,
    config: ServerConfig,
    addr: SocketAddr,
}

impl Shared {
    fn shutting_down(&self) -> bool {
        self.shutdown.load(Ordering::SeqCst)
    }

    /// Sets the shutdown flag and pokes the blocking acceptor with a wake
    /// connection so it observes the flag immediately.
    fn trigger_shutdown(&self) {
        if self.shutdown.swap(true, Ordering::SeqCst) {
            return;
        }
        let mut wake = self.addr;
        if wake.ip().is_unspecified() {
            wake.set_ip(std::net::IpAddr::from([127, 0, 0, 1]));
        }
        if let Ok(stream) = TcpStream::connect_timeout(&wake, Duration::from_secs(1)) {
            drop(stream);
        }
    }

    fn log(&self, line: fmt::Arguments<'_>) {
        if !self.config.quiet {
            eprintln!("hds-served: {line}");
        }
    }
}

/// A running daemon. Keep it to observe stats and to shut the server down;
/// dropping it without [`ServerHandle::join`] force-stops the server.
pub struct ServerHandle {
    shared: Arc<Shared>,
    threads: Vec<JoinHandle<()>>,
}

impl ServerHandle {
    /// The address the listener actually bound (resolves ephemeral ports).
    pub fn addr(&self) -> SocketAddr {
        self.shared.addr
    }

    /// Point-in-time copy of the server counters.
    pub fn stats(&self) -> StatsSnapshot {
        self.shared.stats.snapshot()
    }

    /// How many failed mutations the repository handle rolled back.
    pub fn rollbacks(&self) -> u64 {
        self.shared.repo.rollbacks()
    }

    /// Begins a graceful shutdown: the acceptor stops, in-flight requests
    /// finish, queued connections are refused with `shutting-down`.
    /// Non-blocking; follow with [`ServerHandle::join`].
    pub fn request_shutdown(&self) {
        self.shared.trigger_shutdown();
    }

    /// Waits for the acceptor and every worker to finish (after a
    /// [`ServerHandle::request_shutdown`] or a protocol `Shutdown`
    /// request), returning the final counters.
    pub fn join(mut self) -> StatsSnapshot {
        for t in self.threads.drain(..) {
            let _ = t.join();
        }
        self.shared.stats.snapshot()
    }

    /// [`ServerHandle::request_shutdown`] followed by [`ServerHandle::join`].
    pub fn shutdown_and_join(self) -> StatsSnapshot {
        self.request_shutdown();
        self.join()
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        if self.threads.is_empty() {
            return;
        }
        // Force path: cancel the queue (dropping queued connections) and
        // wake the acceptor, then join. CancelGuard mirrors the pipelines'
        // error path — its drop unblocks any worker waiting on the queue.
        {
            let _cancel = CancelGuard(&self.shared.queue);
            self.shared.trigger_shutdown();
        }
        for t in self.threads.drain(..) {
            let _ = t.join();
        }
    }
}

/// Opens the repository at `repo_dir` and serves it until shutdown.
///
/// # Errors
///
/// Fails if the repository cannot be opened or the listener cannot bind.
pub fn serve(
    repo_dir: impl AsRef<Path>,
    config: ServerConfig,
) -> Result<ServerHandle, ServerError> {
    let repo = RepositoryHandle::open(repo_dir)?;
    let listener = TcpListener::bind(&config.bind)?;
    let addr = listener.local_addr()?;
    let workers = config.workers.max(1);
    let queue_depth = config.queue_depth.max(1);
    let shared = Arc::new(Shared {
        repo,
        queue: BoundedQueue::new(queue_depth, 1),
        shutdown: AtomicBool::new(false),
        stats: ServerStats::default(),
        config,
        addr,
    });

    let mut threads = Vec::with_capacity(workers + 1);
    {
        let shared = Arc::clone(&shared);
        threads.push(std::thread::spawn(move || acceptor(&listener, &shared)));
    }
    for _ in 0..workers {
        let shared = Arc::clone(&shared);
        threads.push(std::thread::spawn(move || worker(&shared)));
    }
    Ok(ServerHandle { shared, threads })
}

fn acceptor(listener: &TcpListener, shared: &Shared) {
    // Ensures workers observe end-of-stream even if the acceptor exits on
    // an unexpected path.
    let _done = ProducerGuard(&shared.queue);
    loop {
        match listener.accept() {
            Ok((stream, peer)) => {
                if shared.shutting_down() {
                    // Either the wake connection or a late client; both are
                    // dropped, and the listener closes with the loop.
                    break;
                }
                ServerStats::bump(&shared.stats.accepted);
                if shared.queue.push((stream, peer)).is_err() {
                    break; // queue cancelled (force shutdown)
                }
            }
            Err(_) if shared.shutting_down() => break,
            Err(_) => {
                // Transient accept failure (e.g. aborted connection);
                // keep serving.
            }
        }
    }
}

fn worker(shared: &Shared) {
    while let Some((mut stream, peer)) = shared.queue.pop() {
        if shared.shutting_down() {
            refuse_shutting_down(&mut stream, shared);
            continue;
        }
        handle_connection(&mut stream, peer, shared);
    }
}

/// Tells a queued-but-unserved client the daemon is draining, with a typed
/// error, instead of silently dropping the connection.
fn refuse_shutting_down(stream: &mut TcpStream, shared: &Shared) {
    let _ = stream.set_read_timeout(Some(Duration::from_millis(200)));
    let _ = stream.set_write_timeout(Some(Duration::from_millis(200)));
    // Consume the client's HELLO if it already sent one, then refuse.
    let _ = read_frame(stream, &shared.config.limits);
    let err = WireError::new(ErrorCode::ShuttingDown, "daemon is draining for shutdown");
    let _ = write_frame(stream, FrameKind::Error, &err.encode());
}

fn timeout_opt(d: Duration) -> Option<Duration> {
    (!d.is_zero()).then_some(d)
}

/// Reads one frame, returning `Ok(None)` when the peer closed the
/// connection cleanly at a frame boundary.
fn read_frame_opt(stream: &mut TcpStream, limits: &Limits) -> Result<Option<Frame>, FrameError> {
    let mut first = [0u8; 1];
    loop {
        match stream.read(&mut first) {
            Ok(0) => return Ok(None),
            Ok(_) => break,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(FrameError::Io(e)),
        }
    }
    let mut chained = (&first[..]).chain(&mut *stream);
    read_frame(&mut chained, limits).map(Some)
}

fn send_error(stream: &mut TcpStream, code: ErrorCode, message: impl Into<String>) {
    let err = WireError::new(code, message);
    let _ = write_frame(stream, FrameKind::Error, &err.encode());
}

/// Classifies a transport-level failure for the stats counters and log.
fn classify_transport(shared: &Shared, err: &FrameError) -> &'static str {
    if err.is_timeout() {
        ServerStats::bump(&shared.stats.timed_out);
        "timeout"
    } else {
        "disconnect"
    }
}

fn handle_connection(stream: &mut TcpStream, peer: SocketAddr, shared: &Shared) {
    let limits = shared.config.limits;
    let _ = stream.set_nodelay(true);
    if stream
        .set_read_timeout(timeout_opt(shared.config.read_timeout))
        .is_err()
        || stream
            .set_write_timeout(timeout_opt(shared.config.write_timeout))
            .is_err()
    {
        return;
    }

    // HELLO negotiation. A connection that closes without a byte (port
    // probe, liveness poll) is not an event worth logging.
    match read_frame_opt(stream, &limits) {
        Ok(None) => return,
        Ok(Some(frame)) if frame.kind == FrameKind::Hello => {
            let client = match Hello::decode(&frame.payload) {
                Ok(h) => h,
                Err(e) => {
                    ServerStats::bump(&shared.stats.requests_failed);
                    send_error(stream, ErrorCode::Malformed, format!("bad HELLO: {e}"));
                    return;
                }
            };
            match Hello::current().negotiate(&client) {
                Some(version) => {
                    let reply = Hello {
                        min_version: version,
                        max_version: version,
                    };
                    if write_frame(stream, FrameKind::Hello, &reply.encode()).is_err() {
                        return;
                    }
                }
                None => {
                    ServerStats::bump(&shared.stats.requests_failed);
                    send_error(
                        stream,
                        ErrorCode::Unsupported,
                        format!(
                            "no common protocol version: client {}..={}, server {}..={}",
                            client.min_version,
                            client.max_version,
                            hidestore_proto::MIN_PROTO_VERSION,
                            hidestore_proto::PROTO_VERSION,
                        ),
                    );
                    return;
                }
            }
        }
        Ok(Some(frame)) => {
            ServerStats::bump(&shared.stats.requests_failed);
            send_error(
                stream,
                ErrorCode::Malformed,
                format!("expected HELLO, got {}", frame.kind),
            );
            return;
        }
        Err(e) => {
            let kind = classify_transport(shared, &e);
            shared.log(format_args!("peer={peer} req=hello result={kind} ({e})"));
            return;
        }
    }

    // Request loop: one frame opens each request; the connection persists
    // until the peer closes, errors, or the daemon drains.
    loop {
        let frame = match read_frame_opt(stream, &limits) {
            Ok(None) => return,
            Ok(Some(f)) => f,
            Err(e) => {
                let kind = classify_transport(shared, &e);
                // A torn frame aborts the connection; nothing was mutated.
                ServerStats::bump(&shared.stats.requests_failed);
                shared.log(format_args!("peer={peer} req=? result={kind} ({e})"));
                if !matches!(e, FrameError::Io(_)) {
                    send_error(stream, ErrorCode::Malformed, format!("{e}"));
                }
                return;
            }
        };
        if frame.kind != FrameKind::Request {
            ServerStats::bump(&shared.stats.requests_failed);
            send_error(
                stream,
                ErrorCode::Malformed,
                format!("expected REQUEST, got {}", frame.kind),
            );
            return;
        }
        let request = match Request::decode(&frame.payload) {
            Ok(r) => r,
            Err(e) => {
                ServerStats::bump(&shared.stats.requests_failed);
                send_error(stream, ErrorCode::Malformed, format!("bad request: {e}"));
                return;
            }
        };

        let started = Instant::now();
        let name = request.name();
        let shutdown_requested = matches!(request, Request::Shutdown);
        match dispatch(request, stream, shared) {
            Outcome::Ok { detail } => {
                ServerStats::bump(&shared.stats.requests_ok);
                shared.log(format_args!(
                    "peer={peer} req={name} dur_ms={} result=ok{detail}",
                    started.elapsed().as_millis(),
                ));
            }
            Outcome::Failed { code, message } => {
                ServerStats::bump(&shared.stats.requests_failed);
                shared.log(format_args!(
                    "peer={peer} req={name} dur_ms={} result=error code={code} msg={message:?}",
                    started.elapsed().as_millis(),
                ));
                send_error(stream, code, message);
            }
            Outcome::Transport(e) => {
                ServerStats::bump(&shared.stats.requests_failed);
                let kind = classify_transport(shared, &e);
                shared.log(format_args!(
                    "peer={peer} req={name} dur_ms={} result={kind} ({e})",
                    started.elapsed().as_millis(),
                ));
                return;
            }
        }
        if shutdown_requested || shared.shutting_down() {
            return;
        }
    }
}

/// What one request dispatch produced.
enum Outcome {
    /// Response sent; `detail` is appended to the log line.
    Ok { detail: String },
    /// The request failed in a way the client can be told about.
    Failed { code: ErrorCode, message: String },
    /// The transport died mid-request; the connection is finished.
    Transport(FrameError),
}

fn repo_error_outcome(e: HiDeStoreError) -> Outcome {
    let code = match &e {
        HiDeStoreError::UnknownVersion(_) => ErrorCode::NotFound,
        HiDeStoreError::CannotExpireNewest { .. } => ErrorCode::Conflict,
        HiDeStoreError::PartialRestore { .. } => ErrorCode::Conflict,
        _ => ErrorCode::Internal,
    };
    Outcome::Failed {
        code,
        message: e.to_string(),
    }
}

fn send_response(stream: &mut TcpStream, response: &Response) -> Result<(), FrameError> {
    write_frame(stream, FrameKind::Response, &response.encode())
}

fn dispatch(request: Request, stream: &mut TcpStream, shared: &Shared) -> Outcome {
    match request {
        Request::Ping => match send_response(stream, &Response::Pong) {
            Ok(()) => Outcome::Ok {
                detail: String::new(),
            },
            Err(e) => Outcome::Transport(e),
        },
        Request::Backup => serve_backup(stream, shared),
        Request::Restore { version } => serve_restore(version, stream, shared),
        Request::List => {
            let list = match shared.repo.read(view::list_response) {
                Ok(l) => l,
                Err(e) => return repo_error_outcome(e),
            };
            match send_response(stream, &Response::ListOk(list)) {
                Ok(()) => Outcome::Ok {
                    detail: String::new(),
                },
                Err(e) => Outcome::Transport(e),
            }
        }
        Request::Stats => {
            let stats = match shared.repo.read(view::stats_response) {
                Ok(Ok(s)) => s,
                Ok(Err(e)) | Err(e) => return repo_error_outcome(e),
            };
            match send_response(stream, &Response::StatsOk(stats)) {
                Ok(()) => Outcome::Ok {
                    detail: String::new(),
                },
                Err(e) => Outcome::Transport(e),
            }
        }
        Request::Prune { keep_last } => serve_prune(keep_last, stream, shared),
        Request::Verify => serve_verify(stream, shared),
        Request::Shutdown => {
            // Acknowledge first, then trigger: the client gets its reply
            // even though the daemon is now draining.
            let result = send_response(stream, &Response::ShutdownOk);
            shared.trigger_shutdown();
            match result {
                Ok(()) => Outcome::Ok {
                    detail: " (draining)".into(),
                },
                Err(e) => Outcome::Transport(e),
            }
        }
    }
}

fn serve_backup(stream: &mut TcpStream, shared: &Shared) -> Outcome {
    let limits = shared.config.limits;
    let mut data: Vec<u8> = Vec::new();
    loop {
        let frame = match read_frame(stream, &limits) {
            Ok(f) => f,
            // A disconnect or torn frame mid-stream: nothing has touched
            // the repository yet, so the request simply aborts.
            Err(e) => return Outcome::Transport(e),
        };
        match frame.kind {
            FrameKind::Data => {
                if data.len() as u64 + frame.payload.len() as u64 > limits.max_stream {
                    ServerStats::bump(&shared.stats.rejected_oversize);
                    return Outcome::Failed {
                        code: ErrorCode::TooLarge,
                        message: format!(
                            "backup stream exceeds the {}-byte limit",
                            limits.max_stream
                        ),
                    };
                }
                ServerStats::add(&shared.stats.bytes_in, frame.payload.len() as u64);
                data.extend_from_slice(&frame.payload);
            }
            FrameKind::End => break,
            other => {
                return Outcome::Failed {
                    code: ErrorCode::Malformed,
                    message: format!("expected DATA or END, got {other}"),
                }
            }
        }
    }
    // The stream arrived intact; commit it. A failure rolls the repository
    // back to the previous committed state (journal + handle reopen).
    let result = shared.repo.write(|s| s.backup(&data));
    match result {
        Ok(stats) => {
            let summary = hidestore_proto::BackupSummary {
                version: stats.version.get(),
                logical_bytes: stats.logical_bytes,
                stored_bytes: stats.stored_bytes,
                chunks: stats.chunks,
                unique_chunks: stats.unique_chunks,
                cold_chunks: stats.cold_chunks,
            };
            match send_response(stream, &Response::BackupDone(summary)) {
                Ok(()) => Outcome::Ok {
                    detail: format!(
                        " version=V{} bytes={} stored={}",
                        summary.version, summary.logical_bytes, summary.stored_bytes
                    ),
                },
                Err(e) => Outcome::Transport(e),
            }
        }
        Err(e) => {
            ServerStats::bump(&shared.stats.rolled_back);
            repo_error_outcome(e)
        }
    }
}

/// An `io::Write` that packages restore output into DATA frames.
struct DataFrameWriter<'a> {
    stream: &'a mut TcpStream,
    buf: Vec<u8>,
    bytes_out: u64,
}

impl<'a> DataFrameWriter<'a> {
    fn new(stream: &'a mut TcpStream) -> Self {
        DataFrameWriter {
            stream,
            buf: Vec::with_capacity(DATA_CHUNK),
            bytes_out: 0,
        }
    }

    fn emit(&mut self) -> io::Result<()> {
        if self.buf.is_empty() {
            return Ok(());
        }
        write_frame(self.stream, FrameKind::Data, &self.buf).map_err(|e| match e {
            FrameError::Io(e) => e,
            other => io::Error::other(other.to_string()),
        })?;
        self.bytes_out += self.buf.len() as u64;
        self.buf.clear();
        Ok(())
    }
}

impl Write for DataFrameWriter<'_> {
    fn write(&mut self, data: &[u8]) -> io::Result<usize> {
        self.buf.extend_from_slice(data);
        if self.buf.len() >= DATA_CHUNK {
            self.emit()?;
        }
        Ok(data.len())
    }

    fn flush(&mut self) -> io::Result<()> {
        self.emit()
    }
}

/// What happened inside the snapshot closure of a served restore.
enum ServedRestore {
    Done {
        summary: RestoreSummary,
        bytes_out: u64,
    },
    RepoError {
        error: HiDeStoreError,
        streamed: bool,
    },
    Transport(io::Error),
}

fn serve_restore(version: u32, stream: &mut TcpStream, shared: &Shared) -> Outcome {
    if version == 0 {
        return Outcome::Failed {
            code: ErrorCode::NotFound,
            message: "version ids are 1-based".into(),
        };
    }
    let v = VersionId::new(version);
    let served = shared.repo.read_snapshot(|system| {
        let Some(recipe) = system.recipes().get(v) else {
            return Ok(ServedRestore::RepoError {
                error: HiDeStoreError::UnknownVersion(v),
                streamed: false,
            });
        };
        let total_bytes = recipe.total_bytes();
        if let Err(e) = send_response(stream, &Response::RestoreStarted { total_bytes }) {
            return Ok(ServedRestore::Transport(match e {
                FrameError::Io(e) => e,
                other => io::Error::other(other.to_string()),
            }));
        }
        let conc = system.config().restore;
        let mut writer = DataFrameWriter::new(stream);
        let mut cache = Faa::new(RESTORE_CACHE_BYTES);
        match system
            .restore_with(v, &mut cache, &mut writer, &conc)
            .and_then(|report| {
                writer
                    .flush()
                    .map_err(|e| HiDeStoreError::Storage(hidestore_storage::StorageError::Io(e)))?;
                Ok(report)
            }) {
            Ok(report) => Ok(ServedRestore::Done {
                summary: RestoreSummary {
                    bytes_restored: report.bytes_restored,
                    container_reads: report.container_reads,
                    cache_hits: report.cache_hits,
                    cache_misses: report.cache_misses,
                },
                bytes_out: writer.bytes_out,
            }),
            Err(error) => Ok(ServedRestore::RepoError {
                error,
                streamed: true,
            }),
        }
    });
    match served {
        Ok(ServedRestore::Done { summary, bytes_out }) => {
            ServerStats::add(&shared.stats.bytes_out, bytes_out);
            let finish = write_frame(stream, FrameKind::End, &[])
                .and_then(|()| send_response(stream, &Response::RestoreDone(summary)));
            match finish {
                Ok(()) => Outcome::Ok {
                    detail: format!(
                        " version=V{version} bytes={} reads={}",
                        summary.bytes_restored, summary.container_reads
                    ),
                },
                Err(e) => Outcome::Transport(e),
            }
        }
        Ok(ServedRestore::RepoError { error, streamed }) => {
            // If DATA frames already went out, the ERROR frame tells the
            // client the stream is aborted (it discards its .tmp output).
            let _ = streamed;
            repo_error_outcome(error)
        }
        Ok(ServedRestore::Transport(e)) => Outcome::Transport(FrameError::Io(e)),
        Err(e) => repo_error_outcome(e),
    }
}

fn serve_prune(keep_last: u32, stream: &mut TcpStream, shared: &Shared) -> Outcome {
    if keep_last == 0 {
        return Outcome::Failed {
            code: ErrorCode::Conflict,
            message: "must keep at least one version".into(),
        };
    }
    let newest = match shared.repo.read(|s| s.versions().last().copied()) {
        Ok(n) => n,
        Err(e) => return repo_error_outcome(e),
    };
    let summary = match newest {
        Some(newest) if newest.get() > keep_last => {
            let result = shared
                .repo
                .write(|s| s.delete_expired(VersionId::new(newest.get() - keep_last)));
            match result {
                Ok(report) => PruneSummary {
                    versions_removed: report.versions_removed,
                    containers_dropped: report.containers_dropped,
                    bytes_reclaimed: report.bytes_reclaimed,
                },
                Err(e) => {
                    ServerStats::bump(&shared.stats.rolled_back);
                    return repo_error_outcome(e);
                }
            }
        }
        // Empty repository or nothing old enough: a successful no-op.
        _ => PruneSummary::default(),
    };
    match send_response(stream, &Response::PruneOk(summary)) {
        Ok(()) => Outcome::Ok {
            detail: format!(" removed={}", summary.versions_removed),
        },
        Err(e) => Outcome::Transport(e),
    }
}

fn serve_verify(stream: &mut TcpStream, shared: &Shared) -> Outcome {
    let report = shared.repo.read_snapshot(|s| s.scrub());
    match report {
        Ok(report) => {
            let summary = VerifySummary {
                containers_checked: report.containers_checked,
                chunks_checked: report.chunks_checked,
                recipes_checked: report.recipes_checked,
                corrupt_chunks: report.corrupt_chunks.clone(),
            };
            let clean = summary.is_clean();
            match send_response(stream, &Response::VerifyOk(summary)) {
                Ok(()) => Outcome::Ok {
                    detail: format!(" clean={clean}"),
                },
                Err(e) => Outcome::Transport(e),
            }
        }
        Err(e) => repo_error_outcome(e),
    }
}
