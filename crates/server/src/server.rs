//! The `hds-served` daemon: a thread-per-connection TCP server over the
//! framed wire protocol.
//!
//! # Architecture
//!
//! ```text
//!             acceptor thread                 worker pool (N threads)
//!   TcpListener --accept--> BoundedQueue --pop--> handle_connection
//!                           (hidestore-sync,       |  HELLO negotiation
//!                            backpressure on       |  request loop
//!                            accept bursts)        |  per-request log line
//!                                                  v
//!                                          TenantRegistry
//!                                (tenant id -> RepositoryHandle via a
//!                                 bounded LRU; each tenant has its own
//!                                 writer lock, so only same-tenant
//!                                 mutations serialize — restores and
//!                                 listings run concurrently on
//!                                 snapshots)
//! ```
//!
//! * **Robustness.** Every connection has read/write timeouts; frames and
//!   streams are size-limited; a torn frame, CRC mismatch, or mid-stream
//!   disconnect aborts only that request. Mutations go through
//!   [`RepositoryHandle::write`], so a failed backup/prune is rolled back
//!   (the journal keeps disk atomic, the handle reloads memory) and the
//!   repository stays `hds-fsck`-clean.
//! * **Graceful shutdown.** [`ServerHandle::request_shutdown`] (also
//!   triggered by the protocol's `Shutdown` request) stops the acceptor via
//!   a wake connection, lets in-flight requests finish, refuses queued
//!   connections with a typed `shutting-down` error, and joins every
//!   thread. Dropping an un-joined handle force-cancels the queue instead
//!   (the `CancelGuard` path). There is no signal handler — the workspace
//!   is std-only — but an unannounced SIGTERM/SIGKILL is still safe: the
//!   commit journal makes every mutation atomic, so the next open recovers
//!   the last committed state.

use std::fmt;
use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::Path;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex, MutexGuard};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use hidestore_core::{HiDeStoreConfig, HiDeStoreError};
use hidestore_netfault::{NetPlan, NetStream, RealStream};
use hidestore_proto::{
    read_frame, write_frame, ErrorCode, Frame, FrameError, FrameKind, Hello, Limits, PruneSummary,
    Request, Response, RestoreSummary, SessionToken, TenantId, TenantListEntry, TenantListResponse,
    TenantStatsEntry, TenantStatsResponse, VerifySummary, WireError,
};
use hidestore_restore::Faa;
use hidestore_storage::VersionId;
use hidestore_sync::{BoundedQueue, CancelGuard, ProducerGuard, TryPushError};
use hidestore_tenant::{RegistryOptions, TenantError, TenantQuota, TenantRegistry};

use crate::session::SessionTable;
use crate::stats::{ServerStats, StatsSnapshot, TenantStats, TenantStatsSnapshot};
use crate::view;

/// Payload bytes per DATA frame when streaming restores to a client.
pub const DATA_CHUNK: usize = 256 * 1024;

/// Bytes of the restore cache each served restore gets (matches the local
/// CLI's default FAA cache).
const RESTORE_CACHE_BYTES: usize = 32 << 20;

/// Server configuration.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Address to bind, e.g. `127.0.0.1:0` for an ephemeral loopback port.
    pub bind: String,
    /// Worker threads (concurrent connections served). At least 1.
    pub workers: usize,
    /// Accepted connections the admission gate queues ahead of the
    /// workers; when it is full, further connections are shed with a
    /// retryable `busy` refusal instead of queueing without bound.
    pub queue_depth: usize,
    /// Per-connection read deadline. `None` inherits the default chain
    /// (`HDS_NET_TIMEOUT` env, then the repository's `net_timeout` config
    /// key, then 30 s); `Some(Duration::ZERO)` disables the timeout.
    pub read_timeout: Option<Duration>,
    /// Per-connection write deadline; resolution as `read_timeout`.
    pub write_timeout: Option<Duration>,
    /// Frame/stream size limits enforced on everything received.
    pub limits: Limits,
    /// Suppress per-request log lines (tests, benchmarks).
    pub quiet: bool,
    /// Deterministic network fault plan applied to every served
    /// connection's wire I/O (chaos tests); `None` serves plain TCP.
    pub fault: Option<NetPlan>,
    /// Maximum parked resumable sessions held at once (LRU-evicted).
    pub max_sessions: usize,
    /// Idle lifetime of a parked/committed session entry; zero never
    /// expires.
    pub session_ttl: Duration,
    /// Backoff hint (milliseconds) sent with `busy` refusals.
    pub busy_retry_after_ms: u32,
    /// Serve the directory as a multi-tenant root (`<dir>/tenants/<id>/`,
    /// one repository per tenant) instead of a single legacy repository
    /// mapped to the `default` tenant.
    pub tenants_root: bool,
    /// Soft cap on concurrently open tenant repository handles (tenant
    /// roots; clamped to at least 1). Idle handles beyond the cap are
    /// evicted least-recently-used.
    pub max_live_tenants: usize,
    /// Whether a backup against an absent tenant creates its repository
    /// from the template config (tenant roots only; read paths never
    /// create).
    pub auto_create_tenants: bool,
    /// Quota applied to every tenant without an explicit override. The
    /// zero default is unlimited.
    pub default_quota: TenantQuota,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            bind: "127.0.0.1:0".into(),
            workers: 4,
            queue_depth: 16,
            read_timeout: None,
            write_timeout: None,
            limits: Limits::default(),
            quiet: false,
            fault: None,
            max_sessions: 64,
            session_ttl: Duration::from_secs(300),
            busy_retry_after_ms: 100,
            tenants_root: false,
            max_live_tenants: 8,
            auto_create_tenants: true,
            default_quota: TenantQuota::UNLIMITED,
        }
    }
}

/// Resolves a configured deadline against the default chain: an explicit
/// `Some` wins, else `HDS_NET_TIMEOUT` (whole seconds, non-numeric
/// ignored), else the repository's persisted default. A zero result
/// means "no timeout" and becomes `None` for the socket API.
fn resolve_timeout(explicit: Option<Duration>, repo_default_secs: u64) -> Option<Duration> {
    let resolved = explicit.unwrap_or_else(|| match std::env::var("HDS_NET_TIMEOUT") {
        Ok(value) => match value.trim().parse::<u64>() {
            Ok(secs) => Duration::from_secs(secs),
            Err(_) => Duration::from_secs(repo_default_secs),
        },
        Err(_) => Duration::from_secs(repo_default_secs),
    });
    (!resolved.is_zero()).then_some(resolved)
}

/// Errors starting the daemon.
#[derive(Debug)]
pub enum ServerError {
    /// Binding or configuring the listener failed.
    Io(io::Error),
    /// Opening the repository failed.
    Repo(HiDeStoreError),
    /// Mounting the tenant registry failed.
    Tenant(TenantError),
}

impl fmt::Display for ServerError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServerError::Io(e) => write!(f, "listener error: {e}"),
            ServerError::Repo(e) => write!(f, "repository error: {e}"),
            ServerError::Tenant(e) => write!(f, "tenant registry error: {e}"),
        }
    }
}

impl std::error::Error for ServerError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ServerError::Io(e) => Some(e),
            ServerError::Repo(e) => Some(e),
            ServerError::Tenant(e) => Some(e),
        }
    }
}

impl From<io::Error> for ServerError {
    fn from(e: io::Error) -> Self {
        ServerError::Io(e)
    }
}

impl From<HiDeStoreError> for ServerError {
    fn from(e: HiDeStoreError) -> Self {
        ServerError::Repo(e)
    }
}

impl From<TenantError> for ServerError {
    fn from(e: TenantError) -> Self {
        ServerError::Tenant(e)
    }
}

/// State shared by the acceptor, the workers, and the handle.
struct Shared {
    /// Tenant id → repository handle, through a capacity-bounded LRU.
    /// Each tenant's slot owns its own writer lock and resumable-commit
    /// gate, so unrelated tenants' mutations commit in parallel.
    registry: TenantRegistry,
    queue: BoundedQueue<(TcpStream, SocketAddr)>,
    shutdown: AtomicBool,
    stats: ServerStats,
    config: ServerConfig,
    addr: SocketAddr,
    /// Parked/committed resumable-session state, keyed by
    /// *(tenant, token)* (LRU + TTL bounded).
    sessions: Mutex<SessionTable>,
    /// Deadlines after resolving flag/env/repo-config defaults.
    read_timeout: Option<Duration>,
    write_timeout: Option<Duration>,
}

impl Shared {
    fn shutting_down(&self) -> bool {
        self.shutdown.load(Ordering::SeqCst)
    }

    fn sessions(&self) -> MutexGuard<'_, SessionTable> {
        // The table holds plain data; a panicking holder cannot leave it
        // inconsistent, so a poisoned lock is safe to re-enter.
        self.sessions.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Sets the shutdown flag and pokes the blocking acceptor with a wake
    /// connection so it observes the flag immediately.
    fn trigger_shutdown(&self) {
        if self.shutdown.swap(true, Ordering::SeqCst) {
            return;
        }
        let mut wake = self.addr;
        if wake.ip().is_unspecified() {
            wake.set_ip(std::net::IpAddr::from([127, 0, 0, 1]));
        }
        if let Ok(stream) = TcpStream::connect_timeout(&wake, Duration::from_secs(1)) {
            drop(stream);
        }
    }

    fn log(&self, line: fmt::Arguments<'_>) {
        if !self.config.quiet {
            eprintln!("hds-served: {line}");
        }
    }
}

/// A running daemon. Keep it to observe stats and to shut the server down;
/// dropping it without [`ServerHandle::join`] force-stops the server.
pub struct ServerHandle {
    shared: Arc<Shared>,
    threads: Vec<JoinHandle<()>>,
}

impl ServerHandle {
    /// The address the listener actually bound (resolves ephemeral ports).
    pub fn addr(&self) -> SocketAddr {
        self.shared.addr
    }

    /// Point-in-time copy of the server counters.
    pub fn stats(&self) -> StatsSnapshot {
        self.shared.stats.snapshot()
    }

    /// How many failed mutations the tenant repositories rolled back,
    /// summed across all tenants (including evicted handles).
    pub fn rollbacks(&self) -> u64 {
        self.shared.registry.rollbacks()
    }

    /// Point-in-time copies of every tenant's request counters, sorted by
    /// tenant id. The isolation suite asserts one tenant's traffic never
    /// bleeds into another tenant's row.
    pub fn tenant_stats(&self) -> Vec<(TenantId, TenantStatsSnapshot)> {
        self.shared.stats.tenant_snapshots()
    }

    /// Parked (incomplete) resumable sessions currently held. The chaos
    /// suite asserts this drains to zero.
    pub fn open_sessions(&self) -> usize {
        self.shared.sessions().open_sessions()
    }

    /// Begins a graceful shutdown: the acceptor stops, in-flight requests
    /// finish, queued connections are refused with `shutting-down`.
    /// Non-blocking; follow with [`ServerHandle::join`].
    pub fn request_shutdown(&self) {
        self.shared.trigger_shutdown();
    }

    /// Waits for the acceptor and every worker to finish (after a
    /// [`ServerHandle::request_shutdown`] or a protocol `Shutdown`
    /// request), returning the final counters.
    pub fn join(mut self) -> StatsSnapshot {
        for t in self.threads.drain(..) {
            let _ = t.join();
        }
        self.shared.stats.snapshot()
    }

    /// [`ServerHandle::request_shutdown`] followed by [`ServerHandle::join`].
    pub fn shutdown_and_join(self) -> StatsSnapshot {
        self.request_shutdown();
        self.join()
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        if self.threads.is_empty() {
            return;
        }
        // Force path: cancel the queue (dropping queued connections) and
        // wake the acceptor, then join. CancelGuard mirrors the pipelines'
        // error path — its drop unblocks any worker waiting on the queue.
        {
            let _cancel = CancelGuard(&self.shared.queue);
            self.shared.trigger_shutdown();
        }
        for t in self.threads.drain(..) {
            let _ = t.join();
        }
    }
}

/// Opens the repository (or tenant root, with
/// [`ServerConfig::tenants_root`]) at `repo_dir` and serves it until
/// shutdown. A plain repository is served as exactly the `default` tenant,
/// which is how pre-tenancy deployments and protocol v1/v2 clients keep
/// working unchanged.
///
/// # Errors
///
/// Fails if the repository/tenant root cannot be mounted or the listener
/// cannot bind.
pub fn serve(
    repo_dir: impl AsRef<Path>,
    config: ServerConfig,
) -> Result<ServerHandle, ServerError> {
    let options = RegistryOptions {
        max_live: config.max_live_tenants,
        auto_create: config.auto_create_tenants,
        template: HiDeStoreConfig::default(),
        default_quota: config.default_quota,
    };
    let registry = if config.tenants_root {
        TenantRegistry::open_root(repo_dir, options)?
    } else {
        TenantRegistry::open_legacy(repo_dir, options)?
    };
    // Legacy mounts load the repository's own config as the template, so
    // this resolves to the served repo's `net_timeout` key; tenant roots
    // use the root `config` file (or the default).
    let repo_timeout_secs = registry.template().net_timeout_secs;
    let listener = TcpListener::bind(&config.bind)?;
    let addr = listener.local_addr()?;
    let workers = config.workers.max(1);
    let queue_depth = config.queue_depth.max(1);
    let read_timeout = resolve_timeout(config.read_timeout, repo_timeout_secs);
    let write_timeout = resolve_timeout(config.write_timeout, repo_timeout_secs);
    let sessions = Mutex::new(SessionTable::new(config.max_sessions, config.session_ttl));
    let shared = Arc::new(Shared {
        registry,
        queue: BoundedQueue::new(queue_depth, 1),
        shutdown: AtomicBool::new(false),
        stats: ServerStats::default(),
        config,
        addr,
        sessions,
        read_timeout,
        write_timeout,
    });

    let mut threads = Vec::with_capacity(workers + 1);
    {
        let shared = Arc::clone(&shared);
        threads.push(std::thread::spawn(move || acceptor(&listener, &shared)));
    }
    for _ in 0..workers {
        let shared = Arc::clone(&shared);
        threads.push(std::thread::spawn(move || worker(&shared)));
    }
    Ok(ServerHandle { shared, threads })
}

fn acceptor(listener: &TcpListener, shared: &Shared) {
    // Ensures workers observe end-of-stream even if the acceptor exits on
    // an unexpected path.
    let _done = ProducerGuard(&shared.queue);
    loop {
        match listener.accept() {
            Ok((stream, peer)) => {
                if shared.shutting_down() {
                    // Either the wake connection or a late client; both are
                    // dropped, and the listener closes with the loop.
                    break;
                }
                ServerStats::bump(&shared.stats.accepted);
                // Admission gate: never park on a saturated worker queue.
                // A full queue sheds the connection with a retryable
                // `busy` refusal carrying a backoff hint.
                match shared.queue.try_push((stream, peer)) {
                    Ok(()) => {}
                    Err(TryPushError::Full(rejected)) => {
                        ServerStats::bump(&shared.stats.busy_rejected);
                        shed_busy(rejected.0, shared);
                    }
                    Err(TryPushError::Cancelled(_)) => break, // force shutdown
                }
            }
            Err(_) if shared.shutting_down() => break,
            Err(_) => {
                // Transient accept failure (e.g. aborted connection);
                // keep serving.
            }
        }
    }
}

/// Refuses an un-admitted connection with `busy` + a retry hint. Runs on
/// the acceptor thread under short deadlines, so a slow client cannot
/// stall admission for long.
fn shed_busy(stream: TcpStream, shared: &Shared) {
    let hint = shared.config.busy_retry_after_ms;
    let message = "worker queue is full, retry later";
    match &shared.config.fault {
        None => refuse(
            RealStream::from_tcp(stream),
            shared,
            WireError::busy(hint, message),
        ),
        Some(plan) => refuse(plan.wrap(stream), shared, WireError::busy(hint, message)),
    }
}

fn worker(shared: &Shared) {
    while let Some((stream, peer)) = shared.queue.pop() {
        let draining = shared.shutting_down();
        match &shared.config.fault {
            None => {
                let mut s = RealStream::from_tcp(stream);
                if draining {
                    refuse(
                        s,
                        shared,
                        WireError::new(ErrorCode::ShuttingDown, "daemon is draining for shutdown"),
                    );
                } else {
                    handle_connection(&mut s, peer, shared);
                }
            }
            Some(plan) => {
                let mut s = plan.wrap(stream);
                if draining {
                    refuse(
                        s,
                        shared,
                        WireError::new(ErrorCode::ShuttingDown, "daemon is draining for shutdown"),
                    );
                } else {
                    handle_connection(&mut s, peer, shared);
                }
            }
        }
    }
}

/// Tells a client it will not be served — with a typed error instead of a
/// silently dropped connection. Consumes the client's HELLO first so the
/// refusal lands where the client expects the HELLO reply.
fn refuse<S: NetStream>(mut stream: S, shared: &Shared, err: WireError) {
    let _ = stream.set_read_timeout(Some(Duration::from_millis(200)));
    let _ = stream.set_write_timeout(Some(Duration::from_millis(200)));
    let _ = read_frame(&mut stream, &shared.config.limits);
    let _ = write_frame(&mut stream, FrameKind::Error, &err.encode());
}

/// Reads one frame, returning `Ok(None)` when the peer closed the
/// connection cleanly at a frame boundary.
fn read_frame_opt<S: NetStream>(
    stream: &mut S,
    limits: &Limits,
) -> Result<Option<Frame>, FrameError> {
    let mut first = [0u8; 1];
    loop {
        match stream.read(&mut first) {
            Ok(0) => return Ok(None),
            Ok(_) => break,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(FrameError::Io(e)),
        }
    }
    let mut chained = (&first[..]).chain(&mut *stream);
    read_frame(&mut chained, limits).map(Some)
}

fn send_error<S: NetStream>(stream: &mut S, code: ErrorCode, message: impl Into<String>) {
    let err = WireError::new(code, message);
    let _ = write_frame(stream, FrameKind::Error, &err.encode());
}

/// Classifies a transport-level failure for the stats counters and log.
fn classify_transport(shared: &Shared, err: &FrameError) -> &'static str {
    if err.is_timeout() {
        ServerStats::bump(&shared.stats.timed_out);
        "timeout"
    } else {
        "disconnect"
    }
}

fn handle_connection<S: NetStream>(stream: &mut S, peer: SocketAddr, shared: &Shared) {
    let limits = shared.config.limits;
    let _ = stream.set_nodelay(true);
    if stream.set_read_timeout(shared.read_timeout).is_err()
        || stream.set_write_timeout(shared.write_timeout).is_err()
    {
        return;
    }

    // HELLO negotiation. A connection that closes without a byte (port
    // probe, liveness poll) is not an event worth logging.
    let negotiated;
    match read_frame_opt(stream, &limits) {
        Ok(None) => return,
        Ok(Some(frame)) if frame.kind == FrameKind::Hello => {
            let client = match Hello::decode(&frame.payload) {
                Ok(h) => h,
                Err(e) => {
                    ServerStats::bump(&shared.stats.requests_failed);
                    send_error(stream, ErrorCode::Malformed, format!("bad HELLO: {e}"));
                    return;
                }
            };
            match Hello::current().negotiate(&client) {
                Some(version) => {
                    negotiated = version;
                    let reply = Hello {
                        min_version: version,
                        max_version: version,
                    };
                    if write_frame(stream, FrameKind::Hello, &reply.encode()).is_err() {
                        return;
                    }
                }
                None => {
                    ServerStats::bump(&shared.stats.requests_failed);
                    send_error(
                        stream,
                        ErrorCode::Unsupported,
                        format!(
                            "no common protocol version: client {}..={}, server {}..={}",
                            client.min_version,
                            client.max_version,
                            hidestore_proto::MIN_PROTO_VERSION,
                            hidestore_proto::PROTO_VERSION,
                        ),
                    );
                    return;
                }
            }
        }
        Ok(Some(frame)) => {
            ServerStats::bump(&shared.stats.requests_failed);
            send_error(
                stream,
                ErrorCode::Malformed,
                format!("expected HELLO, got {}", frame.kind),
            );
            return;
        }
        Err(e) => {
            let kind = classify_transport(shared, &e);
            shared.log(format_args!("peer={peer} req=hello result={kind} ({e})"));
            return;
        }
    }

    // Request loop: one frame opens each request; the connection persists
    // until the peer closes, errors, or the daemon drains.
    loop {
        let frame = match read_frame_opt(stream, &limits) {
            Ok(None) => return,
            Ok(Some(f)) => f,
            Err(e) => {
                let kind = classify_transport(shared, &e);
                // A torn frame aborts the connection; nothing was mutated.
                ServerStats::bump(&shared.stats.requests_failed);
                shared.log(format_args!("peer={peer} req=? result={kind} ({e})"));
                if e.is_timeout() {
                    // The peer went silent past the deadline: tell it with
                    // a typed error (the write side may still work)
                    // instead of silently dropping the stream.
                    send_error(stream, ErrorCode::Timeout, "request deadline exceeded");
                } else if !matches!(e, FrameError::Io(_)) {
                    send_error(stream, ErrorCode::Malformed, format!("{e}"));
                }
                return;
            }
        };
        if frame.kind != FrameKind::Request {
            ServerStats::bump(&shared.stats.requests_failed);
            send_error(
                stream,
                ErrorCode::Malformed,
                format!("expected REQUEST, got {}", frame.kind),
            );
            return;
        }
        // Protocol v3 prefixes the request with a tenant envelope; a bare
        // (v1/v2) payload maps to the `default` tenant. A hostile tenant
        // id (path traversal, bad charset) is rejected right here by the
        // decoder, before it can reach anything that touches a path.
        let (tenant, request) = match Request::decode_enveloped(&frame.payload) {
            Ok(pair) => pair,
            Err(e) => {
                ServerStats::bump(&shared.stats.requests_failed);
                send_error(stream, ErrorCode::Malformed, format!("bad request: {e}"));
                return;
            }
        };
        if tenant.is_some() && negotiated < 3 {
            ServerStats::bump(&shared.stats.requests_failed);
            send_error(
                stream,
                ErrorCode::Unsupported,
                format!("tenant addressing needs protocol v3, negotiated v{negotiated}"),
            );
            continue;
        }
        let tenant = tenant.unwrap_or_else(TenantId::default_tenant);
        if request.needs_v2() && negotiated < 2 {
            ServerStats::bump(&shared.stats.requests_failed);
            send_error(
                stream,
                ErrorCode::Unsupported,
                format!(
                    "{} needs protocol v2, negotiated v{negotiated}",
                    request.name()
                ),
            );
            continue;
        }
        if request.needs_v3() && negotiated < 3 {
            ServerStats::bump(&shared.stats.requests_failed);
            send_error(
                stream,
                ErrorCode::Unsupported,
                format!(
                    "{} needs protocol v3, negotiated v{negotiated}",
                    request.name()
                ),
            );
            continue;
        }

        let started = Instant::now();
        let name = request.name();
        let shutdown_requested = matches!(request, Request::Shutdown);
        let tstats = shared.stats.tenant(&tenant);
        match dispatch(request, &tenant, &tstats, stream, shared) {
            Outcome::Ok { detail } => {
                ServerStats::bump(&shared.stats.requests_ok);
                ServerStats::bump(&tstats.requests_ok);
                shared.log(format_args!(
                    "peer={peer} tenant={tenant} req={name} dur_ms={} result=ok{detail}",
                    started.elapsed().as_millis(),
                ));
            }
            Outcome::Failed { code, message } => {
                ServerStats::bump(&shared.stats.requests_failed);
                ServerStats::bump(&tstats.requests_failed);
                shared.log(format_args!(
                    "peer={peer} tenant={tenant} req={name} dur_ms={} result=error code={code} \
                     msg={message:?}",
                    started.elapsed().as_millis(),
                ));
                send_error(stream, code, message);
            }
            Outcome::Transport(e) => {
                ServerStats::bump(&shared.stats.requests_failed);
                ServerStats::bump(&tstats.requests_failed);
                let kind = classify_transport(shared, &e);
                shared.log(format_args!(
                    "peer={peer} tenant={tenant} req={name} dur_ms={} result={kind} ({e})",
                    started.elapsed().as_millis(),
                ));
                if e.is_timeout() {
                    // The request overran its deadline mid-exchange: the
                    // peer gets a typed `timeout` before the connection
                    // closes, never a silent drop.
                    send_error(stream, ErrorCode::Timeout, "request deadline exceeded");
                }
                return;
            }
        }
        if shutdown_requested || shared.shutting_down() {
            return;
        }
    }
}

/// What one request dispatch produced.
enum Outcome {
    /// Response sent; `detail` is appended to the log line.
    Ok { detail: String },
    /// The request failed in a way the client can be told about.
    Failed { code: ErrorCode, message: String },
    /// The transport died mid-request; the connection is finished.
    Transport(FrameError),
}

fn repo_error_outcome(e: HiDeStoreError) -> Outcome {
    let code = match &e {
        HiDeStoreError::UnknownVersion(_) => ErrorCode::NotFound,
        HiDeStoreError::CannotExpireNewest { .. } => ErrorCode::Conflict,
        HiDeStoreError::PartialRestore { .. } => ErrorCode::Conflict,
        // A quota refusal is a typed permanent answer: retrying the same
        // backup cannot succeed until the tenant frees space, so the code
        // is deliberately non-retryable.
        HiDeStoreError::QuotaExceeded { .. } => ErrorCode::QuotaExceeded,
        _ => ErrorCode::Internal,
    };
    Outcome::Failed {
        code,
        message: e.to_string(),
    }
}

/// Maps a registry failure onto the wire: an absent tenant is the same
/// typed `not-found` an absent version gets; everything else is internal.
fn tenant_error_outcome(e: TenantError) -> Outcome {
    match e {
        TenantError::UnknownTenant(t) => Outcome::Failed {
            code: ErrorCode::NotFound,
            message: format!("unknown tenant {t}"),
        },
        TenantError::Repo(e) => repo_error_outcome(e),
        TenantError::Io(e) => Outcome::Failed {
            code: ErrorCode::Internal,
            message: format!("tenant root I/O error: {e}"),
        },
    }
}

/// Bumps the failure counters for a failed tenant mutation: a quota
/// refusal is an admission check (nothing mutated, nothing rolled back);
/// anything else was rolled back by the handle.
fn bump_mutation_failure(shared: &Shared, tstats: &TenantStats, e: &HiDeStoreError) {
    if matches!(e, HiDeStoreError::QuotaExceeded { .. }) {
        ServerStats::bump(&tstats.quota_refused);
    } else {
        ServerStats::bump(&shared.stats.rolled_back);
        ServerStats::bump(&tstats.rolled_back);
    }
}

fn send_response<S: NetStream>(stream: &mut S, response: &Response) -> Result<(), FrameError> {
    write_frame(stream, FrameKind::Response, &response.encode())
}

fn dispatch<S: NetStream>(
    request: Request,
    tenant: &TenantId,
    tstats: &TenantStats,
    stream: &mut S,
    shared: &Shared,
) -> Outcome {
    match request {
        Request::Ping => match send_response(stream, &Response::Pong) {
            Ok(()) => Outcome::Ok {
                detail: String::new(),
            },
            Err(e) => Outcome::Transport(e),
        },
        Request::Backup => serve_backup(tenant, tstats, stream, shared),
        Request::BackupResume { token, total_len } => {
            serve_backup_resume(tenant, tstats, token, total_len, stream, shared)
        }
        Request::Restore { version } => serve_restore(tenant, tstats, version, 0, stream, shared),
        Request::RestoreResume { version, offset } => {
            serve_restore(tenant, tstats, version, offset, stream, shared)
        }
        Request::List => {
            let slot = match shared.registry.get(tenant) {
                Ok(s) => s,
                Err(e) => return tenant_error_outcome(e),
            };
            let list = match slot.handle().read(view::list_response) {
                Ok(l) => l,
                Err(e) => return repo_error_outcome(e),
            };
            match send_response(stream, &Response::ListOk(list)) {
                Ok(()) => Outcome::Ok {
                    detail: String::new(),
                },
                Err(e) => Outcome::Transport(e),
            }
        }
        Request::Stats => {
            let slot = match shared.registry.get(tenant) {
                Ok(s) => s,
                Err(e) => return tenant_error_outcome(e),
            };
            let stats = match slot.handle().read(view::stats_response) {
                Ok(Ok(s)) => s,
                Ok(Err(e)) | Err(e) => return repo_error_outcome(e),
            };
            match send_response(stream, &Response::StatsOk(stats)) {
                Ok(()) => Outcome::Ok {
                    detail: String::new(),
                },
                Err(e) => Outcome::Transport(e),
            }
        }
        Request::Prune { keep_last } => serve_prune(tenant, tstats, keep_last, stream, shared),
        Request::Verify => serve_verify(tenant, stream, shared),
        Request::TenantList => serve_tenant_list(stream, shared),
        Request::TenantStats => serve_tenant_stats(stream, shared),
        Request::Shutdown => {
            // Acknowledge first, then trigger: the client gets its reply
            // even though the daemon is now draining.
            let result = send_response(stream, &Response::ShutdownOk);
            shared.trigger_shutdown();
            match result {
                Ok(()) => Outcome::Ok {
                    detail: " (draining)".into(),
                },
                Err(e) => Outcome::Transport(e),
            }
        }
    }
}

/// What receiving a backup's DATA stream produced.
enum BackupStream {
    /// END arrived; `data` holds the complete payload.
    Complete(Vec<u8>),
    /// The request failed in a way the client can be told about.
    Failed(Outcome),
    /// The transport died mid-stream; `data` holds the complete frames
    /// received before the failure (resumable).
    Interrupted { data: Vec<u8>, error: FrameError },
}

/// Receives DATA frames into `data` (which may already hold a resumed
/// prefix) until END, a failure, or a transport error.
fn receive_backup_stream<S: NetStream>(
    stream: &mut S,
    shared: &Shared,
    tstats: &TenantStats,
    mut data: Vec<u8>,
) -> BackupStream {
    let limits = shared.config.limits;
    loop {
        let frame = match read_frame(stream, &limits) {
            Ok(f) => f,
            Err(error) => return BackupStream::Interrupted { data, error },
        };
        match frame.kind {
            FrameKind::Data => {
                if data.len() as u64 + frame.payload.len() as u64 > limits.max_stream {
                    ServerStats::bump(&shared.stats.rejected_oversize);
                    return BackupStream::Failed(Outcome::Failed {
                        code: ErrorCode::TooLarge,
                        message: format!(
                            "backup stream exceeds the {}-byte limit",
                            limits.max_stream
                        ),
                    });
                }
                ServerStats::add(&shared.stats.bytes_in, frame.payload.len() as u64);
                ServerStats::add(&tstats.bytes_in, frame.payload.len() as u64);
                data.extend_from_slice(&frame.payload);
            }
            FrameKind::End => return BackupStream::Complete(data),
            other => {
                return BackupStream::Failed(Outcome::Failed {
                    code: ErrorCode::Malformed,
                    message: format!("expected DATA or END, got {other}"),
                })
            }
        }
    }
}

fn backup_summary_proto(
    stats: &hidestore_core::HiDeStoreVersionStats,
) -> hidestore_proto::BackupSummary {
    hidestore_proto::BackupSummary {
        version: stats.version.get(),
        logical_bytes: stats.logical_bytes,
        stored_bytes: stats.stored_bytes,
        chunks: stats.chunks,
        unique_chunks: stats.unique_chunks,
        cold_chunks: stats.cold_chunks,
    }
}

fn serve_backup<S: NetStream>(
    tenant: &TenantId,
    tstats: &TenantStats,
    stream: &mut S,
    shared: &Shared,
) -> Outcome {
    // Receive the whole stream before resolving the tenant: a plain
    // Backup's client streams DATA+END without waiting, so refusing
    // earlier would leave unread frames to desync the connection.
    let data = match receive_backup_stream(stream, shared, tstats, Vec::new()) {
        BackupStream::Complete(data) => data,
        BackupStream::Failed(outcome) => return outcome,
        // A disconnect or torn frame mid-stream: nothing has touched the
        // repository, and a plain (tokenless) backup has no session to
        // park, so the request simply aborts.
        BackupStream::Interrupted { error, .. } => return Outcome::Transport(error),
    };
    let slot = match shared.registry.get_or_create(tenant) {
        Ok(s) => s,
        Err(e) => return tenant_error_outcome(e),
    };
    // The stream arrived intact; admit it against the tenant's quota and
    // commit. A quota refusal happens inside the writer lock before
    // anything mutates; a commit failure rolls the repository back to the
    // previous committed state (journal + handle reopen).
    let quota = shared.registry.quota_for(tenant);
    let result = slot
        .handle()
        .write_checked(|s| quota.admit(s, data.len() as u64), |s| s.backup(&data));
    match result {
        Ok(stats) => {
            let summary = backup_summary_proto(&stats);
            match send_response(stream, &Response::BackupDone(summary)) {
                Ok(()) => Outcome::Ok {
                    detail: format!(
                        " version=V{} bytes={} stored={}",
                        summary.version, summary.logical_bytes, summary.stored_bytes
                    ),
                },
                Err(e) => Outcome::Transport(e),
            }
        }
        Err(e) => {
            bump_mutation_failure(shared, tstats, &e);
            repo_error_outcome(e)
        }
    }
}

/// Parks an interrupted backup prefix unless the token already committed —
/// a stale worker (its client long gone) must not resurrect a session that
/// a faster retry already finished. One lock guard makes check-and-park
/// atomic against `record_committed`. Empty prefixes are dropped: there is
/// nothing to resume and no session worth holding.
fn park_if_uncommitted(
    shared: &Shared,
    tenant: &TenantId,
    token: SessionToken,
    data: Vec<u8>,
    total_len: u64,
) {
    if data.is_empty() {
        return;
    }
    let mut sessions = shared.sessions();
    if sessions.committed(tenant, token).is_none() {
        sessions.park(tenant, token, data, total_len);
    }
}

/// The resumable, idempotent backup path (protocol v2).
///
/// The token is the client's name for the whole logical backup across all
/// its attempts. Commit exactly once: the committed-token cache answers
/// retries that lost the acknowledgement, the commit gate serializes the
/// check-then-commit window against a racing retry, and an interrupted
/// stream parks its prefix so the next attempt continues from the
/// acknowledged offset instead of starting over.
fn serve_backup_resume<S: NetStream>(
    tenant: &TenantId,
    tstats: &TenantStats,
    token: SessionToken,
    total_len: u64,
    stream: &mut S,
    shared: &Shared,
) -> Outcome {
    if total_len > shared.config.limits.max_stream {
        ServerStats::bump(&shared.stats.rejected_oversize);
        return Outcome::Failed {
            code: ErrorCode::TooLarge,
            message: format!(
                "backup stream exceeds the {}-byte limit",
                shared.config.limits.max_stream
            ),
        };
    }
    // Resolve the tenant before acknowledging anything: the client waits
    // for BackupAccepted before streaming, so a refusal here stays in
    // sync. Holding the slot `Arc` for the whole request also marks the
    // tenant busy — its handle cannot be LRU-evicted mid-backup.
    let slot = match shared.registry.get_or_create(tenant) {
        Ok(s) => s,
        Err(e) => return tenant_error_outcome(e),
    };
    // Already committed? Answer from the cache without accepting a byte —
    // the retried backup must never commit twice.
    if let Some(summary) = shared.sessions().committed(tenant, token) {
        ServerStats::bump(&shared.stats.dedup_hits);
        return match send_response(stream, &Response::BackupDone(summary)) {
            Ok(()) => Outcome::Ok {
                detail: format!(" version=V{} dedup=hit", summary.version),
            },
            Err(e) => Outcome::Transport(e),
        };
    }
    // Resume from the parked prefix if one survives; a prefix longer than
    // the declared total is a stale/mismatched session and is discarded.
    let parked = shared
        .sessions()
        .take(tenant, token)
        .map(|(data, _total)| data)
        .filter(|data| data.len() as u64 <= total_len)
        .unwrap_or_default();
    let offset = parked.len() as u64;
    if offset > 0 {
        ServerStats::bump(&shared.stats.sessions_resumed);
    }
    if let Err(e) = send_response(stream, &Response::BackupAccepted { offset }) {
        // The acknowledgement never left: keep the prefix for the retry.
        park_if_uncommitted(shared, tenant, token, parked, total_len);
        return Outcome::Transport(e);
    }
    let data = match receive_backup_stream(stream, shared, tstats, parked) {
        BackupStream::Complete(data) => data,
        BackupStream::Failed(outcome) => return outcome,
        BackupStream::Interrupted { data, error } => {
            // Park what arrived (complete frames only — the frame layer is
            // all-or-nothing) so the retry continues from here.
            park_if_uncommitted(shared, tenant, token, data, total_len);
            return Outcome::Transport(error);
        }
    };
    if data.len() as u64 != total_len {
        // The client's END disagrees with its own declared length; the
        // session is unusable, start over on the next attempt.
        return Outcome::Failed {
            code: ErrorCode::Malformed,
            message: format!(
                "backup stream length {} does not match the declared {total_len}",
                data.len()
            ),
        };
    }
    // Serialize the committed-check → commit → record window so a racing
    // retry of the same (tenant, token) observes either "not committed
    // yet" plus a held gate, or the cached summary — never a second
    // commit. The gate lives in the tenant's slot: same-tenant retries
    // serialize here, other tenants' commits do not.
    let gate = slot.commit_gate();
    if let Some(summary) = shared.sessions().committed(tenant, token) {
        drop(gate);
        ServerStats::bump(&shared.stats.dedup_hits);
        return match send_response(stream, &Response::BackupDone(summary)) {
            Ok(()) => Outcome::Ok {
                detail: format!(" version=V{} dedup=hit", summary.version),
            },
            Err(e) => Outcome::Transport(e),
        };
    }
    let quota = shared.registry.quota_for(tenant);
    let result = slot
        .handle()
        .write_checked(|s| quota.admit(s, data.len() as u64), |s| s.backup(&data));
    let outcome = match result {
        Ok(stats) => {
            let summary = backup_summary_proto(&stats);
            shared.sessions().record_committed(tenant, token, summary);
            match send_response(stream, &Response::BackupDone(summary)) {
                // Even if this acknowledgement is lost, the commit is
                // recorded: the retry gets a dedup answer, not a second
                // version.
                Ok(()) => Outcome::Ok {
                    detail: format!(
                        " version=V{} bytes={} stored={}",
                        summary.version, summary.logical_bytes, summary.stored_bytes
                    ),
                },
                Err(e) => Outcome::Transport(e),
            }
        }
        Err(e) => {
            // A repository failure is not transport loss: the data arrived
            // intact and the commit was refused (quota) or rolled back, so
            // nothing is parked and the client sees the typed
            // (non-retryable) error.
            bump_mutation_failure(shared, tstats, &e);
            repo_error_outcome(e)
        }
    };
    drop(gate);
    outcome
}

/// An `io::Write` that packages restore output into DATA frames.
struct DataFrameWriter<'a, S: NetStream> {
    stream: &'a mut S,
    buf: Vec<u8>,
    bytes_out: u64,
}

impl<'a, S: NetStream> DataFrameWriter<'a, S> {
    fn new(stream: &'a mut S) -> Self {
        DataFrameWriter {
            stream,
            buf: Vec::with_capacity(DATA_CHUNK),
            bytes_out: 0,
        }
    }

    fn emit(&mut self) -> io::Result<()> {
        if self.buf.is_empty() {
            return Ok(());
        }
        write_frame(self.stream, FrameKind::Data, &self.buf).map_err(|e| match e {
            FrameError::Io(e) => e,
            other => io::Error::other(other.to_string()),
        })?;
        self.bytes_out += self.buf.len() as u64;
        self.buf.clear();
        Ok(())
    }
}

impl<S: NetStream> Write for DataFrameWriter<'_, S> {
    fn write(&mut self, data: &[u8]) -> io::Result<usize> {
        self.buf.extend_from_slice(data);
        if self.buf.len() >= DATA_CHUNK {
            self.emit()?;
        }
        Ok(data.len())
    }

    fn flush(&mut self) -> io::Result<()> {
        self.emit()
    }
}

/// What happened inside the snapshot closure of a served restore.
enum ServedRestore {
    Done {
        summary: RestoreSummary,
        bytes_out: u64,
    },
    RepoError {
        error: HiDeStoreError,
        streamed: bool,
    },
    /// The requested resume offset lies past the end of the version.
    BadOffset {
        total_bytes: u64,
    },
    Transport(io::Error),
}

/// An `io::Write` that discards the first `skip` bytes and forwards the
/// rest. A resumed restore replays the whole version through the restore
/// pipeline (the engine has no mid-version seek) but only re-transfers the
/// bytes after the client's acknowledged offset.
struct SkipWriter<W> {
    skip: u64,
    inner: W,
}

impl<W: Write> Write for SkipWriter<W> {
    fn write(&mut self, data: &[u8]) -> io::Result<usize> {
        let len = data.len();
        let drop = (self.skip.min(len as u64)) as usize;
        self.skip -= drop as u64;
        if drop < len {
            self.inner.write_all(&data[drop..])?;
        }
        Ok(len)
    }

    fn flush(&mut self) -> io::Result<()> {
        self.inner.flush()
    }
}

fn serve_restore<S: NetStream>(
    tenant: &TenantId,
    tstats: &TenantStats,
    version: u32,
    offset: u64,
    stream: &mut S,
    shared: &Shared,
) -> Outcome {
    if version == 0 {
        return Outcome::Failed {
            code: ErrorCode::NotFound,
            message: "version ids are 1-based".into(),
        };
    }
    let slot = match shared.registry.get(tenant) {
        Ok(s) => s,
        Err(e) => return tenant_error_outcome(e),
    };
    let v = VersionId::new(version);
    let served = slot.handle().read_snapshot(|system| {
        let Some(recipe) = system.recipes().get(v) else {
            return Ok(ServedRestore::RepoError {
                error: HiDeStoreError::UnknownVersion(v),
                streamed: false,
            });
        };
        let total_bytes = recipe.total_bytes();
        if offset > total_bytes {
            return Ok(ServedRestore::BadOffset { total_bytes });
        }
        if let Err(e) = send_response(stream, &Response::RestoreStarted { total_bytes }) {
            return Ok(ServedRestore::Transport(match e {
                FrameError::Io(e) => e,
                other => io::Error::other(other.to_string()),
            }));
        }
        let conc = system.config().restore;
        let mut writer = SkipWriter {
            skip: offset,
            inner: DataFrameWriter::new(stream),
        };
        let mut cache = Faa::new(RESTORE_CACHE_BYTES);
        match system
            .restore_with(v, &mut cache, &mut writer, &conc)
            .and_then(|report| {
                writer
                    .flush()
                    .map_err(|e| HiDeStoreError::Storage(hidestore_storage::StorageError::Io(e)))?;
                Ok(report)
            }) {
            Ok(report) => Ok(ServedRestore::Done {
                summary: RestoreSummary {
                    bytes_restored: report.bytes_restored,
                    container_reads: report.container_reads,
                    cache_hits: report.cache_hits,
                    cache_misses: report.cache_misses,
                },
                bytes_out: writer.inner.bytes_out,
            }),
            Err(error) => Ok(ServedRestore::RepoError {
                error,
                streamed: true,
            }),
        }
    });
    if offset > 0 && matches!(served, Ok(ServedRestore::Done { .. })) {
        ServerStats::bump(&shared.stats.sessions_resumed);
    }
    match served {
        Ok(ServedRestore::Done { summary, bytes_out }) => {
            ServerStats::add(&shared.stats.bytes_out, bytes_out);
            ServerStats::add(&tstats.bytes_out, bytes_out);
            let finish = write_frame(stream, FrameKind::End, &[])
                .and_then(|()| send_response(stream, &Response::RestoreDone(summary)));
            match finish {
                Ok(()) => Outcome::Ok {
                    detail: format!(
                        " version=V{version} bytes={} reads={}",
                        summary.bytes_restored, summary.container_reads
                    ),
                },
                Err(e) => Outcome::Transport(e),
            }
        }
        Ok(ServedRestore::RepoError { error, streamed }) => {
            // If DATA frames already went out, the ERROR frame tells the
            // client the stream is aborted (it discards its .tmp output).
            let _ = streamed;
            repo_error_outcome(error)
        }
        Ok(ServedRestore::BadOffset { total_bytes }) => Outcome::Failed {
            code: ErrorCode::Conflict,
            message: format!(
                "resume offset {offset} is past the end of V{version} ({total_bytes} bytes)"
            ),
        },
        Ok(ServedRestore::Transport(e)) => Outcome::Transport(FrameError::Io(e)),
        Err(e) => repo_error_outcome(e),
    }
}

fn serve_prune<S: NetStream>(
    tenant: &TenantId,
    tstats: &TenantStats,
    keep_last: u32,
    stream: &mut S,
    shared: &Shared,
) -> Outcome {
    if keep_last == 0 {
        return Outcome::Failed {
            code: ErrorCode::Conflict,
            message: "must keep at least one version".into(),
        };
    }
    let slot = match shared.registry.get(tenant) {
        Ok(s) => s,
        Err(e) => return tenant_error_outcome(e),
    };
    let newest = match slot.handle().read(|s| s.versions().last().copied()) {
        Ok(n) => n,
        Err(e) => return repo_error_outcome(e),
    };
    let summary = match newest {
        Some(newest) if newest.get() > keep_last => {
            let result = slot
                .handle()
                .write(|s| s.delete_expired(VersionId::new(newest.get() - keep_last)));
            match result {
                Ok(report) => PruneSummary {
                    versions_removed: report.versions_removed,
                    containers_dropped: report.containers_dropped,
                    bytes_reclaimed: report.bytes_reclaimed,
                },
                Err(e) => {
                    bump_mutation_failure(shared, tstats, &e);
                    return repo_error_outcome(e);
                }
            }
        }
        // Empty repository or nothing old enough: a successful no-op.
        _ => PruneSummary::default(),
    };
    match send_response(stream, &Response::PruneOk(summary)) {
        Ok(()) => Outcome::Ok {
            detail: format!(" removed={}", summary.versions_removed),
        },
        Err(e) => Outcome::Transport(e),
    }
}

fn serve_verify<S: NetStream>(tenant: &TenantId, stream: &mut S, shared: &Shared) -> Outcome {
    let slot = match shared.registry.get(tenant) {
        Ok(s) => s,
        Err(e) => return tenant_error_outcome(e),
    };
    let report = slot.handle().read_snapshot(|s| s.scrub());
    match report {
        Ok(report) => {
            let summary = VerifySummary {
                containers_checked: report.containers_checked,
                chunks_checked: report.chunks_checked,
                recipes_checked: report.recipes_checked,
                corrupt_chunks: report.corrupt_chunks.clone(),
            };
            let clean = summary.is_clean();
            match send_response(stream, &Response::VerifyOk(summary)) {
                Ok(()) => Outcome::Ok {
                    detail: format!(" clean={clean}"),
                },
                Err(e) => Outcome::Transport(e),
            }
        }
        Err(e) => repo_error_outcome(e),
    }
}

/// The `tenant list` admin verb: every initialized tenant with its
/// retained-version usage and whether its handle is currently live.
fn serve_tenant_list<S: NetStream>(stream: &mut S, shared: &Shared) -> Outcome {
    let tenants = match shared.registry.list() {
        Ok(t) => t,
        Err(e) => return tenant_error_outcome(e),
    };
    // Sized by growth, not up front: the tenant count comes from a
    // directory listing, which the wire-alloc wall treats as unbounded.
    let mut entries = Vec::new();
    for tenant in tenants {
        // Liveness before the usage read — the read itself makes the
        // tenant live.
        let live = shared.registry.is_live(&tenant);
        // Usage is best-effort: one unreadable (e.g. poisoned) tenant
        // reports zeros instead of failing the whole admin listing.
        let usage = shared.registry.get(&tenant).ok().and_then(|slot| {
            slot.handle()
                .read(|s| {
                    let versions = s.versions().len() as u64;
                    let bytes: u64 = s
                        .versions()
                        .iter()
                        .filter_map(|v| s.recipes().get(*v))
                        .map(|recipe| recipe.total_bytes())
                        .sum();
                    (versions, bytes)
                })
                .ok()
        });
        let (versions, logical_bytes) = usage.unwrap_or((0, 0));
        entries.push(TenantListEntry {
            tenant: tenant.as_str().to_string(),
            versions,
            logical_bytes,
            live,
        });
    }
    let count = entries.len();
    let response = Response::TenantListOk(TenantListResponse { tenants: entries });
    match send_response(stream, &response) {
        Ok(()) => Outcome::Ok {
            detail: format!(" tenants={count}"),
        },
        Err(e) => Outcome::Transport(e),
    }
}

/// The `tenant stats` admin verb: per-tenant request counters for every
/// tenant that has served a request this process lifetime.
fn serve_tenant_stats<S: NetStream>(stream: &mut S, shared: &Shared) -> Outcome {
    let entries: Vec<TenantStatsEntry> = shared
        .stats
        .tenant_snapshots()
        .into_iter()
        .map(|(tenant, s)| TenantStatsEntry {
            tenant: tenant.as_str().to_string(),
            requests_ok: s.requests_ok,
            requests_failed: s.requests_failed,
            bytes_in: s.bytes_in,
            bytes_out: s.bytes_out,
            rolled_back: s.rolled_back,
            quota_refused: s.quota_refused,
        })
        .collect();
    let count = entries.len();
    let response = Response::TenantStatsOk(TenantStatsResponse { tenants: entries });
    match send_response(stream, &response) {
        Ok(()) => Outcome::Ok {
            detail: format!(" tenants={count}"),
        },
        Err(e) => Outcome::Transport(e),
    }
}
