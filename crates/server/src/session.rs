//! Server-side resumable-session state.
//!
//! A backup interrupted mid-stream parks its received prefix here, keyed by
//! the client-generated [`SessionToken`]; the retrying client's
//! `BackupResume` finds the prefix and continues from the acknowledged
//! offset instead of re-sending everything. Tokens whose backup already
//! committed are remembered with their summary, so a retry that races the
//! commit acknowledgement is answered from the cache — the repository never
//! commits the same token twice.
//!
//! Both tables are bounded: at most `max_sessions` entries each, evicting
//! least-recently-used, and every entry expires `ttl` after its last touch.
//! The bounds are the honest limit of the scheme — a client that comes back
//! after eviction or expiry simply starts over (backup) or re-transfers
//! (restore); correctness never depends on an entry still being present.

use std::time::{Duration, Instant};

use hidestore_proto::{BackupSummary, SessionToken, TenantId};

/// A parked, partially-received backup stream.
struct ParkedBackup {
    tenant: TenantId,
    token: SessionToken,
    data: Vec<u8>,
    total_len: u64,
    touched: Instant,
}

/// A committed token with the summary the original commit produced.
struct CommittedBackup {
    tenant: TenantId,
    token: SessionToken,
    summary: BackupSummary,
    touched: Instant,
}

/// LRU + TTL bounded tables of parked and committed backup sessions. One
/// instance lives behind a mutex in the server's shared state.
pub struct SessionTable {
    max_sessions: usize,
    ttl: Duration,
    /// Least-recently-used first.
    parked: Vec<ParkedBackup>,
    /// Least-recently-used first.
    committed: Vec<CommittedBackup>,
}

impl SessionTable {
    /// A table bounded to `max_sessions` parked (and `max_sessions`
    /// committed) entries, each expiring `ttl` after its last touch. A
    /// zero `ttl` never expires; `max_sessions` is clamped to at least 1.
    #[must_use]
    pub fn new(max_sessions: usize, ttl: Duration) -> Self {
        SessionTable {
            max_sessions: max_sessions.max(1),
            ttl,
            parked: Vec::new(),
            committed: Vec::new(),
        }
    }

    fn expired(&self, touched: Instant, now: Instant) -> bool {
        !self.ttl.is_zero() && now.duration_since(touched) >= self.ttl
    }

    /// Drops every entry whose TTL has elapsed. Called lazily from each
    /// mutating entry point, so an idle table still cannot hold dead
    /// sessions past one more access.
    fn sweep(&mut self, now: Instant) {
        let ttl = self.ttl;
        if ttl.is_zero() {
            return;
        }
        self.parked.retain(|p| now.duration_since(p.touched) < ttl);
        self.committed
            .retain(|c| now.duration_since(c.touched) < ttl);
    }

    /// Parks the received prefix of an interrupted backup. Entries are
    /// keyed by *(tenant, token)*: the token alone is client-chosen, so
    /// scoping by tenant is what stops one tenant's token from touching —
    /// or resuming into — another tenant's session. Replaces any previous
    /// entry for the key; evicts the least-recently-used entry when the
    /// table is full.
    pub fn park(&mut self, tenant: &TenantId, token: SessionToken, data: Vec<u8>, total_len: u64) {
        let now = Instant::now();
        self.sweep(now);
        self.parked
            .retain(|p| p.token != token || p.tenant != *tenant);
        if self.parked.len() >= self.max_sessions {
            self.parked.remove(0);
        }
        self.parked.push(ParkedBackup {
            tenant: tenant.clone(),
            token,
            data,
            total_len,
            touched: now,
        });
    }

    /// Removes and returns the parked prefix for `tenant`'s `token` (and
    /// its declared total length), if present and not expired.
    pub fn take(&mut self, tenant: &TenantId, token: SessionToken) -> Option<(Vec<u8>, u64)> {
        let now = Instant::now();
        self.sweep(now);
        let at = self
            .parked
            .iter()
            .position(|p| p.token == token && p.tenant == *tenant)?;
        let parked = self.parked.remove(at);
        Some((parked.data, parked.total_len))
    }

    /// Records that `tenant`'s `token` committed, caching the summary for
    /// duplicate-suppression. Any parked prefix for the key is dropped.
    pub fn record_committed(
        &mut self,
        tenant: &TenantId,
        token: SessionToken,
        summary: BackupSummary,
    ) {
        let now = Instant::now();
        self.sweep(now);
        self.parked
            .retain(|p| p.token != token || p.tenant != *tenant);
        self.committed
            .retain(|c| c.token != token || c.tenant != *tenant);
        if self.committed.len() >= self.max_sessions {
            self.committed.remove(0);
        }
        self.committed.push(CommittedBackup {
            tenant: tenant.clone(),
            token,
            summary,
            touched: now,
        });
    }

    /// The cached summary if `tenant`'s `token` already committed
    /// (refreshes its LRU position and TTL — a client actively retrying
    /// keeps its dedup window alive).
    pub fn committed(&mut self, tenant: &TenantId, token: SessionToken) -> Option<BackupSummary> {
        let now = Instant::now();
        let at = self
            .committed
            .iter()
            .position(|c| c.token == token && c.tenant == *tenant)?;
        if self.expired(self.committed[at].touched, now) {
            self.committed.remove(at);
            return None;
        }
        let mut entry = self.committed.remove(at);
        entry.touched = now;
        let summary = entry.summary;
        self.committed.push(entry);
        Some(summary)
    }

    /// Number of parked (incomplete) sessions currently held. The chaos
    /// suite asserts this returns to zero — no leaked sessions.
    #[must_use]
    pub fn open_sessions(&self) -> usize {
        self.parked.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tid(s: &str) -> TenantId {
        TenantId::new(s).unwrap()
    }

    fn summary(version: u32) -> BackupSummary {
        BackupSummary {
            version,
            logical_bytes: 10,
            stored_bytes: 10,
            chunks: 1,
            unique_chunks: 1,
            cold_chunks: 0,
        }
    }

    #[test]
    fn park_take_round_trip() {
        let a = tid("a");
        let mut t = SessionTable::new(4, Duration::ZERO);
        t.park(&a, [1; 16], vec![1, 2, 3], 10);
        assert_eq!(t.open_sessions(), 1);
        assert_eq!(t.take(&a, [1; 16]), Some((vec![1, 2, 3], 10)));
        assert_eq!(t.open_sessions(), 0);
        assert_eq!(t.take(&a, [1; 16]), None, "take is consuming");
    }

    #[test]
    fn same_token_different_tenants_never_collide() {
        // The token is client-chosen: two tenants may pick the same one.
        // Neither may see — or clobber — the other's session or dedup
        // cache through it.
        let (a, b) = (tid("a"), tid("b"));
        let mut t = SessionTable::new(8, Duration::ZERO);
        t.park(&a, [7; 16], vec![1, 1], 10);
        t.park(&b, [7; 16], vec![2, 2, 2], 20);
        assert_eq!(t.open_sessions(), 2, "distinct sessions, one token");
        assert_eq!(t.take(&a, [7; 16]), Some((vec![1, 1], 10)));
        assert_eq!(t.take(&b, [7; 16]), Some((vec![2, 2, 2], 20)));
        t.record_committed(&a, [9; 16], summary(5));
        assert_eq!(
            t.committed(&b, [9; 16]),
            None,
            "tenant B must not be answered from tenant A's dedup cache"
        );
        assert_eq!(t.committed(&a, [9; 16]).map(|s| s.version), Some(5));
    }

    #[test]
    fn park_replaces_same_token() {
        let a = tid("a");
        let mut t = SessionTable::new(4, Duration::ZERO);
        t.park(&a, [1; 16], vec![1], 10);
        t.park(&a, [1; 16], vec![1, 2], 10);
        assert_eq!(t.open_sessions(), 1);
        assert_eq!(t.take(&a, [1; 16]), Some((vec![1, 2], 10)));
    }

    #[test]
    fn lru_eviction_caps_the_table() {
        let a = tid("a");
        let mut t = SessionTable::new(2, Duration::ZERO);
        t.park(&a, [1; 16], vec![1], 1);
        t.park(&a, [2; 16], vec![2], 2);
        t.park(&a, [3; 16], vec![3], 3);
        assert_eq!(t.open_sessions(), 2);
        assert_eq!(t.take(&a, [1; 16]), None, "oldest was evicted");
        assert!(t.take(&a, [2; 16]).is_some());
        assert!(t.take(&a, [3; 16]).is_some());
    }

    #[test]
    fn committed_dedupes_and_drops_parked() {
        let a = tid("a");
        let mut t = SessionTable::new(4, Duration::ZERO);
        t.park(&a, [1; 16], vec![1], 10);
        t.record_committed(&a, [1; 16], summary(3));
        assert_eq!(t.open_sessions(), 0, "commit clears the parked prefix");
        assert_eq!(t.committed(&a, [1; 16]).map(|s| s.version), Some(3));
        assert_eq!(t.committed(&a, [2; 16]), None);
    }

    #[test]
    fn ttl_expires_entries() {
        let a = tid("a");
        let mut t = SessionTable::new(4, Duration::from_millis(20));
        t.park(&a, [1; 16], vec![1], 10);
        t.record_committed(&a, [2; 16], summary(1));
        std::thread::sleep(Duration::from_millis(40));
        assert_eq!(t.take(&a, [1; 16]), None, "parked entry expired");
        assert_eq!(t.committed(&a, [2; 16]), None, "committed entry expired");
        assert_eq!(t.open_sessions(), 0);
    }

    #[test]
    fn committed_refresh_keeps_active_token_alive() {
        let a = tid("a");
        let mut t = SessionTable::new(4, Duration::from_millis(60));
        t.record_committed(&a, [1; 16], summary(1));
        for _ in 0..3 {
            std::thread::sleep(Duration::from_millis(25));
            assert!(t.committed(&a, [1; 16]).is_some(), "each hit refreshes TTL");
        }
    }
}
