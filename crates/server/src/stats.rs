//! Atomic server-wide counters and their printable snapshot, plus the
//! per-tenant counter table behind the `tenant stats` admin verb.

use std::collections::BTreeMap;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use hidestore_proto::TenantId;

/// Lock-free counters every connection thread updates. Read them with
/// [`ServerStats::snapshot`].
#[derive(Debug, Default)]
pub struct ServerStats {
    /// Connections accepted by the listener.
    pub accepted: AtomicU64,
    /// Requests completed successfully.
    pub requests_ok: AtomicU64,
    /// Requests answered with an ERROR frame (or aborted by a transport
    /// failure mid-request).
    pub requests_failed: AtomicU64,
    /// Frames or streams refused for exceeding the configured size limits.
    pub rejected_oversize: AtomicU64,
    /// Connections dropped because the peer stayed silent past the
    /// read/write deadline.
    pub timed_out: AtomicU64,
    /// Mutations rolled back after a failure (the repository reloaded its
    /// committed on-disk state).
    pub rolled_back: AtomicU64,
    /// Payload bytes received in DATA frames.
    pub bytes_in: AtomicU64,
    /// Payload bytes sent in DATA frames.
    pub bytes_out: AtomicU64,
    /// Connections refused with a retryable `busy` error because the
    /// admission gate found the worker queue full (load shedding).
    pub busy_rejected: AtomicU64,
    /// Backup/restore requests that resumed an interrupted session at a
    /// non-zero offset.
    pub sessions_resumed: AtomicU64,
    /// Retried backups answered from the idempotency cache instead of
    /// committing a second time.
    pub dedup_hits: AtomicU64,
    /// Per-tenant counter rows, created lazily on a tenant's first
    /// request. Tenants never share a row, so one tenant's traffic can
    /// never inflate another's counters.
    tenants: Mutex<BTreeMap<TenantId, Arc<TenantStats>>>,
}

impl ServerStats {
    /// Adds `n` to a counter.
    pub fn add(counter: &AtomicU64, n: u64) {
        counter.fetch_add(n, Ordering::Relaxed);
    }

    /// Increments a counter by one.
    pub fn bump(counter: &AtomicU64) {
        Self::add(counter, 1);
    }

    /// A consistent-enough point-in-time copy for reporting.
    pub fn snapshot(&self) -> StatsSnapshot {
        StatsSnapshot {
            accepted: self.accepted.load(Ordering::Relaxed),
            requests_ok: self.requests_ok.load(Ordering::Relaxed),
            requests_failed: self.requests_failed.load(Ordering::Relaxed),
            rejected_oversize: self.rejected_oversize.load(Ordering::Relaxed),
            timed_out: self.timed_out.load(Ordering::Relaxed),
            rolled_back: self.rolled_back.load(Ordering::Relaxed),
            bytes_in: self.bytes_in.load(Ordering::Relaxed),
            bytes_out: self.bytes_out.load(Ordering::Relaxed),
            busy_rejected: self.busy_rejected.load(Ordering::Relaxed),
            sessions_resumed: self.sessions_resumed.load(Ordering::Relaxed),
            dedup_hits: self.dedup_hits.load(Ordering::Relaxed),
        }
    }

    /// The counter row for `tenant`, created on first use. Cheap to call
    /// per request: one short map lookup under a mutex, then lock-free
    /// atomic bumps on the returned row.
    pub fn tenant(&self, tenant: &TenantId) -> Arc<TenantStats> {
        let mut tenants = self.tenants.lock().unwrap_or_else(|e| e.into_inner());
        tenants
            .entry(tenant.clone())
            .or_insert_with(|| Arc::new(TenantStats::default()))
            .clone()
    }

    /// Point-in-time copies of every tenant's counters, sorted by tenant
    /// id.
    pub fn tenant_snapshots(&self) -> Vec<(TenantId, TenantStatsSnapshot)> {
        let tenants = self.tenants.lock().unwrap_or_else(|e| e.into_inner());
        tenants
            .iter()
            .map(|(t, s)| (t.clone(), s.snapshot()))
            .collect()
    }
}

/// Lock-free counters scoped to one tenant. A row exists from the
/// tenant's first request until the daemon exits; it survives LRU
/// eviction of the tenant's repository handle.
#[derive(Debug, Default)]
pub struct TenantStats {
    /// Requests for this tenant completed successfully.
    pub requests_ok: AtomicU64,
    /// Requests for this tenant answered with an ERROR frame (or aborted
    /// by a transport failure mid-request).
    pub requests_failed: AtomicU64,
    /// Payload bytes received in DATA frames for this tenant.
    pub bytes_in: AtomicU64,
    /// Payload bytes sent in DATA frames for this tenant.
    pub bytes_out: AtomicU64,
    /// This tenant's mutations rolled back after a failure.
    pub rolled_back: AtomicU64,
    /// Backups refused by this tenant's quota before anything mutated.
    pub quota_refused: AtomicU64,
}

impl TenantStats {
    /// A consistent-enough point-in-time copy for reporting.
    pub fn snapshot(&self) -> TenantStatsSnapshot {
        TenantStatsSnapshot {
            requests_ok: self.requests_ok.load(Ordering::Relaxed),
            requests_failed: self.requests_failed.load(Ordering::Relaxed),
            bytes_in: self.bytes_in.load(Ordering::Relaxed),
            bytes_out: self.bytes_out.load(Ordering::Relaxed),
            rolled_back: self.rolled_back.load(Ordering::Relaxed),
            quota_refused: self.quota_refused.load(Ordering::Relaxed),
        }
    }
}

/// Plain-value copy of [`TenantStats`] at one instant.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct TenantStatsSnapshot {
    /// Requests completed successfully.
    pub requests_ok: u64,
    /// Requests that failed.
    pub requests_failed: u64,
    /// DATA bytes received.
    pub bytes_in: u64,
    /// DATA bytes sent.
    pub bytes_out: u64,
    /// Mutations rolled back.
    pub rolled_back: u64,
    /// Backups refused by quota.
    pub quota_refused: u64,
}

/// Plain-value copy of [`ServerStats`] at one instant.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct StatsSnapshot {
    /// Connections accepted.
    pub accepted: u64,
    /// Requests completed successfully.
    pub requests_ok: u64,
    /// Requests that failed.
    pub requests_failed: u64,
    /// Oversize frames/streams rejected.
    pub rejected_oversize: u64,
    /// Connections timed out.
    pub timed_out: u64,
    /// Mutations rolled back.
    pub rolled_back: u64,
    /// DATA bytes received.
    pub bytes_in: u64,
    /// DATA bytes sent.
    pub bytes_out: u64,
    /// Connections shed with a `busy` refusal.
    pub busy_rejected: u64,
    /// Requests that resumed an interrupted session.
    pub sessions_resumed: u64,
    /// Duplicate backup commits suppressed by the idempotency cache.
    pub dedup_hits: u64,
}

impl fmt::Display for StatsSnapshot {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "accepted={} ok={} failed={} rejected_oversize={} timed_out={} \
             rolled_back={} bytes_in={} bytes_out={} busy_rejected={} \
             sessions_resumed={} dedup_hits={}",
            self.accepted,
            self.requests_ok,
            self.requests_failed,
            self.rejected_oversize,
            self.timed_out,
            self.rolled_back,
            self.bytes_in,
            self.bytes_out,
            self.busy_rejected,
            self.sessions_resumed,
            self.dedup_hits,
        )
    }
}
