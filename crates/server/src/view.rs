//! Builders mapping repository state to the wire protocol's response
//! types.
//!
//! Both the daemon (answering `List`/`Stats` requests) and the local CLI
//! (`hidestore list --json` without a server) go through these builders, so
//! the machine-readable output is one serialization, not two.

use hidestore_core::{chain, HiDeStore, HiDeStoreError};
use hidestore_dedup::analysis::analyze_plan;
use hidestore_proto::{ListResponse, StatsResponse, VersionEntry, VersionStatsEntry};
use hidestore_storage::ContainerStore;

/// Builds the [`ListResponse`] for `hidestore list` / `Request::List`.
pub fn list_response<S: ContainerStore>(system: &HiDeStore<S>) -> ListResponse {
    let mut versions = Vec::new();
    for v in system.versions() {
        // A listed version always has a recipe; a repository where it does
        // not is corrupt, and `list` reports what is resolvable.
        let Some(recipe) = system.recipes().get(v) else {
            continue;
        };
        versions.push(VersionEntry {
            version: v.get(),
            bytes: recipe.total_bytes(),
            chunks: recipe.len() as u64,
        });
    }
    ListResponse {
        versions,
        archival_containers: system.archival().ids().len() as u64,
        active_containers: system.pool().container_count() as u64,
        hot_chunks: system.pool().chunk_count() as u64,
    }
}

/// Builds the [`StatsResponse`] for `hidestore stats` / `Request::Stats`.
///
/// # Errors
///
/// Fails when a version's recipe chain cannot be resolved (corruption).
pub fn stats_response<S: ContainerStore>(
    system: &HiDeStore<S>,
) -> Result<StatsResponse, HiDeStoreError> {
    let capacity = system.config().container_capacity;
    let mut versions = Vec::new();
    for v in system.versions() {
        let Some(recipe) = system.recipes().get(v) else {
            continue;
        };
        let plan = chain::resolve_plan(system.recipes(), system.pool(), v)?;
        let report = analyze_plan(plan.into_iter().map(|(_, size, cid)| (size, cid)), capacity);
        versions.push(VersionStatsEntry {
            version: v.get(),
            bytes: recipe.total_bytes(),
            chunks: recipe.len() as u64,
            cfl: report.cfl,
            mean_kib_per_container: report.mean_bytes_per_container / 1024.0,
        });
    }
    Ok(StatsResponse {
        versions,
        pool_containers: system.pool().container_count() as u64,
        pool_chunks: system.pool().chunk_count() as u64,
        pool_live_bytes: system.pool().live_bytes(),
        out_of_line_rewritten_bytes: system.out_of_line_rewritten_bytes(),
    })
}
