//! Sequential container filling with explicit seal handoff.
//!
//! Both backup pipelines (the Destor-style baseline and HiDeStore's cold
//! demotion) share the same container-filling loop: append chunks to an open
//! container, seal it when full, open the next one under a fresh ID. The
//! [`ContainerBuilder`] owns exactly that state — the open container and the
//! ID counter — and *returns* sealed containers to the caller instead of
//! writing them itself. Keeping the store out of the builder is what makes it
//! safe to hand the builder to a commit stage on another thread: the builder
//! is plain owned data (`Send`), and the single commit stage decides when and
//! where sealed containers are persisted, so container IDs and store write
//! order stay deterministic no matter how many threads feed it.

use hidestore_hash::Fingerprint;

use crate::container::{Container, ContainerId};

/// Fills containers sequentially, sealing full ones back to the caller.
///
/// # Examples
///
/// ```
/// use hidestore_storage::ContainerBuilder;
/// use hidestore_hash::Fingerprint;
///
/// let mut builder = ContainerBuilder::new(1, 64);
/// let (cid, sealed) = builder.append(Fingerprint::of(b"a"), &[0u8; 40]);
/// assert_eq!(cid.get(), 1);
/// assert!(sealed.is_none());
/// // The next chunk does not fit: container 1 is sealed and handed back.
/// let (cid, sealed) = builder.append(Fingerprint::of(b"b"), &[1u8; 40]);
/// assert_eq!(cid.get(), 2);
/// assert_eq!(sealed.map(|c| c.id().get()), Some(1));
/// ```
#[derive(Debug)]
pub struct ContainerBuilder {
    next_id: u32,
    capacity: usize,
    version_tag: u32,
    open: Option<Container>,
}

impl ContainerBuilder {
    /// Creates a builder that numbers containers starting at `next_id`.
    ///
    /// # Panics
    ///
    /// Panics if `next_id` is 0 (reserved) or `capacity` is 0.
    pub fn new(next_id: u32, capacity: usize) -> Self {
        assert!(next_id != 0, "container id 0 is reserved");
        assert!(capacity > 0, "container capacity must be non-zero");
        ContainerBuilder {
            next_id,
            capacity,
            version_tag: 0,
            open: None,
        }
    }

    /// Tags every container opened *from now on* with `version` (see
    /// [`Container::set_version_tag`]); pass 0 to stop tagging.
    pub fn set_version_tag(&mut self, version: u32) {
        self.version_tag = version;
    }

    /// Appends a chunk, returning the container it landed in and, when the
    /// previously open container had to be sealed to make room, that sealed
    /// container for the caller to persist.
    ///
    /// If the open container already holds `fingerprint`, its ID is returned
    /// without storing a second copy (the caller deduplicated across
    /// containers already; this catches back-to-back duplicates within one).
    ///
    /// # Panics
    ///
    /// Panics if `data` is larger than the builder's container capacity.
    pub fn append(
        &mut self,
        fingerprint: Fingerprint,
        data: &[u8],
    ) -> (ContainerId, Option<Container>) {
        assert!(
            data.len() <= self.capacity,
            "chunk of {} bytes exceeds container capacity {}",
            data.len(),
            self.capacity
        );
        let mut sealed = None;
        loop {
            let container = match self.open.as_mut() {
                Some(c) => c,
                None => {
                    let id = ContainerId::new(self.next_id);
                    self.next_id += 1;
                    let mut c = Container::new(id, self.capacity);
                    if self.version_tag != 0 {
                        c.set_version_tag(self.version_tag);
                    }
                    self.open.insert(c)
                }
            };
            if container.contains(&fingerprint) {
                return (container.id(), sealed);
            }
            if container.try_add(fingerprint, data) {
                return (container.id(), sealed);
            }
            // Full: seal and retry with a fresh container. At most one seal
            // per append because the chunk fits an empty container.
            sealed = self.open.take();
        }
    }

    /// Takes the open container out of the builder (e.g. to seal it at a
    /// version boundary). Returns `None` if nothing is open.
    pub fn take_open(&mut self) -> Option<Container> {
        self.open.take()
    }

    /// The open container, if any.
    pub fn open_container(&self) -> Option<&Container> {
        self.open.as_ref()
    }

    /// The ID the next freshly opened container will get.
    pub fn next_id(&self) -> u32 {
        self.next_id
    }

    /// The capacity each container is created with.
    pub fn capacity(&self) -> usize {
        self.capacity
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fp(n: u64) -> Fingerprint {
        Fingerprint::synthetic(n)
    }

    #[test]
    fn builder_is_send() {
        fn assert_send<T: Send>() {}
        assert_send::<ContainerBuilder>();
    }

    #[test]
    fn fills_and_seals_in_order() {
        let mut b = ContainerBuilder::new(1, 100);
        let mut sealed_ids = Vec::new();
        for i in 0..10u64 {
            let (cid, sealed) = b.append(fp(i), &[i as u8; 40]);
            assert!(cid.get() >= 1);
            if let Some(c) = sealed {
                sealed_ids.push(c.id().get());
            }
        }
        // 2 chunks of 40 bytes per 100-byte container: 10 chunks = 5
        // containers, 4 sealed plus 1 still open.
        assert_eq!(sealed_ids, vec![1, 2, 3, 4]);
        assert_eq!(b.open_container().map(|c| c.id().get()), Some(5));
        assert_eq!(b.next_id(), 6);
    }

    #[test]
    fn duplicate_in_open_container_returns_same_cid() {
        let mut b = ContainerBuilder::new(7, 1024);
        let (c1, _) = b.append(fp(1), b"data");
        let (c2, sealed) = b.append(fp(1), b"data");
        assert_eq!(c1, c2);
        assert!(sealed.is_none());
        assert_eq!(b.open_container().map(|c| c.chunk_count()), Some(1));
    }

    #[test]
    fn version_tag_applied_to_new_containers() {
        let mut b = ContainerBuilder::new(1, 100);
        b.set_version_tag(9);
        let (_, _) = b.append(fp(1), &[0u8; 60]);
        let (_, sealed) = b.append(fp(2), &[1u8; 60]);
        let sealed = sealed.into_iter().next().unwrap();
        assert_eq!(sealed.version_tag(), 9);
        assert_eq!(b.open_container().map(|c| c.version_tag()), Some(9));
    }

    #[test]
    fn take_open_empties_builder() {
        let mut b = ContainerBuilder::new(1, 100);
        b.append(fp(1), b"x");
        assert!(b.take_open().is_some());
        assert!(b.take_open().is_none());
        // Appending again opens a fresh container under the next ID.
        let (cid, _) = b.append(fp(2), b"y");
        assert_eq!(cid.get(), 2);
    }

    #[test]
    #[should_panic(expected = "exceeds container capacity")]
    fn oversized_chunk_rejected() {
        let mut b = ContainerBuilder::new(1, 8);
        b.append(fp(1), &[0u8; 9]);
    }
}
