//! An in-flight chunk: fingerprint plus content bytes.

use bytes::Bytes;
use hidestore_hash::Fingerprint;

/// A chunk flowing through the backup pipeline: content plus its SHA-1
/// fingerprint.
///
/// The content is held in a [`Bytes`] so pipeline stages, containers and
/// caches can share it without copying.
///
/// # Examples
///
/// ```
/// use hidestore_storage::Chunk;
///
/// let chunk = Chunk::from_data(b"backup payload".as_slice());
/// assert_eq!(chunk.len(), 14);
/// assert_eq!(chunk.fingerprint(), hidestore_hash::Fingerprint::of(b"backup payload"));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Chunk {
    fingerprint: Fingerprint,
    data: Bytes,
}

impl Chunk {
    /// Builds a chunk from content, computing its fingerprint.
    pub fn from_data(data: impl Into<Bytes>) -> Self {
        let data = data.into();
        Chunk {
            fingerprint: Fingerprint::of(&data),
            data,
        }
    }

    /// Builds a chunk from a precomputed fingerprint and content.
    ///
    /// Used by trace-driven simulations where content is synthetic; callers
    /// are responsible for fingerprint/content consistency.
    pub fn from_parts(fingerprint: Fingerprint, data: impl Into<Bytes>) -> Self {
        Chunk {
            fingerprint,
            data: data.into(),
        }
    }

    /// Builds a trace-mode chunk: `size` bytes of filler derived from the
    /// fingerprint (its bytes repeated). Used by the `backup_trace` entry
    /// points that replay fingerprint traces without real content; the
    /// filler does **not** hash back to `fingerprint`, so trace-mode
    /// repositories serve counted experiments, not content verification.
    pub fn synthetic(fingerprint: Fingerprint, size: u32) -> Self {
        let mut data = Vec::with_capacity(size as usize);
        while data.len() < size as usize {
            let take = (size as usize - data.len()).min(20);
            data.extend_from_slice(&fingerprint.as_bytes()[..take]);
        }
        Chunk {
            fingerprint,
            data: data.into(),
        }
    }

    /// The chunk's fingerprint.
    pub fn fingerprint(&self) -> Fingerprint {
        self.fingerprint
    }

    /// The chunk content.
    pub fn data(&self) -> &Bytes {
        &self.data
    }

    /// Content length in bytes.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the chunk is empty (never true for pipeline-produced chunks).
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_data_fingerprints_content() {
        let c = Chunk::from_data(&b"abc"[..]);
        assert_eq!(c.fingerprint(), Fingerprint::of(b"abc"));
        assert_eq!(c.data().as_ref(), b"abc");
    }

    #[test]
    fn from_parts_keeps_given_fingerprint() {
        let fp = Fingerprint::synthetic(9);
        let c = Chunk::from_parts(fp, &b"xyz"[..]);
        assert_eq!(c.fingerprint(), fp);
    }

    #[test]
    fn clones_share_data() {
        let c = Chunk::from_data(vec![1u8; 1024]);
        let d = c.clone();
        // Bytes clones are reference-counted: same backing pointer.
        assert_eq!(c.data().as_ptr(), d.data().as_ptr());
    }

    #[test]
    fn synthetic_has_requested_size() {
        let fp = Fingerprint::synthetic(5);
        let c = Chunk::synthetic(fp, 100);
        assert_eq!(c.len(), 100);
        assert_eq!(c.fingerprint(), fp);
        assert_eq!(&c.data()[..20], fp.as_bytes());
    }

    #[test]
    fn empty_chunk() {
        let c = Chunk::from_data(&b""[..]);
        assert!(c.is_empty());
        assert_eq!(c.len(), 0);
    }
}
