//! Chunk containers: the unit of disk I/O in deduplication systems.

use std::collections::HashMap;
use std::fmt;

use bytes::Bytes;
use hidestore_hash::Fingerprint;

/// Default container capacity: 4 MiB, as in the paper (§2.1) and Destor.
pub const CONTAINER_CAPACITY: usize = 4 * 1024 * 1024;

/// Identifier of a container. IDs are positive; `0` is reserved because the
/// HiDeStore recipe encoding uses CID `0` to mean "still in active
/// containers" (§4.3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ContainerId(u32);

impl ContainerId {
    /// Creates a container ID.
    ///
    /// # Panics
    ///
    /// Panics if `id == 0` (reserved by the recipe encoding).
    pub fn new(id: u32) -> Self {
        assert!(
            id != 0,
            "container id 0 is reserved for the active-container marker"
        );
        ContainerId(id)
    }

    /// The raw numeric ID (always > 0).
    pub fn get(self) -> u32 {
        self.0
    }
}

impl fmt::Display for ContainerId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// A chunk container: a metadata section (fingerprint → offset/length table)
/// plus the packed chunk data, mirroring Figure 6 of the paper.
///
/// Containers also carry a `version_tag`: for HiDeStore archival containers
/// this is the backup version at whose end the container was sealed, which
/// makes expired-version deletion a container-drop with no garbage collection
/// (§4.5). Baseline systems leave it at 0.
///
/// The container tracks *dead bytes* created by [`Container::remove`] so the
/// chunk filter can compute utilization and decide when to merge sparse
/// active containers (§4.2).
#[derive(Debug, Clone)]
pub struct Container {
    id: ContainerId,
    version_tag: u32,
    capacity: usize,
    entries: HashMap<Fingerprint, (u32, u32)>,
    data: Vec<u8>,
    dead_bytes: usize,
}

impl Container {
    /// Creates an empty container with the given capacity.
    pub fn new(id: ContainerId, capacity: usize) -> Self {
        Container {
            id,
            version_tag: 0,
            capacity,
            entries: HashMap::new(),
            data: Vec::new(),
            dead_bytes: 0,
        }
    }

    /// Creates an empty container with the paper's 4 MiB capacity.
    pub fn with_default_capacity(id: ContainerId) -> Self {
        Self::new(id, CONTAINER_CAPACITY)
    }

    /// The container's ID.
    pub fn id(&self) -> ContainerId {
        self.id
    }

    /// Reassigns the container's ID (used when sealing an active container
    /// into the archival store under a fresh archival ID).
    pub fn set_id(&mut self, id: ContainerId) {
        self.id = id;
    }

    /// The version tag (0 if untagged).
    pub fn version_tag(&self) -> u32 {
        self.version_tag
    }

    /// Tags the container with the version at whose end it was sealed.
    pub fn set_version_tag(&mut self, version: u32) {
        self.version_tag = version;
    }

    /// Capacity in bytes of the data section.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Tries to append a chunk; returns `false` if the data section would
    /// overflow the capacity (caller should seal this container and open a
    /// new one) or if the fingerprint is already present.
    pub fn try_add(&mut self, fingerprint: Fingerprint, data: &[u8]) -> bool {
        if self.entries.contains_key(&fingerprint) {
            return false;
        }
        if self.data.len() + data.len() > self.capacity {
            return false;
        }
        let offset = self.data.len() as u32;
        self.data.extend_from_slice(data);
        self.entries
            .insert(fingerprint, (offset, data.len() as u32));
        true
    }

    /// Whether a chunk with capacity `len` still fits.
    pub fn has_room(&self, len: usize) -> bool {
        self.data.len() + len <= self.capacity
    }

    /// Looks up a chunk's content by fingerprint.
    pub fn get(&self, fingerprint: &Fingerprint) -> Option<&[u8]> {
        self.entries
            .get(fingerprint)
            .map(|&(off, len)| &self.data[off as usize..(off + len) as usize])
    }

    /// Whether the container holds this fingerprint.
    pub fn contains(&self, fingerprint: &Fingerprint) -> bool {
        self.entries.contains_key(fingerprint)
    }

    /// Removes a chunk from the metadata table, leaving its bytes as dead
    /// space (the paper's Figure 6: freed space is not directly reusable
    /// because chunk sizes vary). Returns `true` if it was present.
    pub fn remove(&mut self, fingerprint: &Fingerprint) -> bool {
        if let Some((_, len)) = self.entries.remove(fingerprint) {
            self.dead_bytes += len as usize;
            true
        } else {
            false
        }
    }

    /// Number of live chunks.
    pub fn chunk_count(&self) -> usize {
        self.entries.len()
    }

    /// Whether the container has no live chunks.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Total bytes of live chunk data.
    pub fn live_bytes(&self) -> usize {
        self.data.len() - self.dead_bytes
    }

    /// Bytes occupied in the data section, live or dead.
    pub fn used_bytes(&self) -> usize {
        self.data.len()
    }

    /// Live bytes divided by capacity — the utilization measure HiDeStore's
    /// compactor uses to find sparse containers (§4.2).
    pub fn utilization(&self) -> f64 {
        self.live_bytes() as f64 / self.capacity as f64
    }

    /// Iterates over live chunks as `(fingerprint, content)` pairs, in data
    /// (= insertion) order.
    ///
    /// Deterministic order matters: restore caches (ChunkLru, ALACC) insert
    /// a read container's chunks in this order, so their eviction behaviour
    /// — and therefore container-read counts — must not vary run to run.
    pub fn iter(&self) -> impl Iterator<Item = (Fingerprint, &[u8])> + '_ {
        let mut order: Vec<(Fingerprint, (u32, u32))> =
            self.entries.iter().map(|(fp, &sl)| (*fp, sl)).collect();
        order.sort_unstable_by_key(|&(_, (off, _))| off);
        order
            .into_iter()
            .map(move |(fp, (off, len))| (fp, &self.data[off as usize..(off + len) as usize]))
    }

    /// Live fingerprints, in unspecified order.
    pub fn fingerprints(&self) -> impl Iterator<Item = Fingerprint> + '_ {
        self.entries.keys().copied()
    }

    /// The metadata table as `(fingerprint, offset, length)` triples, in
    /// unspecified order — the raw view integrity checkers need to validate
    /// that the metadata section agrees with the data section (bounds,
    /// overlaps) without going through content lookups.
    pub fn entry_locations(&self) -> impl Iterator<Item = (Fingerprint, u32, u32)> + '_ {
        self.entries.iter().map(|(fp, &(off, len))| (*fp, off, len))
    }

    /// Re-hashes every live chunk and returns the fingerprints whose content
    /// no longer matches — the container-level integrity check behind
    /// repository scrubbing.
    pub fn verify(&self) -> Vec<Fingerprint> {
        self.iter()
            .filter(|(fp, data)| Fingerprint::of(data) != *fp)
            .map(|(fp, _)| fp)
            .collect()
    }

    /// Rewrites the data section dropping dead bytes. Chunk offsets change;
    /// the metadata table is updated accordingly.
    pub fn compact_in_place(&mut self) {
        if self.dead_bytes == 0 {
            return;
        }
        let mut new_data = Vec::with_capacity(self.live_bytes());
        let mut live: Vec<(Fingerprint, (u32, u32))> =
            self.entries.iter().map(|(fp, loc)| (*fp, *loc)).collect();
        // Preserve current physical order to keep locality of insertion.
        live.sort_by_key(|&(_, (off, _))| off);
        for (fp, (off, len)) in live {
            let new_off = new_data.len() as u32;
            new_data.extend_from_slice(&self.data[off as usize..(off + len) as usize]);
            self.entries.insert(fp, (new_off, len));
        }
        self.data = new_data;
        self.dead_bytes = 0;
    }

    /// Serializes the container to the on-disk format used by
    /// [`crate::FileContainerStore`].
    ///
    /// Layout: magic `b"HDSC"`, u32 id, u32 version_tag, u64 capacity,
    /// u32 entry count, u32 data length, then per-entry
    /// (20-byte fp, u32 offset, u32 len), then the data section (live and
    /// dead bytes as-is).
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(32 + self.entries.len() * 28 + self.data.len());
        out.extend_from_slice(b"HDSC");
        out.extend_from_slice(&self.id.get().to_le_bytes());
        out.extend_from_slice(&self.version_tag.to_le_bytes());
        out.extend_from_slice(&(self.capacity as u64).to_le_bytes());
        out.extend_from_slice(&(self.entries.len() as u32).to_le_bytes());
        out.extend_from_slice(&(self.data.len() as u32).to_le_bytes());
        let mut entries: Vec<(&Fingerprint, &(u32, u32))> = self.entries.iter().collect();
        entries.sort_by_key(|&(fp, _)| *fp);
        for (fp, &(off, len)) in entries {
            out.extend_from_slice(fp.as_bytes());
            out.extend_from_slice(&off.to_le_bytes());
            out.extend_from_slice(&len.to_le_bytes());
        }
        out.extend_from_slice(&self.data);
        out
    }

    /// Parses a container from the [`Container::encode`] format.
    ///
    /// # Errors
    ///
    /// Returns a message describing the first structural problem found.
    pub fn decode(bytes: &[u8]) -> Result<Self, String> {
        fn take<'a>(bytes: &mut &'a [u8], n: usize) -> Result<&'a [u8], String> {
            if bytes.len() < n {
                return Err(format!("truncated container: needed {n} more bytes"));
            }
            let (head, tail) = bytes.split_at(n);
            *bytes = tail;
            Ok(head)
        }
        fn take_array<const N: usize>(bytes: &mut &[u8]) -> Result<[u8; N], String> {
            let head = take(bytes, N)?;
            let mut out = [0u8; N];
            out.copy_from_slice(head);
            Ok(out)
        }
        let mut rest = bytes;
        if take(&mut rest, 4)? != b"HDSC" {
            return Err("bad container magic".into());
        }
        let id = u32::from_le_bytes(take_array(&mut rest)?);
        if id == 0 {
            return Err("container id 0 is invalid".into());
        }
        let version_tag = u32::from_le_bytes(take_array(&mut rest)?);
        let capacity = u64::from_le_bytes(take_array(&mut rest)?) as usize;
        let n_entries = u32::from_le_bytes(take_array(&mut rest)?) as usize;
        let data_len = u32::from_le_bytes(take_array(&mut rest)?) as usize;
        let mut entries = HashMap::with_capacity(n_entries);
        let mut live_bytes = 0usize;
        for _ in 0..n_entries {
            let fp_bytes: [u8; 20] = take_array(&mut rest)?;
            let off = u32::from_le_bytes(take_array(&mut rest)?);
            let len = u32::from_le_bytes(take_array(&mut rest)?);
            if off as u64 + len as u64 > data_len as u64 {
                return Err(format!("entry extends past data section: {}+{}", off, len));
            }
            live_bytes += len as usize;
            entries.insert(Fingerprint::from_bytes(fp_bytes), (off, len));
        }
        let data = take(&mut rest, data_len)?.to_vec();
        Ok(Container {
            id: ContainerId::new(id),
            version_tag,
            capacity,
            entries,
            dead_bytes: data.len().saturating_sub(live_bytes),
            data,
        })
    }

    /// Extracts all live chunks as owned `(fingerprint, Bytes)` pairs in
    /// physical order — used when migrating chunks between containers.
    pub fn drain_chunks(&self) -> Vec<(Fingerprint, Bytes)> {
        let mut live: Vec<(Fingerprint, (u32, u32))> =
            self.entries.iter().map(|(fp, loc)| (*fp, *loc)).collect();
        live.sort_by_key(|&(_, (off, _))| off);
        live.into_iter()
            .map(|(fp, (off, len))| {
                (
                    fp,
                    Bytes::copy_from_slice(&self.data[off as usize..(off + len) as usize]),
                )
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fp(n: u64) -> Fingerprint {
        Fingerprint::synthetic(n)
    }

    #[test]
    fn add_and_get() {
        let mut c = Container::new(ContainerId::new(1), 1024);
        assert!(c.try_add(fp(1), b"hello"));
        assert_eq!(c.get(&fp(1)), Some(&b"hello"[..]));
        assert_eq!(c.get(&fp(2)), None);
        assert_eq!(c.chunk_count(), 1);
    }

    #[test]
    fn duplicate_add_rejected() {
        let mut c = Container::new(ContainerId::new(1), 1024);
        assert!(c.try_add(fp(1), b"a"));
        assert!(!c.try_add(fp(1), b"b"));
        assert_eq!(c.get(&fp(1)), Some(&b"a"[..]));
    }

    #[test]
    fn capacity_overflow_rejected() {
        let mut c = Container::new(ContainerId::new(1), 10);
        assert!(c.try_add(fp(1), b"12345678"));
        assert!(!c.try_add(fp(2), b"abc"));
        assert!(c.has_room(2));
        assert!(!c.has_room(3));
    }

    #[test]
    fn remove_creates_dead_space() {
        let mut c = Container::new(ContainerId::new(1), 100);
        c.try_add(fp(1), b"aaaa");
        c.try_add(fp(2), b"bbbb");
        assert!(c.remove(&fp(1)));
        assert!(!c.remove(&fp(1)));
        assert_eq!(c.live_bytes(), 4);
        assert_eq!(c.used_bytes(), 8);
        assert_eq!(c.get(&fp(1)), None);
        assert_eq!(c.get(&fp(2)), Some(&b"bbbb"[..]));
    }

    #[test]
    fn utilization_reflects_dead_space() {
        let mut c = Container::new(ContainerId::new(1), 100);
        c.try_add(fp(1), &[0; 50]);
        c.try_add(fp(2), &[1; 25]);
        assert!((c.utilization() - 0.75).abs() < 1e-9);
        c.remove(&fp(1));
        assert!((c.utilization() - 0.25).abs() < 1e-9);
    }

    #[test]
    fn compact_in_place_reclaims_dead_bytes() {
        let mut c = Container::new(ContainerId::new(1), 100);
        c.try_add(fp(1), b"xxxx");
        c.try_add(fp(2), b"yyyy");
        c.try_add(fp(3), b"zzzz");
        c.remove(&fp(2));
        c.compact_in_place();
        assert_eq!(c.used_bytes(), 8);
        assert_eq!(c.live_bytes(), 8);
        assert_eq!(c.get(&fp(1)), Some(&b"xxxx"[..]));
        assert_eq!(c.get(&fp(3)), Some(&b"zzzz"[..]));
        // Now there is room again.
        assert!(c.try_add(fp(4), &[7; 90]));
    }

    #[test]
    fn compact_noop_when_no_dead_bytes() {
        let mut c = Container::new(ContainerId::new(1), 100);
        c.try_add(fp(1), b"abcd");
        let before = c.encode();
        c.compact_in_place();
        assert_eq!(c.encode(), before);
    }

    #[test]
    fn encode_decode_round_trip() {
        let mut c = Container::new(ContainerId::new(42), 4096);
        c.set_version_tag(7);
        for i in 0..20 {
            c.try_add(fp(i), &vec![i as u8; 30 + i as usize]);
        }
        c.remove(&fp(5));
        let decoded = Container::decode(&c.encode()).unwrap();
        assert_eq!(decoded.id(), c.id());
        assert_eq!(decoded.version_tag(), 7);
        assert_eq!(decoded.capacity(), 4096);
        assert_eq!(decoded.chunk_count(), 19);
        assert_eq!(decoded.live_bytes(), c.live_bytes());
        for i in 0..20 {
            assert_eq!(decoded.get(&fp(i)), c.get(&fp(i)), "chunk {i}");
        }
    }

    #[test]
    fn decode_rejects_garbage() {
        assert!(Container::decode(b"").is_err());
        assert!(Container::decode(b"NOPE").is_err());
        assert!(Container::decode(&[0u8; 64]).is_err());
        // Truncated valid prefix.
        let mut c = Container::new(ContainerId::new(1), 64);
        c.try_add(fp(1), b"data");
        let enc = c.encode();
        assert!(Container::decode(&enc[..enc.len() - 2]).is_err());
    }

    #[test]
    fn drain_chunks_in_physical_order() {
        let mut c = Container::new(ContainerId::new(1), 1024);
        c.try_add(fp(3), b"c3");
        c.try_add(fp(1), b"c1");
        c.try_add(fp(2), b"c2");
        let drained = c.drain_chunks();
        assert_eq!(drained.len(), 3);
        assert_eq!(drained[0].1.as_ref(), b"c3");
        assert_eq!(drained[1].1.as_ref(), b"c1");
        assert_eq!(drained[2].1.as_ref(), b"c2");
    }

    #[test]
    fn verify_flags_only_mismatched_chunks() {
        let mut c = Container::new(ContainerId::new(1), 1024);
        let good = Fingerprint::of(b"good data");
        c.try_add(good, b"good data");
        // A trace-mode chunk: fingerprint deliberately unrelated to content.
        let fake = Fingerprint::synthetic(1);
        c.try_add(fake, b"filler");
        let corrupt = c.verify();
        assert_eq!(corrupt, vec![fake]);
    }

    #[test]
    #[should_panic(expected = "reserved")]
    fn id_zero_panics() {
        ContainerId::new(0);
    }

    #[test]
    fn iter_yields_all_live_chunks() {
        let mut c = Container::new(ContainerId::new(1), 1024);
        c.try_add(fp(1), b"one");
        c.try_add(fp(2), b"two");
        c.remove(&fp(1));
        let collected: Vec<_> = c.iter().collect();
        assert_eq!(collected, vec![(fp(2), &b"two"[..])]);
    }
}
