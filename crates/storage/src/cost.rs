//! Device cost models: turning counted I/O into estimated wall-clock time.
//!
//! The workspace measures restore cost as counted container reads (the
//! paper's speed factor) precisely because device speed varies. When an
//! absolute estimate *is* wanted — "how long would this restore take on an
//! HDD?" — a [`DeviceProfile`] converts the counts: each container read
//! costs one positioning latency plus transfer time at the device's
//! sequential bandwidth.

use std::time::Duration;

use crate::store::IoStats;

/// A storage device's cost parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DeviceProfile {
    /// Positioning cost per random container read (seek + rotation for HDD,
    /// request latency for SSD).
    pub positioning: Duration,
    /// Sequential transfer bandwidth in bytes per second.
    pub bandwidth: f64,
    /// Short human-readable name.
    pub name: &'static str,
}

impl DeviceProfile {
    /// A 7200 RPM enterprise HDD: ~8 ms positioning, 180 MB/s sequential.
    pub const HDD: DeviceProfile = DeviceProfile {
        positioning: Duration::from_micros(8_000),
        bandwidth: 180.0 * 1024.0 * 1024.0,
        name: "hdd",
    };

    /// A SATA SSD: ~80 µs request latency, 520 MB/s.
    pub const SSD: DeviceProfile = DeviceProfile {
        positioning: Duration::from_micros(80),
        bandwidth: 520.0 * 1024.0 * 1024.0,
        name: "ssd",
    };

    /// An NVMe SSD: ~15 µs latency, 3 GB/s.
    pub const NVME: DeviceProfile = DeviceProfile {
        positioning: Duration::from_micros(15),
        bandwidth: 3.0 * 1024.0 * 1024.0 * 1024.0,
        name: "nvme",
    };

    /// Estimated time to perform the reads recorded in `stats`.
    ///
    /// # Examples
    ///
    /// ```
    /// use hidestore_storage::{DeviceProfile, IoStats};
    ///
    /// let stats = IoStats { container_reads: 100, bytes_read: 400 << 20, ..IoStats::default() };
    /// let hdd = DeviceProfile::HDD.read_time(&stats);
    /// let nvme = DeviceProfile::NVME.read_time(&stats);
    /// assert!(hdd > nvme);
    /// ```
    pub fn read_time(&self, stats: &IoStats) -> Duration {
        let positioning = self.positioning * stats.container_reads as u32;
        let transfer = Duration::from_secs_f64(stats.bytes_read as f64 / self.bandwidth);
        positioning + transfer
    }

    /// Estimated restore throughput in MB/s for a restore that produced
    /// `logical_bytes` of output using the reads in `stats`.
    pub fn restore_throughput_mbps(&self, logical_bytes: u64, stats: &IoStats) -> f64 {
        let t = self.read_time(stats).as_secs_f64();
        if t <= 0.0 {
            return f64::INFINITY;
        }
        logical_bytes as f64 / (1024.0 * 1024.0) / t
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stats(reads: u64, bytes: u64) -> IoStats {
        IoStats {
            container_reads: reads,
            bytes_read: bytes,
            ..IoStats::default()
        }
    }

    #[test]
    fn hdd_dominated_by_seeks_on_fragmented_reads() {
        // 1000 reads of 4 KiB each: positioning (8s) dwarfs transfer.
        let s = stats(1000, 4096 * 1000);
        let t = DeviceProfile::HDD.read_time(&s);
        assert!(t >= Duration::from_secs(8));
        assert!(t < Duration::from_secs(9));
    }

    #[test]
    fn sequential_read_dominated_by_bandwidth() {
        // One read of 1.8 GB at 180 MB/s ≈ 10.24s.
        let s = stats(1, 1800 << 20);
        let t = DeviceProfile::HDD.read_time(&s);
        assert!(
            t > Duration::from_secs(9) && t < Duration::from_secs(11),
            "{t:?}"
        );
    }

    #[test]
    fn fewer_reads_mean_higher_throughput() {
        // Same logical output, same bytes moved, 10x fewer positioning ops.
        let fragmented = stats(10_000, 1 << 30);
        let clustered = stats(1_000, 1 << 30);
        let f = DeviceProfile::HDD.restore_throughput_mbps(1 << 30, &fragmented);
        let c = DeviceProfile::HDD.restore_throughput_mbps(1 << 30, &clustered);
        assert!(
            c > f * 2.0,
            "clustered {c:.1} MB/s vs fragmented {f:.1} MB/s"
        );
    }

    #[test]
    fn device_ordering() {
        let s = stats(5000, 20 << 30);
        let hdd = DeviceProfile::HDD.read_time(&s);
        let ssd = DeviceProfile::SSD.read_time(&s);
        let nvme = DeviceProfile::NVME.read_time(&s);
        assert!(hdd > ssd && ssd > nvme);
    }

    #[test]
    fn zero_reads_is_infinite_throughput() {
        let s = stats(0, 0);
        assert!(DeviceProfile::NVME
            .restore_throughput_mbps(100, &s)
            .is_infinite());
    }
}
