//! Error type shared by the storage layer.

use std::fmt;
use std::io;

use crate::container::ContainerId;
use crate::recipe::VersionId;

/// Errors returned by container stores and recipe stores.
#[derive(Debug)]
pub enum StorageError {
    /// A container ID was requested that the store does not hold.
    ContainerNotFound(ContainerId),
    /// A recipe was requested for a version that has no recipe.
    RecipeNotFound(VersionId),
    /// A container with this ID already exists and overwrite was not allowed.
    DuplicateContainer(ContainerId),
    /// A serialized container or recipe failed to parse.
    Corrupt(String),
    /// Underlying filesystem I/O failed.
    Io(io::Error),
}

impl fmt::Display for StorageError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StorageError::ContainerNotFound(id) => write!(f, "container {id} not found"),
            StorageError::RecipeNotFound(v) => write!(f, "recipe for version {v} not found"),
            StorageError::DuplicateContainer(id) => {
                write!(f, "container {id} already exists")
            }
            StorageError::Corrupt(msg) => write!(f, "corrupt storage data: {msg}"),
            StorageError::Io(e) => write!(f, "storage i/o error: {e}"),
        }
    }
}

impl std::error::Error for StorageError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            StorageError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for StorageError {
    fn from(e: io::Error) -> Self {
        StorageError::Io(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        let e = StorageError::ContainerNotFound(ContainerId::new(7));
        assert_eq!(e.to_string(), "container 7 not found");
        let e = StorageError::Corrupt("bad magic".into());
        assert!(e.to_string().contains("bad magic"));
    }

    #[test]
    fn io_error_source_preserved() {
        use std::error::Error;
        let e = StorageError::from(io::Error::other("disk on fire"));
        assert!(e.source().is_some());
    }

    #[test]
    fn error_is_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<StorageError>();
    }
}
