//! File-backed container store: one file per container under a directory.

use std::collections::BTreeSet;
use std::path::{Path, PathBuf};
use std::sync::Arc;

use hidestore_failpoint::{RealVfs, Vfs};

use crate::container::{Container, ContainerId};
use crate::error::StorageError;
use crate::store::{ContainerStore, IoStats};

/// On-disk container store.
///
/// Each container is written as `c<id>.ctr` in the store directory using the
/// [`Container::encode`] format. Reopening the directory recovers the set of
/// stored containers, so a backup repository survives process restarts — this
/// is what makes the reproduction a real backup system rather than only a
/// simulator.
///
/// Writes are crash-safe: the container is staged as a hidden `.c<id>.tmp`
/// file, fsynced, renamed into place, and the directory entry is fsynced, so
/// a crash can never leave a half-written `c<id>.ctr` visible. Stale tmp
/// files from an interrupted write are swept on open.
///
/// The store is generic over the [`Vfs`] io-shim so crash-consistency tests
/// can inject faults into *the same code path* production uses; the default
/// [`RealVfs`] monomorphizes every operation to a direct `std::fs` call.
///
/// # Examples
///
/// ```no_run
/// use hidestore_storage::{Container, ContainerId, ContainerStore, FileContainerStore};
///
/// let mut store = FileContainerStore::open("/tmp/backup-repo")?;
/// store.write(Container::with_default_capacity(ContainerId::new(1)))?;
/// # Ok::<(), hidestore_storage::StorageError>(())
/// ```
#[derive(Debug)]
pub struct FileContainerStore<V: Vfs = RealVfs> {
    dir: PathBuf,
    ids: BTreeSet<ContainerId>,
    stats: IoStats,
    vfs: V,
    defer_removals: bool,
    deferred: Vec<ContainerId>,
}

impl FileContainerStore {
    /// Opens (creating if necessary) a container store directory and indexes
    /// the containers already present.
    ///
    /// # Errors
    ///
    /// Fails if the directory cannot be created or listed, or if a container
    /// file has an unparsable name.
    pub fn open(dir: impl AsRef<Path>) -> Result<Self, StorageError> {
        Self::open_with(dir, RealVfs)
    }
}

impl<V: Vfs> FileContainerStore<V> {
    /// Opens the store through an explicit [`Vfs`] — the fault-injection
    /// entry point. Production code uses [`FileContainerStore::open`].
    ///
    /// Stale `.c<id>.tmp` files left behind by an interrupted
    /// [`ContainerStore::write`] are removed here: they were never renamed
    /// into place, so they are invisible to the index and must not
    /// accumulate on disk.
    ///
    /// # Errors
    ///
    /// Fails if the directory cannot be created or listed, or if a container
    /// file has an unparsable name.
    pub fn open_with(dir: impl AsRef<Path>, vfs: V) -> Result<Self, StorageError> {
        let dir = dir.as_ref().to_path_buf();
        vfs.create_dir_all(&dir)?;
        let mut ids = BTreeSet::new();
        let mut stale_tmp: Vec<PathBuf> = Vec::new();
        for path in vfs.read_dir(&dir)? {
            let Some(name) = path.file_name().map(|n| n.to_string_lossy().into_owned()) else {
                continue;
            };
            if let Some(id_str) = name.strip_prefix('c').and_then(|s| s.strip_suffix(".ctr")) {
                let id: u32 = id_str.parse().map_err(|_| {
                    StorageError::Corrupt(format!("bad container file name: {name}"))
                })?;
                ids.insert(ContainerId::new(id));
            } else if name.starts_with(".c") && name.ends_with(".tmp") {
                stale_tmp.push(path);
            }
        }
        for tmp in stale_tmp {
            vfs.remove_file(&tmp)?;
        }
        Ok(FileContainerStore {
            dir,
            ids,
            stats: IoStats::default(),
            vfs,
            defer_removals: false,
            deferred: Vec::new(),
        })
    }

    /// The directory backing this store.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// The [`Vfs`] this store performs its I/O through.
    pub fn vfs(&self) -> &V {
        &self.vfs
    }

    /// The on-disk path of container `id` (whether or not it exists).
    pub fn path_of(&self, id: ContainerId) -> PathBuf {
        self.dir.join(format!("c{}.ctr", id.get()))
    }

    /// Switches removal handling. With deferral on, [`ContainerStore::remove`]
    /// drops the container from the index but leaves its file on disk,
    /// queueing the ID for [`FileContainerStore::take_deferred`] — the
    /// transactional save turns the queue into journaled removals so a crash
    /// between a delete and the next save never leaves committed recipes
    /// pointing at vanished containers.
    pub fn set_deferred_removals(&mut self, defer: bool) {
        self.defer_removals = defer;
    }

    /// Container IDs removed since the last call, in removal order. The
    /// files are still on disk; the caller owns unlinking them now.
    pub fn take_deferred(&mut self) -> Vec<ContainerId> {
        std::mem::take(&mut self.deferred)
    }

    /// IDs currently queued for deferred removal.
    pub fn deferred_removals(&self) -> &[ContainerId] {
        &self.deferred
    }

    /// Drops `id` from the index without touching its file — used when the
    /// caller has moved the file elsewhere (e.g. into quarantine).
    ///
    /// Returns whether the ID was present.
    pub fn forget(&mut self, id: ContainerId) -> bool {
        self.ids.remove(&id)
    }

    /// Decode-verifies every indexed container file, returning the IDs that
    /// are unreadable or structurally corrupt along with the reason.
    ///
    /// Does not count toward [`IoStats`]: this is an integrity scan, not
    /// restore traffic.
    pub fn verify_containers(&self) -> Vec<(ContainerId, String)> {
        let mut bad = Vec::new();
        for &id in &self.ids {
            match self.vfs.read(&self.path_of(id)) {
                Ok(bytes) => {
                    if let Err(reason) = Container::decode(&bytes) {
                        bad.push((id, reason));
                    }
                }
                Err(err) => bad.push((id, format!("unreadable: {err}"))),
            }
        }
        bad
    }

    fn write_file(&self, container: &Container) -> Result<u64, StorageError> {
        let encoded = container.encode();
        let tmp = self.dir.join(format!(".c{}.tmp", container.id().get()));
        self.vfs.write(&tmp, &encoded)?;
        self.vfs.sync_file(&tmp)?;
        self.vfs.rename(&tmp, &self.path_of(container.id()))?;
        // Make the rename durable: without syncing the directory entry a
        // crash can forget a container the caller believes is sealed.
        self.vfs.sync_dir(&self.dir)?;
        Ok(encoded.len() as u64)
    }
}

impl<V: Vfs> ContainerStore for FileContainerStore<V> {
    fn write(&mut self, container: Container) -> Result<(), StorageError> {
        if self.ids.contains(&container.id()) {
            return Err(StorageError::DuplicateContainer(container.id()));
        }
        let written = self.write_file(&container)?;
        self.ids.insert(container.id());
        self.stats.container_writes += 1;
        self.stats.bytes_written += written;
        Ok(())
    }

    fn read(&mut self, id: ContainerId) -> Result<Arc<Container>, StorageError> {
        if !self.ids.contains(&id) {
            return Err(StorageError::ContainerNotFound(id));
        }
        let bytes = self.vfs.read(&self.path_of(id))?;
        let container = Container::decode(&bytes).map_err(StorageError::Corrupt)?;
        self.stats.container_reads += 1;
        self.stats.bytes_read += bytes.len() as u64;
        Ok(Arc::new(container))
    }

    fn contains(&self, id: ContainerId) -> bool {
        self.ids.contains(&id)
    }

    fn remove(&mut self, id: ContainerId) -> Result<(), StorageError> {
        if !self.ids.remove(&id) {
            return Err(StorageError::ContainerNotFound(id));
        }
        if self.defer_removals {
            self.deferred.push(id);
        } else {
            self.vfs.remove_file(&self.path_of(id))?;
            self.vfs.sync_dir(&self.dir)?;
        }
        self.stats.container_deletes += 1;
        Ok(())
    }

    fn replace(&mut self, container: Container) -> Result<(), StorageError> {
        if !self.ids.contains(&container.id()) {
            return Err(StorageError::ContainerNotFound(container.id()));
        }
        self.write_file(&container)?;
        Ok(())
    }

    fn ids(&self) -> Vec<ContainerId> {
        self.ids.iter().copied().collect()
    }

    fn stats(&self) -> IoStats {
        self.stats
    }

    fn reset_stats(&mut self) {
        self.stats = IoStats::default();
    }

    fn len(&self) -> usize {
        self.ids.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hidestore_hash::Fingerprint;
    use std::fs;

    fn temp_dir(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("hidestore-filestore-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    fn sample_container(id: u32) -> Container {
        let mut c = Container::new(ContainerId::new(id), 4096);
        for i in 0..10u64 {
            c.try_add(Fingerprint::synthetic(id as u64 * 100 + i), &[i as u8; 64]);
        }
        c
    }

    #[test]
    fn write_read_round_trip() {
        let dir = temp_dir("roundtrip");
        let mut s = FileContainerStore::open(&dir).unwrap();
        s.write(sample_container(1)).unwrap();
        let c = s.read(ContainerId::new(1)).unwrap();
        assert_eq!(c.chunk_count(), 10);
        assert_eq!(c.get(&Fingerprint::synthetic(103)), Some(&[3u8; 64][..]));
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn reopen_recovers_index() {
        let dir = temp_dir("reopen");
        {
            let mut s = FileContainerStore::open(&dir).unwrap();
            s.write(sample_container(1)).unwrap();
            s.write(sample_container(2)).unwrap();
        }
        let mut s = FileContainerStore::open(&dir).unwrap();
        assert_eq!(s.len(), 2);
        assert!(s.contains(ContainerId::new(2)));
        assert_eq!(s.read(ContainerId::new(2)).unwrap().chunk_count(), 10);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn remove_deletes_file() {
        let dir = temp_dir("remove");
        let mut s = FileContainerStore::open(&dir).unwrap();
        s.write(sample_container(1)).unwrap();
        s.remove(ContainerId::new(1)).unwrap();
        assert!(!dir.join("c1.ctr").exists());
        assert!(s.read(ContainerId::new(1)).is_err());
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn deferred_remove_keeps_file_until_taken() {
        let dir = temp_dir("deferred");
        let mut s = FileContainerStore::open(&dir).unwrap();
        s.write(sample_container(1)).unwrap();
        s.set_deferred_removals(true);
        s.remove(ContainerId::new(1)).unwrap();
        // Logically gone, physically still on disk.
        assert!(!s.contains(ContainerId::new(1)));
        assert!(s.read(ContainerId::new(1)).is_err());
        assert!(dir.join("c1.ctr").exists());
        assert_eq!(s.deferred_removals(), &[ContainerId::new(1)]);
        assert_eq!(s.take_deferred(), vec![ContainerId::new(1)]);
        assert!(s.take_deferred().is_empty());
        assert_eq!(s.stats().container_deletes, 1);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn open_sweeps_stale_tmp_files() {
        let dir = temp_dir("sweep");
        {
            let mut s = FileContainerStore::open(&dir).unwrap();
            s.write(sample_container(1)).unwrap();
        }
        // Simulate a crash mid-write: a torn tmp file next to a good one.
        fs::write(dir.join(".c7.tmp"), b"half a contai").unwrap();
        let s = FileContainerStore::open(&dir).unwrap();
        assert!(!dir.join(".c7.tmp").exists(), "stale tmp not swept");
        assert_eq!(s.len(), 1);
        assert!(s.contains(ContainerId::new(1)));
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn forget_drops_index_entry_only() {
        let dir = temp_dir("forget");
        let mut s = FileContainerStore::open(&dir).unwrap();
        s.write(sample_container(1)).unwrap();
        assert!(s.forget(ContainerId::new(1)));
        assert!(!s.forget(ContainerId::new(1)));
        assert!(!s.contains(ContainerId::new(1)));
        assert!(dir.join("c1.ctr").exists());
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn verify_containers_flags_corruption() {
        let dir = temp_dir("verify");
        let mut s = FileContainerStore::open(&dir).unwrap();
        s.write(sample_container(1)).unwrap();
        s.write(sample_container(2)).unwrap();
        assert!(s.verify_containers().is_empty());
        // Truncate one container behind the store's back.
        let bytes = fs::read(dir.join("c2.ctr")).unwrap();
        fs::write(dir.join("c2.ctr"), &bytes[..bytes.len() / 2]).unwrap();
        let bad = s.verify_containers();
        assert_eq!(bad.len(), 1);
        assert_eq!(bad[0].0, ContainerId::new(2));
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn duplicate_write_rejected() {
        let dir = temp_dir("dup");
        let mut s = FileContainerStore::open(&dir).unwrap();
        s.write(sample_container(1)).unwrap();
        assert!(matches!(
            s.write(sample_container(1)),
            Err(StorageError::DuplicateContainer(_))
        ));
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn replace_persists_new_content() {
        let dir = temp_dir("replace");
        let mut s = FileContainerStore::open(&dir).unwrap();
        s.write(sample_container(1)).unwrap();
        let mut modified = sample_container(1);
        modified.remove(&Fingerprint::synthetic(100));
        s.replace(modified).unwrap();
        let back = s.read(ContainerId::new(1)).unwrap();
        assert_eq!(back.chunk_count(), 9);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn stats_counted() {
        let dir = temp_dir("stats");
        let mut s = FileContainerStore::open(&dir).unwrap();
        s.write(sample_container(1)).unwrap();
        s.read(ContainerId::new(1)).unwrap();
        let st = s.stats();
        assert_eq!((st.container_writes, st.container_reads), (1, 1));
        assert!(st.bytes_written > 640);
        fs::remove_dir_all(&dir).unwrap();
    }
}
