//! File-backed container store: one file per container under a directory.

use std::collections::BTreeSet;
use std::fs;
use std::io::{Read, Write};
use std::path::{Path, PathBuf};
use std::sync::Arc;

use crate::container::{Container, ContainerId};
use crate::error::StorageError;
use crate::store::{ContainerStore, IoStats};

/// On-disk container store.
///
/// Each container is written as `c<id>.ctr` in the store directory using the
/// [`Container::encode`] format. Reopening the directory recovers the set of
/// stored containers, so a backup repository survives process restarts — this
/// is what makes the reproduction a real backup system rather than only a
/// simulator.
///
/// # Examples
///
/// ```no_run
/// use hidestore_storage::{Container, ContainerId, ContainerStore, FileContainerStore};
///
/// let mut store = FileContainerStore::open("/tmp/backup-repo")?;
/// store.write(Container::with_default_capacity(ContainerId::new(1)))?;
/// # Ok::<(), hidestore_storage::StorageError>(())
/// ```
#[derive(Debug)]
pub struct FileContainerStore {
    dir: PathBuf,
    ids: BTreeSet<ContainerId>,
    stats: IoStats,
}

impl FileContainerStore {
    /// Opens (creating if necessary) a container store directory and indexes
    /// the containers already present.
    ///
    /// # Errors
    ///
    /// Fails if the directory cannot be created or listed, or if a container
    /// file has an unparsable name.
    pub fn open(dir: impl AsRef<Path>) -> Result<Self, StorageError> {
        let dir = dir.as_ref().to_path_buf();
        fs::create_dir_all(&dir)?;
        let mut ids = BTreeSet::new();
        for entry in fs::read_dir(&dir)? {
            let entry = entry?;
            let name = entry.file_name();
            let name = name.to_string_lossy();
            if let Some(id_str) = name.strip_prefix('c').and_then(|s| s.strip_suffix(".ctr")) {
                let id: u32 = id_str.parse().map_err(|_| {
                    StorageError::Corrupt(format!("bad container file name: {name}"))
                })?;
                ids.insert(ContainerId::new(id));
            }
        }
        Ok(FileContainerStore {
            dir,
            ids,
            stats: IoStats::default(),
        })
    }

    /// The directory backing this store.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    fn path_for(&self, id: ContainerId) -> PathBuf {
        self.dir.join(format!("c{}.ctr", id.get()))
    }

    fn write_file(&self, container: &Container) -> Result<u64, StorageError> {
        let encoded = container.encode();
        let tmp = self.dir.join(format!(".c{}.tmp", container.id().get()));
        {
            let mut f = fs::File::create(&tmp)?;
            f.write_all(&encoded)?;
            f.sync_data()?;
        }
        fs::rename(&tmp, self.path_for(container.id()))?;
        Ok(encoded.len() as u64)
    }
}

impl ContainerStore for FileContainerStore {
    fn write(&mut self, container: Container) -> Result<(), StorageError> {
        if self.ids.contains(&container.id()) {
            return Err(StorageError::DuplicateContainer(container.id()));
        }
        let written = self.write_file(&container)?;
        self.ids.insert(container.id());
        self.stats.container_writes += 1;
        self.stats.bytes_written += written;
        Ok(())
    }

    fn read(&mut self, id: ContainerId) -> Result<Arc<Container>, StorageError> {
        if !self.ids.contains(&id) {
            return Err(StorageError::ContainerNotFound(id));
        }
        let mut bytes = Vec::new();
        fs::File::open(self.path_for(id))?.read_to_end(&mut bytes)?;
        let container = Container::decode(&bytes).map_err(StorageError::Corrupt)?;
        self.stats.container_reads += 1;
        self.stats.bytes_read += bytes.len() as u64;
        Ok(Arc::new(container))
    }

    fn contains(&self, id: ContainerId) -> bool {
        self.ids.contains(&id)
    }

    fn remove(&mut self, id: ContainerId) -> Result<(), StorageError> {
        if !self.ids.remove(&id) {
            return Err(StorageError::ContainerNotFound(id));
        }
        fs::remove_file(self.path_for(id))?;
        self.stats.container_deletes += 1;
        Ok(())
    }

    fn replace(&mut self, container: Container) -> Result<(), StorageError> {
        if !self.ids.contains(&container.id()) {
            return Err(StorageError::ContainerNotFound(container.id()));
        }
        self.write_file(&container)?;
        Ok(())
    }

    fn ids(&self) -> Vec<ContainerId> {
        self.ids.iter().copied().collect()
    }

    fn stats(&self) -> IoStats {
        self.stats
    }

    fn reset_stats(&mut self) {
        self.stats = IoStats::default();
    }

    fn len(&self) -> usize {
        self.ids.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hidestore_hash::Fingerprint;

    fn temp_dir(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("hidestore-filestore-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    fn sample_container(id: u32) -> Container {
        let mut c = Container::new(ContainerId::new(id), 4096);
        for i in 0..10u64 {
            c.try_add(Fingerprint::synthetic(id as u64 * 100 + i), &[i as u8; 64]);
        }
        c
    }

    #[test]
    fn write_read_round_trip() {
        let dir = temp_dir("roundtrip");
        let mut s = FileContainerStore::open(&dir).unwrap();
        s.write(sample_container(1)).unwrap();
        let c = s.read(ContainerId::new(1)).unwrap();
        assert_eq!(c.chunk_count(), 10);
        assert_eq!(c.get(&Fingerprint::synthetic(103)), Some(&[3u8; 64][..]));
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn reopen_recovers_index() {
        let dir = temp_dir("reopen");
        {
            let mut s = FileContainerStore::open(&dir).unwrap();
            s.write(sample_container(1)).unwrap();
            s.write(sample_container(2)).unwrap();
        }
        let mut s = FileContainerStore::open(&dir).unwrap();
        assert_eq!(s.len(), 2);
        assert!(s.contains(ContainerId::new(2)));
        assert_eq!(s.read(ContainerId::new(2)).unwrap().chunk_count(), 10);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn remove_deletes_file() {
        let dir = temp_dir("remove");
        let mut s = FileContainerStore::open(&dir).unwrap();
        s.write(sample_container(1)).unwrap();
        s.remove(ContainerId::new(1)).unwrap();
        assert!(!dir.join("c1.ctr").exists());
        assert!(s.read(ContainerId::new(1)).is_err());
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn duplicate_write_rejected() {
        let dir = temp_dir("dup");
        let mut s = FileContainerStore::open(&dir).unwrap();
        s.write(sample_container(1)).unwrap();
        assert!(matches!(
            s.write(sample_container(1)),
            Err(StorageError::DuplicateContainer(_))
        ));
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn replace_persists_new_content() {
        let dir = temp_dir("replace");
        let mut s = FileContainerStore::open(&dir).unwrap();
        s.write(sample_container(1)).unwrap();
        let mut modified = sample_container(1);
        modified.remove(&Fingerprint::synthetic(100));
        s.replace(modified).unwrap();
        let back = s.read(ContainerId::new(1)).unwrap();
        assert_eq!(back.chunk_count(), 9);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn stats_counted() {
        let dir = temp_dir("stats");
        let mut s = FileContainerStore::open(&dir).unwrap();
        s.write(sample_container(1)).unwrap();
        s.read(ContainerId::new(1)).unwrap();
        let st = s.stats();
        assert_eq!((st.container_writes, st.container_reads), (1, 1));
        assert!(st.bytes_written > 640);
        fs::remove_dir_all(&dir).unwrap();
    }
}
