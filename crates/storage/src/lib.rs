#![forbid(unsafe_code)]
#![warn(missing_docs)]

//! Container and recipe storage substrate for the HiDeStore reproduction.
//!
//! Deduplication systems store unique chunks in fixed-capacity **containers**
//! (4 MiB in the paper, §2.1) on persistent storage, and describe each backup
//! stream with a **recipe**: a list of 28-byte entries (20-byte fingerprint,
//! 4-byte container ID, 4-byte size) naming where every chunk of the stream
//! lives. Restore performance is dominated by the number of *container reads*
//! (paper §2.3), so the [`ContainerStore`] implementations here count every
//! read and write in [`IoStats`] — the counted metrics (speed factor, lookups
//! per GB) are exactly the device-independent metrics the paper reports.
//!
//! Two stores are provided: [`MemoryContainerStore`] for fast deterministic
//! experiments, and [`FileContainerStore`], a real on-disk store with a
//! binary container format, used by the file-backed examples and tests.
//!
//! HiDeStore-specific notions also live here because they are storage-format
//! concepts: the three-state [`Cid`] encoding in recipes (§4.3: positive =
//! archival container, zero = active containers, negative = "look in recipe
//! of version `-cid`"), and container `version_tag`s used for O(1) deletion
//! of expired versions (§4.5).
//!
//! # Examples
//!
//! ```
//! use hidestore_storage::{Container, ContainerId, ContainerStore, MemoryContainerStore};
//! use hidestore_hash::Fingerprint;
//!
//! let mut store = MemoryContainerStore::new();
//! let mut container = Container::new(ContainerId::new(1), 4096);
//! let fp = Fingerprint::of(b"chunk data");
//! assert!(container.try_add(fp, b"chunk data"));
//! store.write(container)?;
//!
//! let read_back = store.read(ContainerId::new(1))?;
//! assert_eq!(read_back.get(&fp), Some(&b"chunk data"[..]));
//! assert_eq!(store.stats().container_reads, 1);
//! # Ok::<(), hidestore_storage::StorageError>(())
//! ```

mod builder;
mod chunk;
mod container;
mod cost;
mod error;
mod file_store;
mod recipe;
mod store;

pub use builder::ContainerBuilder;
pub use chunk::Chunk;
pub use container::{Container, ContainerId, CONTAINER_CAPACITY};
pub use cost::DeviceProfile;
pub use error::StorageError;
pub use file_store::FileContainerStore;
pub use recipe::{
    Cid, Recipe, RecipeEntry, RecipeLoadReport, RecipeStore, VersionId, RECIPE_ENTRY_LEN,
};
pub use store::{ContainerStore, IoStats, MemoryContainerStore, SharedContainerStore};
