//! Backup recipes: the per-version chunk lists used to restore data.
//!
//! A recipe entry is 28 bytes, exactly as in the paper (§2.1): a 20-byte
//! fingerprint, a 4-byte container ID and a 4-byte size. HiDeStore reuses the
//! container-ID field for its three-state encoding (§4.3/§4.4), modelled here
//! by [`Cid`]:
//!
//! * `cid > 0` — the chunk lives in archival container `cid`;
//! * `cid == 0` — the chunk is still in the active containers;
//! * `cid < 0` — the chunk's location is recorded in the recipe of version
//!   `-cid` (the recipes form a chain, flattened offline by Algorithm 1).

use std::collections::BTreeMap;
use std::fmt;
use std::path::{Path, PathBuf};

use hidestore_failpoint::{RealVfs, Vfs};
use hidestore_hash::Fingerprint;

use crate::container::ContainerId;
use crate::error::StorageError;

/// Encoded size of one recipe entry in bytes (paper §2.1).
pub const RECIPE_ENTRY_LEN: usize = 28;

/// A backup version number, starting at 1 for the first backup.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct VersionId(u32);

impl VersionId {
    /// Creates a version ID.
    ///
    /// # Panics
    ///
    /// Panics if `v == 0`; versions are 1-based so they can be negated into
    /// the [`Cid`] encoding.
    pub fn new(v: u32) -> Self {
        assert!(v != 0, "version ids are 1-based");
        VersionId(v)
    }

    /// The raw number (always > 0).
    pub fn get(self) -> u32 {
        self.0
    }

    /// The version before this one, if any.
    pub fn prev(self) -> Option<VersionId> {
        (self.0 > 1).then(|| VersionId(self.0 - 1))
    }

    /// The version after this one.
    pub fn next(self) -> VersionId {
        VersionId(self.0 + 1)
    }
}

impl fmt::Display for VersionId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "V{}", self.0)
    }
}

/// The container-ID field of a recipe entry, with HiDeStore's three-state
/// sign encoding.
///
/// # Examples
///
/// ```
/// use hidestore_storage::{Cid, ContainerId, VersionId};
///
/// let a = Cid::archival(ContainerId::new(4));
/// assert_eq!(a.as_archival(), Some(ContainerId::new(4)));
/// let c = Cid::chained(VersionId::new(4));
/// assert_eq!(c.as_chained(), Some(VersionId::new(4)));
/// assert!(Cid::ACTIVE.is_active());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Cid(i32);

impl Cid {
    /// The chunk is still in the active containers (HiDeStore only).
    pub const ACTIVE: Cid = Cid(0);

    /// The chunk lives in archival container `id`.
    pub fn archival(id: ContainerId) -> Self {
        Cid(id.get() as i32)
    }

    /// The chunk's location is recorded in the recipe of `version`.
    pub fn chained(version: VersionId) -> Self {
        Cid(-(version.get() as i32))
    }

    /// Raw signed value as stored on disk.
    pub fn raw(self) -> i32 {
        self.0
    }

    /// Builds from a raw signed value.
    pub fn from_raw(raw: i32) -> Self {
        Cid(raw)
    }

    /// Archival container, if `cid > 0`.
    pub fn as_archival(self) -> Option<ContainerId> {
        (self.0 > 0).then(|| ContainerId::new(self.0 as u32))
    }

    /// Chained version, if `cid < 0`.
    pub fn as_chained(self) -> Option<VersionId> {
        (self.0 < 0).then(|| VersionId::new((-self.0) as u32))
    }

    /// Whether the chunk is in the active containers.
    pub fn is_active(self) -> bool {
        self.0 == 0
    }
}

impl fmt::Display for Cid {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.0 {
            0 => f.write_str("active"),
            n if n > 0 => write!(f, "container {n}"),
            n => write!(f, "see V{}", -n),
        }
    }
}

/// One 28-byte recipe entry: fingerprint, size, container reference.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecipeEntry {
    /// Chunk fingerprint.
    pub fingerprint: Fingerprint,
    /// Chunk size in bytes.
    pub size: u32,
    /// Container reference (three-state for HiDeStore, always archival for
    /// baseline systems).
    pub cid: Cid,
}

impl RecipeEntry {
    /// Creates an entry.
    pub fn new(fingerprint: Fingerprint, size: u32, cid: Cid) -> Self {
        RecipeEntry {
            fingerprint,
            size,
            cid,
        }
    }

    fn encode_into(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(self.fingerprint.as_bytes());
        out.extend_from_slice(&self.size.to_le_bytes());
        out.extend_from_slice(&self.cid.raw().to_le_bytes());
    }

    fn decode(bytes: &[u8]) -> Self {
        // The caller hands exactly ENTRY_BYTES bytes; copy fixed-size fields.
        let mut fp = [0u8; 20];
        fp.copy_from_slice(&bytes[..20]);
        let mut word = [0u8; 4];
        word.copy_from_slice(&bytes[20..24]);
        let size = u32::from_le_bytes(word);
        word.copy_from_slice(&bytes[24..28]);
        let cid = i32::from_le_bytes(word);
        RecipeEntry {
            fingerprint: Fingerprint::from_bytes(fp),
            size,
            cid: Cid::from_raw(cid),
        }
    }
}

/// The recipe of one backup version: the ordered chunk list of the stream.
///
/// # Examples
///
/// ```
/// use hidestore_storage::{Cid, ContainerId, Recipe, RecipeEntry, VersionId};
/// use hidestore_hash::Fingerprint;
///
/// let mut recipe = Recipe::new(VersionId::new(1));
/// recipe.push(RecipeEntry::new(
///     Fingerprint::of(b"chunk"),
///     5,
///     Cid::archival(ContainerId::new(1)),
/// ));
/// assert_eq!(recipe.total_bytes(), 5);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Recipe {
    version: VersionId,
    entries: Vec<RecipeEntry>,
    total_bytes: u64,
}

impl Recipe {
    /// Creates an empty recipe for `version`.
    pub fn new(version: VersionId) -> Self {
        Recipe {
            version,
            entries: Vec::new(),
            total_bytes: 0,
        }
    }

    /// The version this recipe restores.
    pub fn version(&self) -> VersionId {
        self.version
    }

    /// Appends an entry.
    pub fn push(&mut self, entry: RecipeEntry) {
        self.total_bytes += entry.size as u64;
        self.entries.push(entry);
    }

    /// The ordered entries.
    pub fn entries(&self) -> &[RecipeEntry] {
        &self.entries
    }

    /// Mutable access for recipe-update passes (§4.3).
    pub fn entries_mut(&mut self) -> &mut [RecipeEntry] {
        &mut self.entries
    }

    /// Number of chunks in the stream.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the recipe has no entries.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Total logical bytes of the backup stream.
    pub fn total_bytes(&self) -> u64 {
        self.total_bytes
    }

    /// Size of this recipe on disk (metadata overhead accounting, §5.2.3).
    pub fn encoded_len(&self) -> usize {
        12 + self.entries.len() * RECIPE_ENTRY_LEN
    }

    /// Serializes: magic `HDSR`, u32 version, u32 entry count, then entries.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(self.encoded_len());
        out.extend_from_slice(b"HDSR");
        out.extend_from_slice(&self.version.get().to_le_bytes());
        out.extend_from_slice(&(self.entries.len() as u32).to_le_bytes());
        for e in &self.entries {
            e.encode_into(&mut out);
        }
        out
    }

    /// Parses the [`Recipe::encode`] format.
    ///
    /// # Errors
    ///
    /// Returns a message describing the structural problem.
    pub fn decode(bytes: &[u8]) -> Result<Self, String> {
        if bytes.len() < 12 || &bytes[..4] != b"HDSR" {
            return Err("bad recipe header".into());
        }
        let mut word = [0u8; 4];
        word.copy_from_slice(&bytes[4..8]);
        let version = u32::from_le_bytes(word);
        if version == 0 {
            return Err("recipe version 0 is invalid".into());
        }
        word.copy_from_slice(&bytes[8..12]);
        let count = u32::from_le_bytes(word) as usize;
        let body = &bytes[12..];
        if body.len() != count * RECIPE_ENTRY_LEN {
            return Err(format!(
                "recipe body length {} != {count} entries",
                body.len()
            ));
        }
        let mut recipe = Recipe::new(VersionId::new(version));
        for raw in body.chunks_exact(RECIPE_ENTRY_LEN) {
            recipe.push(RecipeEntry::decode(raw));
        }
        Ok(recipe)
    }
}

/// Holds the recipes of all retained backup versions, with optional
/// directory persistence.
///
/// # Examples
///
/// ```
/// use hidestore_storage::{Recipe, RecipeStore, VersionId};
///
/// let mut store = RecipeStore::new();
/// store.insert(Recipe::new(VersionId::new(1)));
/// assert_eq!(store.latest_version(), Some(VersionId::new(1)));
/// ```
#[derive(Debug, Default)]
pub struct RecipeStore {
    recipes: BTreeMap<VersionId, Recipe>,
}

impl RecipeStore {
    /// Creates an empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Inserts (or replaces) a recipe.
    pub fn insert(&mut self, recipe: Recipe) {
        self.recipes.insert(recipe.version(), recipe);
    }

    /// Fetches a recipe.
    pub fn get(&self, version: VersionId) -> Option<&Recipe> {
        self.recipes.get(&version)
    }

    /// Mutable access for the recipe-update passes.
    pub fn get_mut(&mut self, version: VersionId) -> Option<&mut Recipe> {
        self.recipes.get_mut(&version)
    }

    /// Removes a recipe (when expiring a version).
    pub fn remove(&mut self, version: VersionId) -> Option<Recipe> {
        self.recipes.remove(&version)
    }

    /// The newest retained version.
    pub fn latest_version(&self) -> Option<VersionId> {
        self.recipes.keys().next_back().copied()
    }

    /// The oldest retained version.
    pub fn oldest_version(&self) -> Option<VersionId> {
        self.recipes.keys().next().copied()
    }

    /// Iterates recipes in version order.
    pub fn iter(&self) -> impl Iterator<Item = &Recipe> {
        self.recipes.values()
    }

    /// Retained versions in ascending order.
    pub fn versions(&self) -> Vec<VersionId> {
        self.recipes.keys().copied().collect()
    }

    /// Number of retained recipes.
    pub fn len(&self) -> usize {
        self.recipes.len()
    }

    /// Whether no recipes are retained.
    pub fn is_empty(&self) -> bool {
        self.recipes.is_empty()
    }

    /// Total on-disk bytes of all recipes.
    pub fn total_encoded_len(&self) -> usize {
        self.recipes.values().map(Recipe::encoded_len).sum()
    }

    /// Writes every recipe as `r<version>.rcp` under `dir`, removing stale
    /// recipe files for versions no longer retained (e.g. after expiry).
    ///
    /// Each file is staged as `.r<version>.tmp`, fsynced, and renamed into
    /// place, and the directory entries are fsynced afterwards — a crash
    /// mid-save never leaves a half-written recipe visible.
    ///
    /// # Errors
    ///
    /// Fails on filesystem errors.
    pub fn save_dir(&self, dir: impl AsRef<Path>) -> Result<(), StorageError> {
        self.save_dir_with(dir, &RealVfs)
    }

    /// [`RecipeStore::save_dir`] through an explicit [`Vfs`] — the
    /// fault-injection entry point.
    ///
    /// # Errors
    ///
    /// Fails on filesystem errors.
    pub fn save_dir_with<V: Vfs>(
        &self,
        dir: impl AsRef<Path>,
        vfs: &V,
    ) -> Result<(), StorageError> {
        let dir = dir.as_ref();
        vfs.create_dir_all(dir)?;
        for path in vfs.read_dir(dir)? {
            let Some(name) = path.file_name().map(|n| n.to_string_lossy().into_owned()) else {
                continue;
            };
            if let Some(v) = name.strip_prefix('r').and_then(|s| s.strip_suffix(".rcp")) {
                let stale = v
                    .parse::<u32>()
                    .ok()
                    .and_then(|v| (v != 0).then(|| VersionId::new(v)))
                    .is_none_or(|v| !self.recipes.contains_key(&v));
                if stale {
                    vfs.remove_file(&path)?;
                }
            }
        }
        for recipe in self.recipes.values() {
            let tmp = dir.join(format!(".r{}.tmp", recipe.version().get()));
            let path = dir.join(format!("r{}.rcp", recipe.version().get()));
            vfs.write(&tmp, &recipe.encode())?;
            vfs.sync_file(&tmp)?;
            vfs.rename(&tmp, &path)?;
        }
        vfs.sync_dir(dir)?;
        Ok(())
    }

    /// Loads every `r<version>.rcp` under `dir`, failing on the first
    /// unreadable or corrupt file. Use [`RecipeStore::load_dir_report`] when
    /// a bad recipe must not block the readable ones (degraded open).
    ///
    /// # Errors
    ///
    /// Fails on filesystem errors or corrupt recipe files.
    pub fn load_dir(dir: impl AsRef<Path>) -> Result<Self, StorageError> {
        let report = Self::load_dir_report(dir)?;
        if let Some((path, err)) = report.failed.into_iter().next() {
            return Err(StorageError::Corrupt(format!(
                "recipe file {}: {err}",
                path.display()
            )));
        }
        Ok(report.store)
    }

    /// Loads every `r<version>.rcp` under `dir`, collecting per-file
    /// failures instead of aborting on the first corrupt recipe: one bad
    /// file no longer blocks opening the other versions.
    ///
    /// # Errors
    ///
    /// Fails only if the directory itself cannot be listed; per-file
    /// problems are reported in [`RecipeLoadReport::failed`].
    pub fn load_dir_report(dir: impl AsRef<Path>) -> Result<RecipeLoadReport, StorageError> {
        Self::load_dir_report_with(dir, &RealVfs)
    }

    /// [`RecipeStore::load_dir_report`] through an explicit [`Vfs`] — the
    /// fault-injection entry point.
    ///
    /// # Errors
    ///
    /// Fails only if the directory itself cannot be listed.
    pub fn load_dir_report_with<V: Vfs>(
        dir: impl AsRef<Path>,
        vfs: &V,
    ) -> Result<RecipeLoadReport, StorageError> {
        let mut report = RecipeLoadReport {
            store: RecipeStore::new(),
            failed: Vec::new(),
        };
        let dir = dir.as_ref();
        if !vfs.exists(dir) {
            return Ok(report);
        }
        for path in vfs.read_dir(dir)? {
            let Some(name) = path.file_name().map(|n| n.to_string_lossy().into_owned()) else {
                continue;
            };
            if name.starts_with('r') && name.ends_with(".rcp") {
                match vfs.read(&path) {
                    Ok(bytes) => match Recipe::decode(&bytes) {
                        Ok(recipe) => report.store.insert(recipe),
                        Err(reason) => report.failed.push((path, StorageError::Corrupt(reason))),
                    },
                    Err(err) => report.failed.push((path, StorageError::from(err))),
                }
            }
        }
        Ok(report)
    }
}

/// Outcome of [`RecipeStore::load_dir_report`]: the recipes that loaded,
/// plus the files that did not and why — so a degraded open can quarantine
/// the casualties and proceed with the rest.
#[derive(Debug)]
pub struct RecipeLoadReport {
    /// The successfully loaded recipes.
    pub store: RecipeStore,
    /// Recipe files that could not be read or decoded.
    pub failed: Vec<(PathBuf, StorageError)>,
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::fs;

    fn fp(n: u64) -> Fingerprint {
        Fingerprint::synthetic(n)
    }

    #[test]
    fn cid_three_states() {
        let archival = Cid::archival(ContainerId::new(17));
        assert_eq!(archival.raw(), 17);
        assert_eq!(archival.as_archival(), Some(ContainerId::new(17)));
        assert_eq!(archival.as_chained(), None);
        assert!(!archival.is_active());

        let chained = Cid::chained(VersionId::new(4));
        assert_eq!(chained.raw(), -4);
        assert_eq!(chained.as_chained(), Some(VersionId::new(4)));
        assert_eq!(chained.as_archival(), None);

        assert!(Cid::ACTIVE.is_active());
        assert_eq!(Cid::ACTIVE.raw(), 0);
    }

    #[test]
    fn cid_display() {
        assert_eq!(Cid::ACTIVE.to_string(), "active");
        assert_eq!(
            Cid::archival(ContainerId::new(3)).to_string(),
            "container 3"
        );
        assert_eq!(Cid::chained(VersionId::new(2)).to_string(), "see V2");
    }

    #[test]
    fn version_prev_next() {
        let v1 = VersionId::new(1);
        assert_eq!(v1.prev(), None);
        assert_eq!(v1.next(), VersionId::new(2));
        assert_eq!(VersionId::new(5).prev(), Some(VersionId::new(4)));
        assert_eq!(v1.to_string(), "V1");
    }

    #[test]
    fn recipe_accumulates_bytes() {
        let mut r = Recipe::new(VersionId::new(1));
        r.push(RecipeEntry::new(fp(1), 100, Cid::ACTIVE));
        r.push(RecipeEntry::new(
            fp(2),
            200,
            Cid::archival(ContainerId::new(1)),
        ));
        assert_eq!(r.total_bytes(), 300);
        assert_eq!(r.len(), 2);
        assert_eq!(r.encoded_len(), 12 + 2 * RECIPE_ENTRY_LEN);
    }

    #[test]
    fn recipe_encode_decode_round_trip() {
        let mut r = Recipe::new(VersionId::new(9));
        for i in 0..50u64 {
            let cid = match i % 3 {
                0 => Cid::archival(ContainerId::new(i as u32 + 1)),
                1 => Cid::ACTIVE,
                _ => Cid::chained(VersionId::new(i as u32 + 1)),
            };
            r.push(RecipeEntry::new(fp(i), (i * 17 % 8000) as u32, cid));
        }
        let back = Recipe::decode(&r.encode()).unwrap();
        assert_eq!(back, r);
    }

    #[test]
    fn recipe_decode_rejects_garbage() {
        assert!(Recipe::decode(b"").is_err());
        assert!(Recipe::decode(b"XXXX\x01\0\0\0\0\0\0\0").is_err());
        let mut r = Recipe::new(VersionId::new(1));
        r.push(RecipeEntry::new(fp(1), 4, Cid::ACTIVE));
        let enc = r.encode();
        assert!(Recipe::decode(&enc[..enc.len() - 1]).is_err());
    }

    #[test]
    fn recipe_entry_size_is_28_bytes() {
        let mut out = Vec::new();
        RecipeEntry::new(fp(1), 5, Cid::ACTIVE).encode_into(&mut out);
        assert_eq!(out.len(), RECIPE_ENTRY_LEN);
    }

    #[test]
    fn store_latest_and_oldest() {
        let mut s = RecipeStore::new();
        assert!(s.latest_version().is_none());
        for v in [2u32, 1, 3] {
            s.insert(Recipe::new(VersionId::new(v)));
        }
        assert_eq!(s.latest_version(), Some(VersionId::new(3)));
        assert_eq!(s.oldest_version(), Some(VersionId::new(1)));
        assert_eq!(s.versions().len(), 3);
        s.remove(VersionId::new(1));
        assert_eq!(s.oldest_version(), Some(VersionId::new(2)));
    }

    #[test]
    fn store_save_load_round_trip() {
        let dir = std::env::temp_dir().join(format!("hidestore-recipes-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        let mut s = RecipeStore::new();
        for v in 1..=3u32 {
            let mut r = Recipe::new(VersionId::new(v));
            r.push(RecipeEntry::new(fp(v as u64), v * 10, Cid::ACTIVE));
            s.insert(r);
        }
        s.save_dir(&dir).unwrap();
        let loaded = RecipeStore::load_dir(&dir).unwrap();
        assert_eq!(loaded.len(), 3);
        assert_eq!(loaded.get(VersionId::new(2)).unwrap().entries()[0].size, 20);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn load_missing_dir_is_empty() {
        let s = RecipeStore::load_dir("/definitely/not/a/real/dir").unwrap();
        assert!(s.is_empty());
    }

    #[test]
    fn one_bad_recipe_does_not_block_the_rest() {
        let dir =
            std::env::temp_dir().join(format!("hidestore-recipes-bad-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        let mut s = RecipeStore::new();
        for v in 1..=3u32 {
            let mut r = Recipe::new(VersionId::new(v));
            r.push(RecipeEntry::new(fp(v as u64), v * 10, Cid::ACTIVE));
            s.insert(r);
        }
        s.save_dir(&dir).unwrap();
        // Tear one recipe in half: strict load aborts, report load carries on.
        let bytes = fs::read(dir.join("r2.rcp")).unwrap();
        fs::write(dir.join("r2.rcp"), &bytes[..bytes.len() - 5]).unwrap();
        assert!(RecipeStore::load_dir(&dir).is_err());
        let report = RecipeStore::load_dir_report(&dir).unwrap();
        assert_eq!(
            report.store.versions(),
            vec![VersionId::new(1), VersionId::new(3)]
        );
        assert_eq!(report.failed.len(), 1);
        assert!(report.failed[0].0.ends_with("r2.rcp"));
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn save_dir_leaves_no_tmp_files() {
        let dir =
            std::env::temp_dir().join(format!("hidestore-recipes-tmp-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        let mut s = RecipeStore::new();
        s.insert(Recipe::new(VersionId::new(1)));
        s.save_dir(&dir).unwrap();
        let names: Vec<String> = fs::read_dir(&dir)
            .unwrap()
            .map(|e| e.unwrap().file_name().to_string_lossy().into_owned())
            .collect();
        assert_eq!(names, vec!["r1.rcp"]);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    #[should_panic(expected = "1-based")]
    fn version_zero_panics() {
        VersionId::new(0);
    }
}
