//! Container stores with I/O accounting.

use std::collections::BTreeMap;
use std::sync::Arc;

use parking_lot::Mutex;

use crate::container::{Container, ContainerId};
use crate::error::StorageError;

/// Counted I/O statistics.
///
/// The paper's restore metric (*speed factor*, §5.3) and its throughput
/// metric (*lookup requests per GB*, §5.2.2) are both counts, chosen
/// precisely so results don't depend on device speed. Every store tallies
/// these.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct IoStats {
    /// Number of whole-container reads served.
    pub container_reads: u64,
    /// Number of containers written (sealed) to the store.
    pub container_writes: u64,
    /// Number of containers deleted.
    pub container_deletes: u64,
    /// Bytes of container data read.
    pub bytes_read: u64,
    /// Bytes of container data written.
    pub bytes_written: u64,
}

impl IoStats {
    /// Component-wise difference, for measuring a phase:
    /// `after.since(&before)`.
    pub fn since(&self, earlier: &IoStats) -> IoStats {
        IoStats {
            container_reads: self.container_reads - earlier.container_reads,
            container_writes: self.container_writes - earlier.container_writes,
            container_deletes: self.container_deletes - earlier.container_deletes,
            bytes_read: self.bytes_read - earlier.bytes_read,
            bytes_written: self.bytes_written - earlier.bytes_written,
        }
    }
}

/// A store of sealed containers, the persistent layer of the backup system.
///
/// `read` returns an `Arc<Container>` so restore caches can retain containers
/// without copying 4 MiB buffers. Every `read` call counts as one container
/// I/O even if the implementation has the container in memory: the counted
/// cost model is the experiment's ground truth (see crate docs).
pub trait ContainerStore {
    /// Seals `container` into the store.
    ///
    /// # Errors
    ///
    /// Returns [`StorageError::DuplicateContainer`] if the ID already exists.
    fn write(&mut self, container: Container) -> Result<(), StorageError>;

    /// Reads a container, counting one container read.
    ///
    /// # Errors
    ///
    /// Returns [`StorageError::ContainerNotFound`] for unknown IDs.
    fn read(&mut self, id: ContainerId) -> Result<Arc<Container>, StorageError>;

    /// Whether the store holds `id`.
    fn contains(&self, id: ContainerId) -> bool;

    /// Deletes a container (used when expiring backup versions).
    ///
    /// # Errors
    ///
    /// Returns [`StorageError::ContainerNotFound`] for unknown IDs.
    fn remove(&mut self, id: ContainerId) -> Result<(), StorageError>;

    /// Replaces an existing container in place (used by offline maintenance
    /// like merging archival containers). Does not count as a fresh write.
    ///
    /// # Errors
    ///
    /// Returns [`StorageError::ContainerNotFound`] if the ID is absent.
    fn replace(&mut self, container: Container) -> Result<(), StorageError>;

    /// All container IDs, ascending.
    fn ids(&self) -> Vec<ContainerId>;

    /// Counted I/O so far.
    fn stats(&self) -> IoStats;

    /// Zeroes the counters (e.g. between backup and restore phases).
    fn reset_stats(&mut self);

    /// Number of containers held.
    fn len(&self) -> usize {
        self.ids().len()
    }

    /// Whether the store is empty.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// In-memory container store for deterministic experiments.
///
/// # Examples
///
/// ```
/// use hidestore_storage::{Container, ContainerId, ContainerStore, MemoryContainerStore};
///
/// let mut store = MemoryContainerStore::new();
/// store.write(Container::new(ContainerId::new(1), 1024))?;
/// assert_eq!(store.len(), 1);
/// assert_eq!(store.stats().container_writes, 1);
/// # Ok::<(), hidestore_storage::StorageError>(())
/// ```
#[derive(Debug, Default)]
pub struct MemoryContainerStore {
    containers: BTreeMap<ContainerId, Arc<Container>>,
    stats: IoStats,
}

impl MemoryContainerStore {
    /// Creates an empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Total live bytes across all containers (for dedup-ratio accounting).
    pub fn total_live_bytes(&self) -> u64 {
        self.containers
            .values()
            .map(|c| c.live_bytes() as u64)
            .sum()
    }

    /// Total capacity-consuming bytes (live + dead) across containers.
    pub fn total_used_bytes(&self) -> u64 {
        self.containers
            .values()
            .map(|c| c.used_bytes() as u64)
            .sum()
    }
}

impl ContainerStore for MemoryContainerStore {
    fn write(&mut self, container: Container) -> Result<(), StorageError> {
        if self.containers.contains_key(&container.id()) {
            return Err(StorageError::DuplicateContainer(container.id()));
        }
        self.stats.container_writes += 1;
        self.stats.bytes_written += container.used_bytes() as u64;
        self.containers.insert(container.id(), Arc::new(container));
        Ok(())
    }

    fn read(&mut self, id: ContainerId) -> Result<Arc<Container>, StorageError> {
        let container = self
            .containers
            .get(&id)
            .cloned()
            .ok_or(StorageError::ContainerNotFound(id))?;
        self.stats.container_reads += 1;
        self.stats.bytes_read += container.used_bytes() as u64;
        Ok(container)
    }

    fn contains(&self, id: ContainerId) -> bool {
        self.containers.contains_key(&id)
    }

    fn remove(&mut self, id: ContainerId) -> Result<(), StorageError> {
        self.containers
            .remove(&id)
            .ok_or(StorageError::ContainerNotFound(id))?;
        self.stats.container_deletes += 1;
        Ok(())
    }

    fn replace(&mut self, container: Container) -> Result<(), StorageError> {
        let id = container.id();
        if !self.containers.contains_key(&id) {
            return Err(StorageError::ContainerNotFound(id));
        }
        self.containers.insert(id, Arc::new(container));
        Ok(())
    }

    fn ids(&self) -> Vec<ContainerId> {
        self.containers.keys().copied().collect()
    }

    fn stats(&self) -> IoStats {
        self.stats
    }

    fn reset_stats(&mut self) {
        self.stats = IoStats::default();
    }

    fn len(&self) -> usize {
        self.containers.len()
    }
}

/// A cheaply clonable, thread-safe handle around any [`ContainerStore`].
///
/// Backup writes and restore reads often live in different components that
/// both need the store; `SharedContainerStore` provides interior mutability
/// via a [`Mutex`] the way Destor shares its container manager across
/// pipeline phases.
#[derive(Debug)]
pub struct SharedContainerStore<S> {
    inner: Arc<Mutex<S>>,
}

impl<S> Clone for SharedContainerStore<S> {
    fn clone(&self) -> Self {
        SharedContainerStore {
            inner: Arc::clone(&self.inner),
        }
    }
}

impl<S: ContainerStore> SharedContainerStore<S> {
    /// Wraps a store.
    pub fn new(store: S) -> Self {
        SharedContainerStore {
            inner: Arc::new(Mutex::new(store)),
        }
    }

    /// Runs `f` with exclusive access to the store.
    pub fn with<R>(&self, f: impl FnOnce(&mut S) -> R) -> R {
        f(&mut self.inner.lock())
    }
}

impl<S: ContainerStore> ContainerStore for SharedContainerStore<S> {
    fn write(&mut self, container: Container) -> Result<(), StorageError> {
        self.inner.lock().write(container)
    }

    fn read(&mut self, id: ContainerId) -> Result<Arc<Container>, StorageError> {
        self.inner.lock().read(id)
    }

    fn contains(&self, id: ContainerId) -> bool {
        self.inner.lock().contains(id)
    }

    fn remove(&mut self, id: ContainerId) -> Result<(), StorageError> {
        self.inner.lock().remove(id)
    }

    fn replace(&mut self, container: Container) -> Result<(), StorageError> {
        self.inner.lock().replace(container)
    }

    fn ids(&self) -> Vec<ContainerId> {
        self.inner.lock().ids()
    }

    fn stats(&self) -> IoStats {
        self.inner.lock().stats()
    }

    fn reset_stats(&mut self) {
        self.inner.lock().reset_stats()
    }

    fn len(&self) -> usize {
        self.inner.lock().len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hidestore_hash::Fingerprint;

    fn container_with(id: u32, n_chunks: u64) -> Container {
        let mut c = Container::new(ContainerId::new(id), 4096);
        for i in 0..n_chunks {
            c.try_add(
                Fingerprint::synthetic(id as u64 * 1000 + i),
                &[id as u8; 16],
            );
        }
        c
    }

    #[test]
    fn write_read_counts() {
        let mut s = MemoryContainerStore::new();
        s.write(container_with(1, 4)).unwrap();
        s.write(container_with(2, 4)).unwrap();
        let c = s.read(ContainerId::new(1)).unwrap();
        assert_eq!(c.chunk_count(), 4);
        s.read(ContainerId::new(1)).unwrap();
        let stats = s.stats();
        assert_eq!(stats.container_writes, 2);
        assert_eq!(stats.container_reads, 2);
        assert_eq!(stats.bytes_written, 128);
        assert_eq!(stats.bytes_read, 128);
    }

    #[test]
    fn duplicate_write_rejected() {
        let mut s = MemoryContainerStore::new();
        s.write(container_with(1, 1)).unwrap();
        assert!(matches!(
            s.write(container_with(1, 1)),
            Err(StorageError::DuplicateContainer(_))
        ));
    }

    #[test]
    fn missing_read_and_remove_error() {
        let mut s = MemoryContainerStore::new();
        assert!(matches!(
            s.read(ContainerId::new(9)),
            Err(StorageError::ContainerNotFound(_))
        ));
        assert!(s.remove(ContainerId::new(9)).is_err());
    }

    #[test]
    fn remove_deletes_and_counts() {
        let mut s = MemoryContainerStore::new();
        s.write(container_with(1, 1)).unwrap();
        s.remove(ContainerId::new(1)).unwrap();
        assert!(!s.contains(ContainerId::new(1)));
        assert_eq!(s.stats().container_deletes, 1);
        assert!(s.is_empty());
    }

    #[test]
    fn replace_swaps_without_write_count() {
        let mut s = MemoryContainerStore::new();
        s.write(container_with(1, 1)).unwrap();
        let writes_before = s.stats().container_writes;
        s.replace(container_with(1, 3)).unwrap();
        assert_eq!(s.stats().container_writes, writes_before);
        assert_eq!(s.read(ContainerId::new(1)).unwrap().chunk_count(), 3);
        assert!(s.replace(container_with(5, 1)).is_err());
    }

    #[test]
    fn ids_sorted() {
        let mut s = MemoryContainerStore::new();
        for id in [3u32, 1, 2] {
            s.write(container_with(id, 1)).unwrap();
        }
        let ids: Vec<u32> = s.ids().iter().map(|i| i.get()).collect();
        assert_eq!(ids, vec![1, 2, 3]);
    }

    #[test]
    fn stats_since() {
        let mut s = MemoryContainerStore::new();
        s.write(container_with(1, 1)).unwrap();
        let before = s.stats();
        s.read(ContainerId::new(1)).unwrap();
        let delta = s.stats().since(&before);
        assert_eq!(delta.container_reads, 1);
        assert_eq!(delta.container_writes, 0);
    }

    #[test]
    fn reset_stats_zeroes() {
        let mut s = MemoryContainerStore::new();
        s.write(container_with(1, 1)).unwrap();
        s.reset_stats();
        assert_eq!(s.stats(), IoStats::default());
    }

    #[test]
    fn shared_store_clones_share_state() {
        let mut a = SharedContainerStore::new(MemoryContainerStore::new());
        let mut b = a.clone();
        a.write(container_with(1, 2)).unwrap();
        assert!(b.contains(ContainerId::new(1)));
        b.read(ContainerId::new(1)).unwrap();
        assert_eq!(a.stats().container_reads, 1);
    }

    #[test]
    fn total_live_bytes_tracks_removals() {
        let mut s = MemoryContainerStore::new();
        s.write(container_with(1, 4)).unwrap();
        assert_eq!(s.total_live_bytes(), 64);
        assert_eq!(s.total_used_bytes(), 64);
    }
}
