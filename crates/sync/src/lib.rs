#![forbid(unsafe_code)]
#![warn(missing_docs)]

//! Shared concurrency primitives for the staged pipelines.
//!
//! Both the staged backup pipeline (`hidestore-dedup`) and the staged restore
//! engine (`hidestore-restore`) move work between threads through the same
//! bounded channel. `std::sync::mpsc::sync_channel` is bounded but cannot
//! report how often a stage sat blocked on a full or empty queue — exactly
//! the observability the staged pipelines need to show *where* a path is
//! bottlenecked. [`BoundedQueue`] counts both, supports multiple producers
//! with explicit completion ([`BoundedQueue::producer_done`]), and can be
//! cancelled so an error in a downstream stage unblocks every upstream
//! thread instead of deadlocking the scope join.

use std::collections::VecDeque;
use std::sync::{Condvar, Mutex, MutexGuard};

struct State<T> {
    items: VecDeque<T>,
    capacity: usize,
    producers: usize,
    cancelled: bool,
    blocked_full: u64,
    blocked_empty: u64,
}

/// Bounded multi-producer multi-consumer queue with backpressure counters.
pub struct BoundedQueue<T> {
    state: Mutex<State<T>>,
    not_full: Condvar,
    not_empty: Condvar,
}

impl<T> BoundedQueue<T> {
    /// Creates a queue holding at most `capacity` items, fed by `producers`
    /// threads (each must call [`BoundedQueue::producer_done`] exactly once).
    ///
    /// # Panics
    ///
    /// Panics if `capacity == 0`.
    pub fn new(capacity: usize, producers: usize) -> Self {
        assert!(capacity >= 1, "queue capacity must be at least 1");
        BoundedQueue {
            state: Mutex::new(State {
                items: VecDeque::with_capacity(capacity),
                capacity,
                producers,
                cancelled: false,
                blocked_full: 0,
                blocked_empty: 0,
            }),
            not_full: Condvar::new(),
            not_empty: Condvar::new(),
        }
    }

    fn lock(&self) -> MutexGuard<'_, State<T>> {
        // The queue holds plain data; a panic elsewhere cannot leave the
        // state inconsistent, so a poisoned lock is safe to re-enter.
        self.state.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Blocks until there is room, then enqueues `item`. Returns the item
    /// back if the queue was cancelled while waiting.
    ///
    /// # Errors
    ///
    /// Returns `Err(item)` if the queue was cancelled.
    pub fn push(&self, item: T) -> Result<(), T> {
        let mut s = self.lock();
        while s.items.len() >= s.capacity && !s.cancelled {
            s.blocked_full += 1;
            s = self.not_full.wait(s).unwrap_or_else(|e| e.into_inner());
        }
        if s.cancelled {
            return Err(item);
        }
        s.items.push_back(item);
        drop(s);
        self.not_empty.notify_one();
        Ok(())
    }

    /// Enqueues `item` without blocking, or hands it back immediately when
    /// the queue is full or cancelled. This is the admission-gate primitive:
    /// an acceptor thread must never park on a saturated worker queue, it
    /// has to refuse the connection instead.
    ///
    /// # Errors
    ///
    /// [`TryPushError::Full`] when the queue is at capacity,
    /// [`TryPushError::Cancelled`] after [`BoundedQueue::cancel`]. Both
    /// return the item so the caller can dispose of it (e.g. close the
    /// refused connection gracefully).
    pub fn try_push(&self, item: T) -> Result<(), TryPushError<T>> {
        let mut s = self.lock();
        if s.cancelled {
            return Err(TryPushError::Cancelled(item));
        }
        if s.items.len() >= s.capacity {
            return Err(TryPushError::Full(item));
        }
        s.items.push_back(item);
        drop(s);
        self.not_empty.notify_one();
        Ok(())
    }

    /// Blocks until an item is available; returns `None` once every producer
    /// has finished and the queue is drained, or immediately on cancellation.
    pub fn pop(&self) -> Option<T> {
        let mut s = self.lock();
        loop {
            if s.cancelled {
                return None;
            }
            if let Some(item) = s.items.pop_front() {
                drop(s);
                self.not_full.notify_one();
                return Some(item);
            }
            if s.producers == 0 {
                return None;
            }
            s.blocked_empty += 1;
            s = self.not_empty.wait(s).unwrap_or_else(|e| e.into_inner());
        }
    }

    /// Marks one producer as finished; when the last one finishes, blocked
    /// consumers drain the remaining items and then observe end-of-stream.
    pub fn producer_done(&self) {
        let mut s = self.lock();
        s.producers = s.producers.saturating_sub(1);
        let last = s.producers == 0;
        drop(s);
        if last {
            self.not_empty.notify_all();
        }
    }

    /// Cancels the queue: blocked pushes fail, blocked pops return `None`,
    /// and no further traffic flows. Used on a consumer stage's error path.
    pub fn cancel(&self) {
        let mut s = self.lock();
        s.cancelled = true;
        drop(s);
        self.not_full.notify_all();
        self.not_empty.notify_all();
    }

    /// `(blocked_on_full, blocked_on_empty)` wait counts so far.
    pub fn blocked_counts(&self) -> (u64, u64) {
        let s = self.lock();
        (s.blocked_full, s.blocked_empty)
    }
}

/// Why a non-blocking [`BoundedQueue::try_push`] failed, carrying the
/// rejected item back to the caller.
#[derive(Debug, PartialEq, Eq)]
pub enum TryPushError<T> {
    /// The queue was at capacity; the caller should shed the work.
    Full(T),
    /// The queue was cancelled; no further traffic flows.
    Cancelled(T),
}

impl<T> TryPushError<T> {
    /// Recovers the item that could not be enqueued.
    pub fn into_inner(self) -> T {
        match self {
            TryPushError::Full(item) | TryPushError::Cancelled(item) => item,
        }
    }
}

/// Calls [`BoundedQueue::producer_done`] on drop, so a producer thread that
/// panics (or returns early after cancellation) still releases its consumers
/// instead of deadlocking the pipeline's scope join.
pub struct ProducerGuard<'a, T>(
    /// The queue this producer feeds.
    pub &'a BoundedQueue<T>,
);

impl<T> Drop for ProducerGuard<'_, T> {
    fn drop(&mut self) {
        self.0.producer_done();
    }
}

/// Calls [`BoundedQueue::cancel`] on drop. A consumer stage holds one so an
/// early return — or a panic unwinding through the consumer — cancels the
/// queue and unblocks producers waiting on a full queue before the
/// surrounding `thread::scope` joins them.
pub struct CancelGuard<'a, T>(
    /// The queue to cancel when the consumer stops consuming.
    pub &'a BoundedQueue<T>,
);

impl<T> Drop for CancelGuard<'_, T> {
    fn drop(&mut self) {
        self.0.cancel();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn fifo_order_single_thread() {
        let q = BoundedQueue::new(4, 1);
        q.push(1).unwrap();
        q.push(2).unwrap();
        q.producer_done();
        assert_eq!(q.pop(), Some(1));
        assert_eq!(q.pop(), Some(2));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn blocks_on_full_and_counts() {
        let q = BoundedQueue::new(1, 1);
        q.push(0u32).unwrap();
        std::thread::scope(|scope| {
            let q = &q;
            scope.spawn(move || {
                // Blocks until the consumer below makes room.
                q.push(1).unwrap();
                q.producer_done();
            });
            std::thread::sleep(Duration::from_millis(20));
            assert_eq!(q.pop(), Some(0));
            assert_eq!(q.pop(), Some(1));
            assert_eq!(q.pop(), None);
        });
        let (full, _) = q.blocked_counts();
        assert!(full >= 1, "producer must have waited on the full queue");
    }

    #[test]
    fn consumer_waits_for_producers() {
        let q = BoundedQueue::new(4, 2);
        std::thread::scope(|scope| {
            let q = &q;
            for v in 0..2u32 {
                scope.spawn(move || {
                    std::thread::sleep(Duration::from_millis(10));
                    q.push(v).unwrap();
                    q.producer_done();
                });
            }
            let mut got = vec![q.pop().unwrap(), q.pop().unwrap()];
            got.sort_unstable();
            assert_eq!(got, vec![0, 1]);
            assert_eq!(q.pop(), None, "both producers done");
        });
        let (_, empty) = q.blocked_counts();
        assert!(empty >= 1, "consumer must have waited on the empty queue");
    }

    #[test]
    fn cancel_unblocks_everyone() {
        let q = BoundedQueue::new(1, 1);
        q.push(7u32).unwrap();
        std::thread::scope(|scope| {
            let q = &q;
            let h = scope.spawn(move || q.push(8));
            std::thread::sleep(Duration::from_millis(20));
            q.cancel();
            assert_eq!(h.join().ok(), Some(Err(8)), "blocked push fails");
            assert_eq!(q.pop(), None, "cancelled pop yields nothing");
        });
    }

    #[test]
    fn try_push_refuses_instead_of_blocking() {
        let q = BoundedQueue::new(1, 1);
        assert_eq!(q.try_push(1u32), Ok(()));
        assert_eq!(q.try_push(2), Err(TryPushError::Full(2)));
        assert_eq!(q.pop(), Some(1));
        assert_eq!(q.try_push(3), Ok(()), "room again after a pop");
        q.cancel();
        assert_eq!(q.try_push(4), Err(TryPushError::Cancelled(4)));
        assert_eq!(TryPushError::Full(9u32).into_inner(), 9);
    }

    #[test]
    fn producer_guard_releases_on_drop() {
        let q: BoundedQueue<u32> = BoundedQueue::new(2, 1);
        {
            let _guard = ProducerGuard(&q);
            q.push(1).unwrap();
        }
        assert_eq!(q.pop(), Some(1));
        assert_eq!(q.pop(), None, "guard drop counted the producer done");
    }

    #[test]
    fn cancel_guard_unblocks_producer_on_drop() {
        let q: BoundedQueue<u32> = BoundedQueue::new(1, 1);
        q.push(1).unwrap();
        std::thread::scope(|scope| {
            let q = &q;
            let h = scope.spawn(move || {
                let _done = ProducerGuard(q);
                q.push(2)
            });
            {
                let _cancel = CancelGuard(q);
                std::thread::sleep(Duration::from_millis(20));
                // Consumer "errors out" here without draining the queue.
            }
            assert_eq!(h.join().ok(), Some(Err(2)), "blocked push must fail");
        });
    }
}
