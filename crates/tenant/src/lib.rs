#![forbid(unsafe_code)]
#![warn(missing_docs)]

//! Multi-tenant sharding for HiDeStore: one root, many repositories.
//!
//! The paper's middleware pitch only matters at service scale, and a single
//! repository behind one writer lock cannot serve unrelated users — every
//! tenant's backup would serialize behind every other's. This crate shards
//! the service: a [`TenantRegistry`] maps validated
//! [`TenantId`](hidestore_proto::TenantId)s to *independent* repositories
//! under one root, so isolation is physical (separate directories, separate
//! containers, separate recipe chains) rather than a bookkeeping overlay.
//!
//! * **Lazy, bounded handles.** Repositories open on first use through a
//!   capacity-bounded LRU of live [`RepositoryHandle`]s. Eviction only
//!   considers *idle* handles — a slot some request still holds (its `Arc`
//!   count proves it) is never evicted, so an in-flight writer can never
//!   race a fresh handle on the same directory.
//! * **Per-tenant writer locks.** Each slot owns its repository's writer
//!   lock and its own resumable-commit gate, so two tenants' mutations
//!   commit fully in parallel; only same-tenant mutations serialize.
//! * **Quotas.** A [`TenantQuota`] bounds retained versions and logical
//!   bytes. [`TenantQuota::admit`] runs inside the writer lock (via
//!   [`RepositoryHandle::write_checked`]) *before* the mutation, so a
//!   refusal is a cheap read — typed, non-retryable, and never a rollback.
//! * **Two mounts.** A *tenant root* serves `<root>/tenants/<id>/`, one
//!   repository per tenant, auto-created from a template config on first
//!   backup. A *legacy mount* serves one existing repository as exactly the
//!   `default` tenant, which is how protocol v1/v2 clients (who cannot name
//!   a tenant) keep working unchanged.
//!
//! [`RepositoryHandle`]: hidestore_core::RepositoryHandle
//! [`RepositoryHandle::write_checked`]: hidestore_core::RepositoryHandle::write_checked

mod registry;

pub use registry::{
    RegistryOptions, TenantError, TenantQuota, TenantRegistry, TenantSlot, TENANTS_SUBDIR,
};
