//! The tenant registry: validated ids → independent repositories through a
//! capacity-bounded LRU of live handles.

use std::collections::BTreeMap;
use std::fmt;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard};

use hidestore_core::{HiDeStore, HiDeStoreConfig, HiDeStoreError, RepositoryHandle, CONFIG_FILE};
use hidestore_failpoint::{RealVfs, Vfs};
use hidestore_proto::TenantId;
use hidestore_storage::ContainerStore;

/// Subdirectory of a tenant root holding one repository per tenant.
pub const TENANTS_SUBDIR: &str = "tenants";

/// Per-tenant resource bounds. A zero field means unlimited.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct TenantQuota {
    /// Maximum logical bytes across retained versions (0 = unlimited).
    pub max_bytes: u64,
    /// Maximum retained versions (0 = unlimited).
    pub max_versions: u64,
}

impl TenantQuota {
    /// No limits at all.
    pub const UNLIMITED: TenantQuota = TenantQuota {
        max_bytes: 0,
        max_versions: 0,
    };

    /// Whether this quota never refuses anything.
    #[must_use]
    pub fn is_unlimited(&self) -> bool {
        self.max_bytes == 0 && self.max_versions == 0
    }

    /// Admission check for a backup of `incoming_len` logical bytes,
    /// intended to run as the `check` closure of
    /// [`RepositoryHandle::write_checked`] — inside the writer lock,
    /// before anything mutates.
    ///
    /// # Errors
    ///
    /// [`HiDeStoreError::QuotaExceeded`] naming the limit that would be
    /// crossed. Nothing has been mutated when this returns.
    pub fn admit<S: ContainerStore>(
        &self,
        system: &HiDeStore<S>,
        incoming_len: u64,
    ) -> Result<(), HiDeStoreError> {
        if self.max_versions > 0 {
            let used = system.versions().len() as u64;
            if used >= self.max_versions {
                return Err(HiDeStoreError::QuotaExceeded {
                    what: "versions",
                    used,
                    limit: self.max_versions,
                });
            }
        }
        if self.max_bytes > 0 {
            let used: u64 = system
                .versions()
                .iter()
                .filter_map(|v| system.recipes().get(*v))
                .map(|recipe| recipe.total_bytes())
                .sum();
            if used.saturating_add(incoming_len) > self.max_bytes {
                return Err(HiDeStoreError::QuotaExceeded {
                    what: "bytes",
                    used,
                    limit: self.max_bytes,
                });
            }
        }
        Ok(())
    }
}

/// Why a tenant operation failed.
#[derive(Debug)]
pub enum TenantError {
    /// The tenant has no repository and the operation may not create one
    /// (read path, auto-creation disabled, or a legacy mount that only
    /// serves `default`).
    UnknownTenant(TenantId),
    /// The tenant's repository failed to open, create, or operate.
    Repo(HiDeStoreError),
    /// Filesystem work around the repositories (creating the tenant root,
    /// listing tenants) failed.
    Io(std::io::Error),
}

impl fmt::Display for TenantError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TenantError::UnknownTenant(t) => write!(f, "unknown tenant {t:?}"),
            TenantError::Repo(e) => write!(f, "tenant repository error: {e}"),
            TenantError::Io(e) => write!(f, "tenant root I/O error: {e}"),
        }
    }
}

impl std::error::Error for TenantError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            TenantError::Repo(e) => Some(e),
            TenantError::Io(e) => Some(e),
            TenantError::UnknownTenant(_) => None,
        }
    }
}

impl From<HiDeStoreError> for TenantError {
    fn from(e: HiDeStoreError) -> Self {
        TenantError::Repo(e)
    }
}

impl From<std::io::Error> for TenantError {
    fn from(e: std::io::Error) -> Self {
        TenantError::Io(e)
    }
}

/// How the registry maps tenant ids onto the filesystem.
#[derive(Debug, Clone)]
enum Mount {
    /// One pre-existing repository serving exactly the `default` tenant.
    Legacy(PathBuf),
    /// `<root>/tenants/<id>/`, one repository per tenant.
    Root(PathBuf),
}

/// Construction-time knobs for [`TenantRegistry`].
#[derive(Debug, Clone, Copy)]
pub struct RegistryOptions {
    /// Soft cap on concurrently live repository handles. When exceeded,
    /// idle handles are evicted least-recently-used first; handles still
    /// held by an in-flight request are never evicted, so the table can
    /// transiently exceed the cap under load. Clamped to at least 1.
    pub max_live: usize,
    /// Whether a backup against a tenant with no repository creates one
    /// from the template config. Read paths never create.
    pub auto_create: bool,
    /// Config for auto-created tenant repositories. Overridden by a
    /// `config` file at the tenant root, if present.
    pub template: HiDeStoreConfig,
    /// Quota applied to tenants without an explicit override.
    pub default_quota: TenantQuota,
}

impl Default for RegistryOptions {
    fn default() -> Self {
        RegistryOptions {
            max_live: 8,
            auto_create: true,
            template: HiDeStoreConfig::default(),
            default_quota: TenantQuota::UNLIMITED,
        }
    }
}

/// One live tenant: its repository handle plus the tenant-scoped locks
/// that make same-tenant operations safe without serializing other
/// tenants. Handed out as an `Arc` — the registry's eviction logic uses
/// the reference count to tell idle slots from busy ones.
pub struct TenantSlot<V: Vfs = RealVfs> {
    tenant: TenantId,
    handle: RepositoryHandle<V>,
    commit_gate: Mutex<()>,
}

impl<V: Vfs> TenantSlot<V> {
    /// The tenant this slot serves.
    pub fn tenant(&self) -> &TenantId {
        &self.tenant
    }

    /// The tenant's repository handle. Its writer lock is *this tenant's*
    /// writer lock — no other tenant contends on it.
    pub fn handle(&self) -> &RepositoryHandle<V> {
        &self.handle
    }

    /// Locks this tenant's resumable-commit gate, serializing the
    /// committed-check → commit → record sequence of idempotent backups
    /// against same-tenant retries only.
    pub fn commit_gate(&self) -> MutexGuard<'_, ()> {
        self.commit_gate.lock().unwrap_or_else(|e| e.into_inner())
    }
}

struct Inner<V: Vfs> {
    /// Live slots, least-recently-used first.
    live: Vec<(TenantId, Arc<TenantSlot<V>>)>,
    /// Explicit per-tenant quota overrides.
    quotas: BTreeMap<TenantId, TenantQuota>,
}

/// Maps validated tenant ids to independent repositories under one root,
/// opening handles lazily through a capacity-bounded LRU. See the crate
/// docs for the locking and eviction rules.
pub struct TenantRegistry<V: Vfs = RealVfs> {
    mount: Mount,
    options: RegistryOptions,
    /// Vfs used for registry-level filesystem work (tenant root creation,
    /// listing).
    root_vfs: V,
    /// Builds the Vfs each tenant's repository runs on. Fault-injection
    /// tests hand one tenant an armed [`hidestore_failpoint::FaultVfs`]
    /// and every other tenant a benign one, proving a poisoned tenant
    /// fast-fails alone.
    make_vfs: Box<dyn Fn(&TenantId) -> V + Send + Sync>,
    inner: Mutex<Inner<V>>,
    /// Rollbacks accumulated by handles that have since been evicted, so
    /// [`TenantRegistry::rollbacks`] survives eviction.
    retired_rollbacks: AtomicU64,
}

impl TenantRegistry<RealVfs> {
    /// Serves the single pre-existing repository at `dir` as exactly the
    /// `default` tenant — the compatibility mount for deployments that
    /// predate tenancy. Every other tenant id is
    /// [`TenantError::UnknownTenant`].
    ///
    /// # Errors
    ///
    /// [`TenantError::Repo`] when `dir` is not an initialized repository.
    pub fn open_legacy(
        dir: impl AsRef<Path>,
        options: RegistryOptions,
    ) -> Result<Self, TenantError> {
        Self::open_legacy_with(dir, options, RealVfs, |_| RealVfs)
    }

    /// Serves `root` as a tenant root: each tenant's repository lives at
    /// `<root>/tenants/<id>/`. The `tenants` directory is created if
    /// missing; a `config` file at `root` overrides the template for
    /// auto-created tenants.
    ///
    /// # Errors
    ///
    /// [`TenantError::Io`] when the tenant root cannot be created, or
    /// [`TenantError::Repo`] when the root config exists but is invalid.
    pub fn open_root(
        root: impl AsRef<Path>,
        options: RegistryOptions,
    ) -> Result<Self, TenantError> {
        Self::open_root_with(root, options, RealVfs, |_| RealVfs)
    }
}

impl<V: Vfs> TenantRegistry<V> {
    /// [`TenantRegistry::open_legacy`] with explicit vfs plumbing — the
    /// fault-injection entry point.
    ///
    /// # Errors
    ///
    /// As [`TenantRegistry::open_legacy`].
    pub fn open_legacy_with(
        dir: impl AsRef<Path>,
        options: RegistryOptions,
        root_vfs: V,
        make_vfs: impl Fn(&TenantId) -> V + Send + Sync + 'static,
    ) -> Result<Self, TenantError> {
        let dir = dir.as_ref().to_path_buf();
        // Fail fast on a directory that is not a repository: the legacy
        // mount never creates one.
        let template = HiDeStoreConfig::load_from_with(&dir, &root_vfs)?;
        Ok(TenantRegistry {
            mount: Mount::Legacy(dir),
            options: RegistryOptions {
                template,
                max_live: options.max_live.max(1),
                ..options
            },
            root_vfs,
            make_vfs: Box::new(make_vfs),
            inner: Mutex::new(Inner {
                live: Vec::new(),
                quotas: BTreeMap::new(),
            }),
            retired_rollbacks: AtomicU64::new(0),
        })
    }

    /// [`TenantRegistry::open_root`] with explicit vfs plumbing — the
    /// fault-injection entry point.
    ///
    /// # Errors
    ///
    /// As [`TenantRegistry::open_root`].
    pub fn open_root_with(
        root: impl AsRef<Path>,
        mut options: RegistryOptions,
        root_vfs: V,
        make_vfs: impl Fn(&TenantId) -> V + Send + Sync + 'static,
    ) -> Result<Self, TenantError> {
        let root = root.as_ref().to_path_buf();
        root_vfs.create_dir_all(&root.join(TENANTS_SUBDIR))?;
        if root_vfs.exists(&root.join(CONFIG_FILE)) {
            options.template = HiDeStoreConfig::load_from_with(&root, &root_vfs)?;
        }
        options.max_live = options.max_live.max(1);
        Ok(TenantRegistry {
            mount: Mount::Root(root),
            options,
            root_vfs,
            make_vfs: Box::new(make_vfs),
            inner: Mutex::new(Inner {
                live: Vec::new(),
                quotas: BTreeMap::new(),
            }),
            retired_rollbacks: AtomicU64::new(0),
        })
    }

    fn lock(&self) -> MutexGuard<'_, Inner<V>> {
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Whether this registry is a legacy single-repository mount.
    pub fn is_legacy(&self) -> bool {
        matches!(self.mount, Mount::Legacy(_))
    }

    /// The config auto-created tenants start from.
    pub fn template(&self) -> &HiDeStoreConfig {
        &self.options.template
    }

    /// Soft cap on live handles.
    pub fn max_live(&self) -> usize {
        self.options.max_live
    }

    /// The directory a tenant's repository lives in (whether or not it
    /// exists yet).
    ///
    /// # Errors
    ///
    /// [`TenantError::UnknownTenant`] for a non-default tenant on a
    /// legacy mount, which has no directory to offer.
    pub fn tenant_dir(&self, tenant: &TenantId) -> Result<PathBuf, TenantError> {
        match &self.mount {
            Mount::Legacy(dir) => {
                if tenant.is_default() {
                    Ok(dir.clone())
                } else {
                    Err(TenantError::UnknownTenant(tenant.clone()))
                }
            }
            Mount::Root(root) => Ok(root.join(TENANTS_SUBDIR).join(tenant.as_str())),
        }
    }

    /// The live slot for `tenant`, opening its repository if needed. Never
    /// creates a repository — an absent tenant is
    /// [`TenantError::UnknownTenant`], which the server maps to the
    /// protocol's `NotFound`.
    ///
    /// # Errors
    ///
    /// [`TenantError::UnknownTenant`], or the open's errors.
    pub fn get(&self, tenant: &TenantId) -> Result<Arc<TenantSlot<V>>, TenantError> {
        self.lookup(tenant, false)
    }

    /// The live slot for `tenant`, creating its repository from the
    /// template on first use when auto-creation is enabled (tenant-root
    /// mounts only). The entry point for backups.
    ///
    /// # Errors
    ///
    /// [`TenantError::UnknownTenant`] when the tenant is absent and may
    /// not be created, or the open/create errors.
    pub fn get_or_create(&self, tenant: &TenantId) -> Result<Arc<TenantSlot<V>>, TenantError> {
        self.lookup(tenant, true)
    }

    fn lookup(&self, tenant: &TenantId, create: bool) -> Result<Arc<TenantSlot<V>>, TenantError> {
        let mut inner = self.lock();
        if let Some(at) = inner.live.iter().position(|(t, _)| t == tenant) {
            let entry = inner.live.remove(at);
            let slot = entry.1.clone();
            inner.live.push(entry);
            // Catch-up eviction: slots that were busy (and thus skipped)
            // when the table last went over cap may be idle by now.
            self.evict_idle(&mut inner);
            return Ok(slot);
        }
        // Not live: open (possibly create) under the registry lock, so two
        // racing requests can never hold two handles — two writer locks —
        // on the same directory. The open is bounded repository metadata
        // I/O; bulk data never moves under this lock.
        let dir = self.tenant_dir(tenant)?;
        let vfs = (self.make_vfs)(tenant);
        if !vfs.exists(&dir.join(CONFIG_FILE)) {
            let may_create =
                create && self.options.auto_create && matches!(self.mount, Mount::Root(_));
            if !may_create {
                return Err(TenantError::UnknownTenant(tenant.clone()));
            }
            vfs.create_dir_all(&dir)?;
            self.options.template.save_to_with(&dir, &vfs)?;
        }
        let handle = RepositoryHandle::open_with(&dir, vfs)?;
        let slot = Arc::new(TenantSlot {
            tenant: tenant.clone(),
            handle,
            commit_gate: Mutex::new(()),
        });
        inner.live.push((tenant.clone(), slot.clone()));
        self.evict_idle(&mut inner);
        Ok(slot)
    }

    /// Evicts least-recently-used *idle* slots until the table is within
    /// its cap. A slot is idle exactly when the registry holds the only
    /// `Arc` to it — checked under the registry lock, the same lock every
    /// lookup clones under, so idleness cannot be raced. Busy slots are
    /// skipped; if every slot is busy the table stays over cap (soft cap).
    fn evict_idle(&self, inner: &mut Inner<V>) {
        let mut at = 0;
        while inner.live.len() > self.options.max_live && at < inner.live.len() {
            if Arc::strong_count(&inner.live[at].1) == 1 {
                let (_, slot) = inner.live.remove(at);
                self.retired_rollbacks
                    .fetch_add(slot.handle.rollbacks(), Ordering::Relaxed);
            } else {
                at += 1;
            }
        }
    }

    /// Whether `tenant`'s handle is currently live.
    pub fn is_live(&self, tenant: &TenantId) -> bool {
        self.lock().live.iter().any(|(t, _)| t == tenant)
    }

    /// How many handles are currently live.
    pub fn live_count(&self) -> usize {
        self.lock().live.len()
    }

    /// Total failed-mutation rollbacks across all tenants, including
    /// handles that have since been evicted.
    pub fn rollbacks(&self) -> u64 {
        let live: u64 = self
            .lock()
            .live
            .iter()
            .map(|(_, slot)| slot.handle.rollbacks())
            .sum();
        self.retired_rollbacks.load(Ordering::Relaxed) + live
    }

    /// The quota in force for `tenant`: its override, or the default.
    pub fn quota_for(&self, tenant: &TenantId) -> TenantQuota {
        self.lock()
            .quotas
            .get(tenant)
            .copied()
            .unwrap_or(self.options.default_quota)
    }

    /// Overrides `tenant`'s quota.
    pub fn set_quota(&self, tenant: &TenantId, quota: TenantQuota) {
        self.lock().quotas.insert(tenant.clone(), quota);
    }

    /// Every tenant with an initialized repository, sorted by id. On a
    /// legacy mount this is exactly `default`.
    ///
    /// # Errors
    ///
    /// [`TenantError::Io`] when the tenant root cannot be listed.
    pub fn list(&self) -> Result<Vec<TenantId>, TenantError> {
        match &self.mount {
            Mount::Legacy(_) => Ok(vec![TenantId::default_tenant()]),
            Mount::Root(root) => {
                let mut tenants = Vec::new();
                for entry in self.root_vfs.read_dir(&root.join(TENANTS_SUBDIR))? {
                    let Some(name) = entry.file_name().and_then(|n| n.to_str()) else {
                        continue;
                    };
                    // Only directories that validate as tenant ids and
                    // hold an initialized repository count; anything else
                    // in the tree is not a tenant.
                    let Ok(tenant) = TenantId::new(name) else {
                        continue;
                    };
                    if self.root_vfs.exists(&entry.join(CONFIG_FILE)) {
                        tenants.push(tenant);
                    }
                }
                tenants.sort();
                Ok(tenants)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::mpsc;
    use std::time::Duration;

    use hidestore_failpoint::{FaultKind, FaultVfs};
    use hidestore_restore::{Faa, RestoreConcurrency};
    use hidestore_storage::VersionId;

    fn temp(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("hidestore-tenant-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn small_options() -> RegistryOptions {
        RegistryOptions {
            template: HiDeStoreConfig::small_for_tests(),
            ..RegistryOptions::default()
        }
    }

    fn tid(s: &str) -> TenantId {
        TenantId::new(s).unwrap()
    }

    fn backup<V: Vfs>(
        registry: &TenantRegistry<V>,
        tenant: &TenantId,
        data: &[u8],
    ) -> Result<u32, TenantError> {
        let slot = registry.get_or_create(tenant)?;
        let quota = registry.quota_for(tenant);
        let stats = slot
            .handle()
            .write_checked(|s| quota.admit(s, data.len() as u64), |s| s.backup(data))?;
        Ok(stats.version.get())
    }

    fn restore<V: Vfs>(registry: &TenantRegistry<V>, tenant: &TenantId, version: u32) -> Vec<u8> {
        let slot = registry.get(tenant).unwrap();
        slot.handle()
            .read_snapshot(|s| {
                let mut out = Vec::new();
                s.restore_with(
                    VersionId::new(version),
                    &mut Faa::new(1 << 20),
                    &mut out,
                    &RestoreConcurrency::serial(),
                )?;
                Ok(out)
            })
            .unwrap()
    }

    #[test]
    fn tenants_are_physically_isolated() {
        let root = temp("isolated");
        let registry = TenantRegistry::open_root(&root, small_options()).unwrap();
        let (a, b) = (tid("alice"), tid("bob"));
        // Both tenants get version 1: independent version-id spaces.
        assert_eq!(backup(&registry, &a, &vec![0xAA; 30_000]).unwrap(), 1);
        assert_eq!(backup(&registry, &b, &vec![0xBB; 20_000]).unwrap(), 1);
        assert_eq!(backup(&registry, &a, &vec![0xAC; 10_000]).unwrap(), 2);
        assert_eq!(restore(&registry, &a, 1), vec![0xAA; 30_000]);
        assert_eq!(restore(&registry, &b, 1), vec![0xBB; 20_000]);
        // Separate directories on disk.
        assert!(root
            .join(TENANTS_SUBDIR)
            .join("alice")
            .join(CONFIG_FILE)
            .exists());
        assert!(root
            .join(TENANTS_SUBDIR)
            .join("bob")
            .join(CONFIG_FILE)
            .exists());
        assert_eq!(registry.list().unwrap(), vec![a, b]);
        std::fs::remove_dir_all(&root).unwrap();
    }

    #[test]
    fn unknown_tenant_is_typed_and_reads_never_create() {
        let root = temp("unknown");
        let registry = TenantRegistry::open_root(&root, small_options()).unwrap();
        let ghost = tid("ghost");
        assert!(matches!(
            registry.get(&ghost),
            Err(TenantError::UnknownTenant(_))
        ));
        assert!(
            !root.join(TENANTS_SUBDIR).join("ghost").exists(),
            "a read lookup must not create a repository"
        );
        // With auto-creation off, even the backup path refuses.
        let registry = TenantRegistry::open_root(
            &root,
            RegistryOptions {
                auto_create: false,
                ..small_options()
            },
        )
        .unwrap();
        assert!(matches!(
            registry.get_or_create(&ghost),
            Err(TenantError::UnknownTenant(_))
        ));
        std::fs::remove_dir_all(&root).unwrap();
    }

    #[test]
    fn legacy_mount_serves_exactly_default() {
        let dir = temp("legacy");
        HiDeStoreConfig::small_for_tests().save_to(&dir).unwrap();
        let registry = TenantRegistry::open_legacy(&dir, RegistryOptions::default()).unwrap();
        assert!(registry.is_legacy());
        let default = TenantId::default_tenant();
        assert_eq!(backup(&registry, &default, &vec![7u8; 10_000]).unwrap(), 1);
        assert_eq!(restore(&registry, &default, 1), vec![7u8; 10_000]);
        assert!(matches!(
            registry.get_or_create(&tid("alice")),
            Err(TenantError::UnknownTenant(_))
        ));
        assert_eq!(registry.list().unwrap(), vec![default]);
        // And a directory that is not a repository refuses to mount.
        let empty = temp("legacy-empty");
        assert!(matches!(
            TenantRegistry::open_legacy(&empty, RegistryOptions::default()),
            Err(TenantError::Repo(HiDeStoreError::Config(_)))
        ));
        std::fs::remove_dir_all(&dir).unwrap();
        std::fs::remove_dir_all(&empty).unwrap();
    }

    #[test]
    fn lru_eviction_under_pressure_round_trips() {
        let root = temp("lru");
        let registry = TenantRegistry::open_root(
            &root,
            RegistryOptions {
                max_live: 2,
                ..small_options()
            },
        )
        .unwrap();
        let tenants: Vec<TenantId> = (0..4).map(|i| tid(&format!("t{i}"))).collect();
        for (i, t) in tenants.iter().enumerate() {
            assert_eq!(backup(&registry, t, &vec![i as u8; 20_000]).unwrap(), 1);
        }
        assert_eq!(
            registry.live_count(),
            2,
            "capacity bounds the live handle table"
        );
        assert!(!registry.is_live(&tenants[0]), "oldest tenant was evicted");
        assert!(registry.is_live(&tenants[3]));
        // An evicted tenant reopens lazily and sees its committed state.
        assert_eq!(restore(&registry, &tenants[0], 1), vec![0u8; 20_000]);
        assert!(registry.is_live(&tenants[0]));
        assert_eq!(
            backup(&registry, &tenants[0], &vec![9u8; 10_000]).unwrap(),
            2,
            "version ids continue where the evicted handle left off"
        );
        std::fs::remove_dir_all(&root).unwrap();
    }

    #[test]
    fn busy_slots_are_never_evicted() {
        let root = temp("busy");
        let registry = TenantRegistry::open_root(
            &root,
            RegistryOptions {
                max_live: 1,
                ..small_options()
            },
        )
        .unwrap();
        let (a, b) = (tid("held"), tid("other"));
        backup(&registry, &a, &vec![1u8; 10_000]).unwrap();
        let held = registry.get(&a).unwrap();
        // Opening a second tenant pushes past the cap, but the held slot
        // may not be evicted: the soft cap yields instead.
        backup(&registry, &b, &vec![2u8; 10_000]).unwrap();
        assert!(registry.is_live(&a), "a busy slot survives pressure");
        let again = registry.get(&a).unwrap();
        assert!(
            Arc::ptr_eq(&held, &again),
            "a busy tenant always resolves to the same slot — never two \
             handles (two writer locks) on one directory"
        );
        drop(again);
        drop(held);
        // Now idle: the next lookup evicts it.
        backup(&registry, &b, &vec![3u8; 10_000]).unwrap();
        registry.get(&b).unwrap();
        assert!(!registry.is_live(&a) || registry.live_count() <= 1);
        std::fs::remove_dir_all(&root).unwrap();
    }

    #[test]
    fn quotas_refuse_typed_without_rollback() {
        let root = temp("quota");
        let registry = TenantRegistry::open_root(&root, small_options()).unwrap();
        let a = tid("capped");
        registry.set_quota(
            &a,
            TenantQuota {
                max_bytes: 0,
                max_versions: 2,
            },
        );
        backup(&registry, &a, &vec![1u8; 10_000]).unwrap();
        backup(&registry, &a, &vec![2u8; 10_000]).unwrap();
        let err = backup(&registry, &a, &vec![3u8; 10_000]);
        assert!(matches!(
            err,
            Err(TenantError::Repo(HiDeStoreError::QuotaExceeded {
                what: "versions",
                used: 2,
                limit: 2,
            }))
        ));
        assert_eq!(
            registry.rollbacks(),
            0,
            "a quota refusal is an admission check, not a rollback"
        );
        // Byte quota: the check sees retained + incoming bytes.
        let b = tid("byte-capped");
        registry.set_quota(
            &b,
            TenantQuota {
                max_bytes: 25_000,
                max_versions: 0,
            },
        );
        backup(&registry, &b, &vec![4u8; 20_000]).unwrap();
        let err = backup(&registry, &b, &vec![5u8; 10_000]);
        assert!(matches!(
            err,
            Err(TenantError::Repo(HiDeStoreError::QuotaExceeded {
                what: "bytes",
                used: 20_000,
                limit: 25_000,
            }))
        ));
        // Other tenants are unaffected by one tenant's quota exhaustion.
        assert_eq!(
            backup(&registry, &tid("free"), &vec![6u8; 40_000]).unwrap(),
            1
        );
        std::fs::remove_dir_all(&root).unwrap();
    }

    /// The acceptance-criterion proof at the registry layer: tenant A's
    /// commit is held open (its writer lock held mid-mutation) while
    /// tenant B completes a full backup within a watchdog deadline. With
    /// a shared writer lock this deadlocks until the watchdog fires.
    #[test]
    fn tenants_commit_in_parallel_while_one_writer_is_held() {
        let root = temp("parallel");
        let registry = Arc::new(TenantRegistry::open_root(&root, small_options()).unwrap());
        let (a, b) = (tid("held"), tid("concurrent"));
        // Materialize A so the held write below starts immediately.
        backup(&registry, &a, &vec![1u8; 10_000]).unwrap();

        let (entered_tx, entered_rx) = mpsc::channel::<()>();
        let (release_tx, release_rx) = mpsc::channel::<()>();
        let registry_a = Arc::clone(&registry);
        let holder = std::thread::spawn(move || {
            let slot = registry_a.get(&tid("held")).unwrap();
            slot.handle()
                .write(|s| {
                    entered_tx.send(()).unwrap();
                    // Hold A's writer lock until the test releases it.
                    release_rx
                        .recv_timeout(Duration::from_secs(30))
                        .expect("test must release the held commit");
                    s.backup(&vec![2u8; 10_000])
                })
                .unwrap();
        });
        entered_rx
            .recv_timeout(Duration::from_secs(10))
            .expect("holder must enter its commit");

        // With A's writer lock held, B's backup must complete within the
        // watchdog deadline.
        let (done_tx, done_rx) = mpsc::channel::<u32>();
        let registry_b = Arc::clone(&registry);
        let runner = std::thread::spawn(move || {
            let version = backup(&registry_b, &b, &vec![3u8; 30_000]).unwrap();
            done_tx.send(version).unwrap();
        });
        let version = done_rx
            .recv_timeout(Duration::from_secs(10))
            .expect("tenant B must commit while tenant A's writer lock is held");
        assert_eq!(version, 1);

        release_tx.send(()).unwrap();
        holder.join().unwrap();
        runner.join().unwrap();
        assert_eq!(restore(&registry, &tid("held"), 2), vec![2u8; 10_000]);
        std::fs::remove_dir_all(&root).unwrap();
    }

    /// A tenant whose vfs dies mid-commit poisons *its own* handle only:
    /// its operations fast-fail typed while every other tenant keeps
    /// committing through the same registry.
    #[test]
    fn poisoned_tenant_fast_fails_alone() {
        let root = temp("poison");
        let victim = tid("victim");

        // Materialize the victim's repository with a benign registry.
        {
            let setup = TenantRegistry::open_root_with(
                &root,
                small_options(),
                FaultVfs::counting(),
                |_| FaultVfs::counting(),
            )
            .unwrap();
            setup.get_or_create(&victim).unwrap();
        }

        // Counting probe: how many vfs ops does opening the existing
        // repository take? The armed run fails the op after that — the
        // first I/O of the mutation/save.
        let counting = FaultVfs::counting();
        let counting_for_closure = counting.clone();
        let benign = FaultVfs::counting();
        let registry =
            TenantRegistry::open_root_with(&root, small_options(), benign.clone(), move |t| {
                if t.as_str() == "victim" {
                    counting_for_closure.clone()
                } else {
                    FaultVfs::counting()
                }
            })
            .unwrap();
        registry.get(&victim).unwrap();
        let open_ops = counting.ops();

        // Armed run: the victim's vfs fails every op after the open, so
        // its first mutation fails AND its rollback reopen fails —
        // poisoning the victim's handle.
        let armed = FaultVfs::armed(open_ops, FaultKind::Error);
        let armed_for_closure = armed.clone();
        let registry = TenantRegistry::open_root_with(
            &root,
            small_options(),
            FaultVfs::counting(),
            move |t| {
                if t.as_str() == "victim" {
                    armed_for_closure.clone()
                } else {
                    FaultVfs::counting()
                }
            },
        )
        .unwrap();
        let err = backup(&registry, &victim, &vec![9u8; 40_000]);
        assert!(err.is_err(), "the armed fault must fail the mutation");
        assert!(armed.crashed(), "the armed site must have fired");
        let slot = registry.get(&victim).unwrap();
        assert!(matches!(
            slot.handle().read(|s| s.versions()),
            Err(HiDeStoreError::Poisoned)
        ));
        drop(slot);
        // Every other tenant commits and restores normally through the
        // same registry — the poison is tenant-local.
        let bystander = tid("bystander");
        assert_eq!(
            backup(&registry, &bystander, &vec![4u8; 20_000]).unwrap(),
            1
        );
        assert_eq!(restore(&registry, &bystander, 1), vec![4u8; 20_000]);
        assert_eq!(registry.rollbacks(), 1);
        std::fs::remove_dir_all(&root).unwrap();
    }
}
