//! Archive paths: the tree's canonical, platform-independent entry names.
//!
//! An *apath* names an entry relative to the tree root: `"/"` is the root
//! itself, `"/src/main.rs"` a nested file. Apaths are UTF-8, use `/` as the
//! only separator, and forbid `.`/`..` components, so a manifest written on
//! one machine restores identically on another and can never escape the
//! restore destination.
//!
//! Manifests store entries in **apath order**: depth-first with bytewise
//! sorted names, parents strictly before children. This is *component-wise*
//! byte order, not whole-string byte order — `"/a/b"` sorts before
//! `"/a+x"` because the walk descends into `a` before visiting its sibling
//! `a+x`, even though `+` < `/` as raw bytes.

use std::cmp::Ordering;

/// The apath of the tree root.
pub const ROOT: &str = "/";

/// Whether `name` is a valid single apath component: non-empty UTF-8
/// without separators, and not a traversal dot.
#[must_use]
pub fn valid_component(name: &str) -> bool {
    !name.is_empty() && name != "." && name != ".." && !name.contains('/') && !name.contains('\0')
}

/// Joins a child `name` onto a parent apath.
#[must_use]
pub fn join(parent: &str, name: &str) -> String {
    if parent == ROOT {
        format!("/{name}")
    } else {
        format!("{parent}/{name}")
    }
}

/// Whether `apath` is a structurally valid apath (`"/"` or `/`-joined valid
/// components).
#[must_use]
pub fn valid(apath: &str) -> bool {
    if apath == ROOT {
        return true;
    }
    match apath.strip_prefix('/') {
        Some(rest) => rest.split('/').all(valid_component),
        None => false,
    }
}

/// Whether `apath` equals `prefix` or lies beneath it.
#[must_use]
pub fn is_or_under(apath: &str, prefix: &str) -> bool {
    if prefix == ROOT {
        return true;
    }
    apath == prefix
        || (apath.len() > prefix.len()
            && apath.starts_with(prefix)
            && apath.as_bytes()[prefix.len()] == b'/')
}

/// The remainder of `apath` below `prefix`, as its own apath (`"/"` when
/// they are equal). Callers must have checked [`is_or_under`] first.
#[must_use]
pub fn strip_prefix<'a>(apath: &'a str, prefix: &str) -> &'a str {
    if prefix == ROOT {
        apath
    } else if apath == prefix {
        ROOT
    } else {
        &apath[prefix.len()..]
    }
}

/// Compares two apaths in manifest (depth-first walk) order: component-wise
/// bytewise, parents before children.
#[must_use]
pub fn cmp(a: &str, b: &str) -> Ordering {
    let ac = a.strip_prefix('/').unwrap_or(a);
    let bc = b.strip_prefix('/').unwrap_or(b);
    if a == ROOT || b == ROOT {
        // The root precedes everything but itself.
        return (a != ROOT).cmp(&(b != ROOT));
    }
    let mut ai = ac.split('/');
    let mut bi = bc.split('/');
    loop {
        match (ai.next(), bi.next()) {
            (Some(x), Some(y)) => match x.as_bytes().cmp(y.as_bytes()) {
                Ordering::Equal => continue,
                other => return other,
            },
            (None, Some(_)) => return Ordering::Less,
            (Some(_), None) => return Ordering::Greater,
            (None, None) => return Ordering::Equal,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn validity() {
        assert!(valid("/"));
        assert!(valid("/a"));
        assert!(valid("/a b/c-d/é"));
        assert!(!valid(""));
        assert!(!valid("a"));
        assert!(!valid("/a//b"));
        assert!(!valid("/a/../b"));
        assert!(!valid("/a/./b"));
        assert!(!valid("/a/"));
    }

    #[test]
    fn join_and_prefix() {
        assert_eq!(join("/", "a"), "/a");
        assert_eq!(join("/a", "b"), "/a/b");
        assert!(is_or_under("/a/b", "/a"));
        assert!(is_or_under("/a", "/a"));
        assert!(is_or_under("/a", "/"));
        assert!(!is_or_under("/ab", "/a"));
        assert_eq!(strip_prefix("/a/b", "/a"), "/b");
        assert_eq!(strip_prefix("/a", "/a"), "/");
        assert_eq!(strip_prefix("/a/b", "/"), "/a/b");
    }

    #[test]
    fn walk_order_descends_before_siblings() {
        // Whole-string byte order would put "/a+x" first ('+' < '/'); the
        // walk order descends into a's children before the sibling.
        assert_eq!(cmp("/a/b", "/a+x"), Ordering::Less);
        assert_eq!(cmp("/a", "/a/b"), Ordering::Less);
        assert_eq!(cmp("/", "/a"), Ordering::Less);
        assert_eq!(cmp("/b", "/a/deep/deeper"), Ordering::Greater);
        assert_eq!(cmp("/x", "/x"), Ordering::Equal);
    }
}
