//! Tree backup: walk, capture, and feed through the dedup pipeline.

use std::path::{Path, PathBuf};

use hidestore_core::{HiDeStore, HiDeStoreVersionStats};
use hidestore_failpoint::{Vfs, VfsEntryKind};
use hidestore_storage::ContainerStore;

use crate::exclude::ExcludeSet;
use crate::manifest::{EntryPayload, ManifestEntry, TreeManifest};
use crate::{apath, SkippedEntry, TreeError};

/// Options for [`backup_tree`].
#[derive(Debug, Clone, Default)]
pub struct TreeBackupOptions {
    /// Entries (and, for directories, whole subtrees) to leave out.
    pub excludes: ExcludeSet,
}

/// The outcome of one tree backup.
#[derive(Debug, Clone)]
pub struct TreeBackupReport {
    /// The pipeline's per-version statistics (version id, dedup ratio, …).
    pub stats: HiDeStoreVersionStats,
    /// Regular files stored.
    pub files: u64,
    /// Directories stored (including the root and empty ones).
    pub dirs: u64,
    /// Symlinks stored.
    pub symlinks: u64,
    /// Total file-content bytes stored (the content region's length).
    pub content_bytes: u64,
    /// Entries skipped by an exclude pattern (not an error).
    pub excluded: u64,
    /// Entries that could not be read: logged here, left out of the
    /// manifest, and reported by the CLI as a non-zero exit — the backup
    /// itself never aborts for one bad entry.
    pub skipped: Vec<SkippedEntry>,
}

impl TreeBackupReport {
    /// Whether every walkable entry made it into the backup.
    #[must_use]
    pub fn is_complete(&self) -> bool {
        self.skipped.is_empty()
    }
}

/// One walked entry awaiting content capture.
struct PendingEntry {
    entry: ManifestEntry,
    /// Source path for file entries (content read happens after the walk).
    src: Option<PathBuf>,
}

/// Backs up the directory tree rooted at `root` as one new version.
///
/// The walk visits entries in apath order (depth-first, bytewise-sorted
/// names), applies `options.excludes`, and captures mtime, permission
/// bits, symlink targets, and empty directories. File contents are
/// concatenated (in apath order) behind the serialized manifest and fed
/// through the ordinary chunk→dedup→container pipeline, so the whole tree
/// is one recipe-backed version stream.
///
/// Per-entry resilience: an unreadable entry (stat, readdir, readlink, or
/// content read failure; unsupported kinds like fifos; names that are not
/// UTF-8) is recorded in [`TreeBackupReport::skipped`] and the walk
/// continues — one bad entry never aborts the backup.
///
/// # Errors
///
/// [`TreeError`] when `root` itself is unreadable or not a directory, or
/// when the pipeline rejects the stream. Individual entry failures are
/// *not* errors; see [`TreeBackupReport::skipped`].
pub fn backup_tree<S, V>(
    system: &mut HiDeStore<S>,
    vfs: &V,
    root: &Path,
    options: &TreeBackupOptions,
) -> Result<TreeBackupReport, TreeError>
where
    S: ContainerStore,
    V: Vfs,
{
    let root_meta = vfs
        .symlink_metadata(root)
        .map_err(|e| TreeError::Walk(root.to_path_buf(), e.to_string()))?;
    if root_meta.kind != VfsEntryKind::Dir {
        return Err(TreeError::NotADirectory(root.to_path_buf()));
    }

    let mut pending: Vec<PendingEntry> = vec![PendingEntry {
        entry: ManifestEntry {
            apath: apath::ROOT.to_string(),
            mode: root_meta.mode,
            mtime_secs: root_meta.mtime_secs,
            mtime_nanos: root_meta.mtime_nanos,
            payload: EntryPayload::Dir,
        },
        src: None,
    }];
    let mut skipped = Vec::new();
    let mut excluded = 0u64;
    walk_dir(
        vfs,
        root,
        apath::ROOT,
        options,
        &mut pending,
        &mut skipped,
        &mut excluded,
    );

    // Content capture: read file bodies in apath order. A failed read
    // demotes the entry to `skipped` — offsets stay contiguous because they
    // are assigned only on success, from the bytes actually read (the
    // authoritative size; the stat len may have raced a writer).
    let mut contents: Vec<u8> = Vec::new();
    let mut entries: Vec<ManifestEntry> = Vec::with_capacity(pending.len());
    let mut files = 0u64;
    let mut dirs = 0u64;
    let mut symlinks = 0u64;
    for p in pending {
        let mut entry = p.entry;
        match (&entry.payload, &p.src) {
            (EntryPayload::File { .. }, Some(src)) => match vfs.read(src) {
                Ok(bytes) => {
                    entry.payload = EntryPayload::File {
                        offset: contents.len() as u64,
                        size: bytes.len() as u64,
                    };
                    contents.extend_from_slice(&bytes);
                    files += 1;
                }
                Err(e) => {
                    skipped.push(SkippedEntry {
                        apath: entry.apath,
                        reason: format!("unreadable: {e}"),
                    });
                    continue;
                }
            },
            (EntryPayload::Dir, _) => dirs += 1,
            (EntryPayload::Symlink { .. }, _) => symlinks += 1,
            (EntryPayload::File { .. }, None) => continue,
        }
        entries.push(entry);
    }

    let manifest = TreeManifest { entries };
    let content_bytes = contents.len() as u64;
    let stream = manifest.encode_stream(&contents);
    drop(contents);
    let stats = system.backup(&stream).map_err(TreeError::System)?;
    Ok(TreeBackupReport {
        stats,
        files,
        dirs,
        symlinks,
        content_bytes,
        excluded,
        skipped,
    })
}

/// Walks one directory, pushing entries in apath order. Never fails: every
/// per-entry problem lands in `skipped`.
fn walk_dir<V: Vfs>(
    vfs: &V,
    dir: &Path,
    dir_apath: &str,
    options: &TreeBackupOptions,
    pending: &mut Vec<PendingEntry>,
    skipped: &mut Vec<SkippedEntry>,
    excluded: &mut u64,
) {
    let children = match vfs.read_dir(dir) {
        Ok(c) => c,
        Err(e) => {
            skipped.push(SkippedEntry {
                apath: dir_apath.to_string(),
                reason: format!("unreadable directory: {e}"),
            });
            return;
        }
    };
    // `Vfs::read_dir` returns entries sorted by name, which is exactly the
    // bytewise sibling order the manifest requires.
    for child in children {
        let Some(name) = child.file_name().and_then(|n| n.to_str()) else {
            skipped.push(SkippedEntry {
                apath: format!("{dir_apath}/<non-UTF-8 name>"),
                reason: "file name is not valid UTF-8".to_string(),
            });
            continue;
        };
        if !apath::valid_component(name) || name.len() > u16::MAX as usize {
            skipped.push(SkippedEntry {
                apath: apath::join(dir_apath, name),
                reason: "name is not a valid apath component".to_string(),
            });
            continue;
        }
        let child_apath = apath::join(dir_apath, name);
        if child_apath.len() > u16::MAX as usize {
            skipped.push(SkippedEntry {
                apath: child_apath,
                reason: "path too long for the manifest".to_string(),
            });
            continue;
        }
        if options.excludes.matches(&child_apath) {
            *excluded += 1;
            continue;
        }
        let meta = match vfs.symlink_metadata(&child) {
            Ok(m) => m,
            Err(e) => {
                skipped.push(SkippedEntry {
                    apath: child_apath,
                    reason: format!("unreadable: {e}"),
                });
                continue;
            }
        };
        let payload = match meta.kind {
            VfsEntryKind::Dir => EntryPayload::Dir,
            VfsEntryKind::File => EntryPayload::File { offset: 0, size: 0 },
            VfsEntryKind::Symlink => match vfs.read_link(&child) {
                Ok(target) => match target.to_str() {
                    Some(t) if !t.is_empty() && t.len() <= u16::MAX as usize => {
                        EntryPayload::Symlink {
                            target: t.to_string(),
                        }
                    }
                    _ => {
                        skipped.push(SkippedEntry {
                            apath: child_apath,
                            reason: "symlink target is empty, overlong, or not UTF-8".to_string(),
                        });
                        continue;
                    }
                },
                Err(e) => {
                    skipped.push(SkippedEntry {
                        apath: child_apath,
                        reason: format!("unreadable symlink: {e}"),
                    });
                    continue;
                }
            },
            VfsEntryKind::Other => {
                skipped.push(SkippedEntry {
                    apath: child_apath,
                    reason: "unsupported entry kind (fifo, socket, or device)".to_string(),
                });
                continue;
            }
        };
        let is_dir = matches!(payload, EntryPayload::Dir);
        let is_file = matches!(payload, EntryPayload::File { .. });
        pending.push(PendingEntry {
            entry: ManifestEntry {
                apath: child_apath.clone(),
                mode: meta.mode,
                mtime_secs: meta.mtime_secs,
                mtime_nanos: meta.mtime_nanos,
                payload,
            },
            src: is_file.then(|| child.clone()),
        });
        if is_dir {
            // Depth-first: a directory's subtree precedes its next sibling.
            walk_dir(
                vfs,
                &child,
                &child_apath,
                options,
                pending,
                skipped,
                excluded,
            );
        }
    }
}
