//! Glob-based exclude patterns for tree backup.
//!
//! Patterns match apaths component-wise: `*` and `?` match within one
//! component (never across `/`), `**` matches any run of whole components
//! (including none). A pattern without a leading `/` is anchored nowhere —
//! it behaves as if prefixed with `**/` and matches at any depth. A pattern
//! that matches a directory excludes its entire subtree.
//!
//! Examples: `*.log` (any `.log` file anywhere), `/target/**` (everything
//! under the top-level `target`), `**/node_modules` (that directory at any
//! depth), `/build?` (`/build1`, `/builds`, …).

use std::fmt;

/// One parsed exclude pattern.
#[derive(Debug, Clone, PartialEq, Eq)]
struct Pattern {
    /// The original text, for display.
    text: String,
    /// `/`-split segments; `**` is the only multi-component segment.
    segments: Vec<String>,
}

/// A compiled set of exclude patterns.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ExcludeSet {
    patterns: Vec<Pattern>,
}

/// A rejected exclude pattern.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ExcludeError(String);

impl fmt::Display for ExcludeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid exclude pattern: {}", self.0)
    }
}

impl std::error::Error for ExcludeError {}

impl ExcludeSet {
    /// An empty set (nothing excluded).
    #[must_use]
    pub fn none() -> Self {
        ExcludeSet::default()
    }

    /// Compiles a list of pattern strings.
    ///
    /// # Errors
    ///
    /// [`ExcludeError`] for empty patterns or empty components.
    pub fn new<I, S>(patterns: I) -> Result<Self, ExcludeError>
    where
        I: IntoIterator<Item = S>,
        S: AsRef<str>,
    {
        let mut set = ExcludeSet::default();
        for p in patterns {
            set.add(p.as_ref())?;
        }
        Ok(set)
    }

    /// Adds one pattern to the set.
    ///
    /// # Errors
    ///
    /// [`ExcludeError`] for empty patterns or empty components.
    pub fn add(&mut self, pattern: &str) -> Result<(), ExcludeError> {
        if pattern.is_empty() || pattern == "/" {
            return Err(ExcludeError(format!(
                "{pattern:?} (must name at least one component)"
            )));
        }
        // Unanchored patterns match at any depth.
        let anchored = pattern.strip_prefix('/');
        let body = anchored.unwrap_or(pattern);
        let mut segments: Vec<String> = Vec::new();
        if anchored.is_none() {
            segments.push("**".to_string());
        }
        for seg in body.split('/') {
            if seg.is_empty() {
                return Err(ExcludeError(format!("{pattern:?} (empty component)")));
            }
            segments.push(seg.to_string());
        }
        self.patterns.push(Pattern {
            text: pattern.to_string(),
            segments,
        });
        Ok(())
    }

    /// Number of patterns in the set.
    #[must_use]
    pub fn len(&self) -> usize {
        self.patterns.len()
    }

    /// Whether the set has no patterns.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.patterns.is_empty()
    }

    /// Whether `apath` matches any pattern. The root never matches.
    #[must_use]
    pub fn matches(&self, apath: &str) -> bool {
        if self.patterns.is_empty() || apath == "/" {
            return false;
        }
        let components: Vec<&str> = apath
            .strip_prefix('/')
            .unwrap_or(apath)
            .split('/')
            .collect();
        self.patterns
            .iter()
            .any(|p| match_segments(&p.segments, &components))
    }

    /// The original pattern texts, in insertion order.
    pub fn patterns(&self) -> impl Iterator<Item = &str> {
        self.patterns.iter().map(|p| p.text.as_str())
    }
}

/// Matches a segment list against a component list (both fully).
fn match_segments(segments: &[String], components: &[&str]) -> bool {
    match segments.split_first() {
        None => components.is_empty(),
        Some((seg, rest)) if seg == "**" => {
            if rest.is_empty() {
                // Trailing `**` means "the contents", not the directory
                // itself: at least one component must remain.
                !components.is_empty()
            } else {
                // Interior `**` absorbs 0..=all leading components.
                (0..=components.len()).any(|skip| match_segments(rest, &components[skip..]))
            }
        }
        Some((seg, rest)) => match components.split_first() {
            Some((comp, comps)) => {
                glob_match(seg.as_bytes(), comp.as_bytes()) && match_segments(rest, comps)
            }
            None => false,
        },
    }
}

/// Single-component glob: `*` any run of bytes, `?` one byte, else literal.
fn glob_match(pattern: &[u8], text: &[u8]) -> bool {
    match pattern.split_first() {
        None => text.is_empty(),
        Some((b'*', rest)) => (0..=text.len()).any(|skip| glob_match(rest, &text[skip..])),
        Some((b'?', rest)) => match text.split_first() {
            Some((_, t)) => glob_match(rest, t),
            None => false,
        },
        Some((&c, rest)) => match text.split_first() {
            Some((&t, ts)) => c == t && glob_match(rest, ts),
            None => false,
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn set(patterns: &[&str]) -> ExcludeSet {
        ExcludeSet::new(patterns).unwrap()
    }

    #[test]
    fn unanchored_matches_any_depth() {
        let s = set(&["*.log"]);
        assert!(s.matches("/x.log"));
        assert!(s.matches("/deep/nest/y.log"));
        assert!(!s.matches("/x.log.bak"));
        assert!(!s.matches("/"));
    }

    #[test]
    fn anchored_matches_from_root_only() {
        let s = set(&["/target"]);
        assert!(s.matches("/target"));
        assert!(!s.matches("/sub/target"));
    }

    #[test]
    fn double_star_crosses_directories() {
        let s = set(&["/a/**/leaf"]);
        assert!(s.matches("/a/leaf"));
        assert!(s.matches("/a/b/c/leaf"));
        assert!(!s.matches("/a/b/c/leaf2"));
        let t = set(&["/build/**"]);
        assert!(t.matches("/build/x"));
        assert!(t.matches("/build/x/y"));
        assert!(!t.matches("/build"));
    }

    #[test]
    fn question_mark_is_one_byte() {
        let s = set(&["/v?"]);
        assert!(s.matches("/v1"));
        assert!(!s.matches("/v12"));
        assert!(!s.matches("/v"));
    }

    #[test]
    fn star_does_not_cross_separators() {
        let s = set(&["/a*"]);
        assert!(s.matches("/abc"));
        assert!(!s.matches("/abc/d"));
    }

    #[test]
    fn bad_patterns_are_rejected() {
        assert!(ExcludeSet::new(["", "/"]).is_err());
        assert!(ExcludeSet::new(["/a//b"]).is_err());
        assert!(ExcludeSet::new(["ok"]).is_ok());
    }
}
