//! Real filesystem trees as a first-class backup/restore workload.
//!
//! This crate turns a directory tree into one ordinary HiDeStore version:
//! the walk visits entries in deterministic apath order (depth-first,
//! bytewise-sorted names), a compact binary manifest captures per-entry
//! metadata (kind, permission bits, mtime, symlink targets, empty
//! directories), and the manifest plus the concatenated file contents are
//! fed through the existing chunk→dedup→container pipeline as a single
//! framed stream. Because the tree rides the normal version machinery it
//! inherits recipes, journaled crash safety, and fsck auditing for free.
//!
//! Restore plans from the manifest: it fetches the stream header and
//! manifest first, then reads only the byte ranges — and therefore only the
//! containers — the selected entries need, which makes subtree restore cost
//! proportional to the data restored rather than the size of the backup.
//! Files are staged to `.hds-tmp` names and renamed into place, then their
//! metadata is reapplied.
//!
//! Known limits (deliberate, documented): hardlinks are stored as
//! independent files, extended attributes and ownership are not captured,
//! and entry names must be valid UTF-8.
//!
//! ```no_run
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! use hidestore_failpoint::RealVfs;
//! use hidestore_tree::{backup_tree, restore_tree, TreeBackupOptions, TreeRestoreOptions};
//! # let mut system: hidestore_core::HiDeStore<hidestore_storage::MemoryContainerStore> =
//! #     unimplemented!();
//! let vfs = RealVfs;
//! let report = backup_tree(
//!     &mut system,
//!     &vfs,
//!     "/home/me/project".as_ref(),
//!     &TreeBackupOptions::default(),
//! )?;
//! restore_tree(
//!     &mut system,
//!     &vfs,
//!     report.stats.version,
//!     "/tmp/out".as_ref(),
//!     &TreeRestoreOptions::default(),
//! )?;
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt;
use std::path::PathBuf;

use hidestore_core::HiDeStoreError;
use hidestore_storage::VersionId;

pub mod apath;
pub mod exclude;
pub mod manifest;

mod backup;
mod restore;

pub use backup::{backup_tree, TreeBackupOptions, TreeBackupReport};
pub use exclude::{ExcludeError, ExcludeSet};
pub use manifest::{EntryPayload, ManifestEntry, TreeManifest};
pub use restore::{restore_tree, TreeRestoreOptions, TreeRestoreReport, TMP_SUFFIX};

/// One entry that a backup or restore could not process. The operation
/// continues past it; callers surface the list and exit non-zero.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SkippedEntry {
    /// The entry's apath (or a best-effort description when the name itself
    /// was the problem).
    pub apath: String,
    /// Why the entry was skipped.
    pub reason: String,
}

impl fmt::Display for SkippedEntry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}: {}", self.apath, self.reason)
    }
}

/// Errors from tree backup and restore.
///
/// Per-entry problems are *not* errors — they land in the reports'
/// `skipped` lists. A `TreeError` means the operation as a whole could not
/// proceed.
#[derive(Debug)]
#[non_exhaustive]
pub enum TreeError {
    /// The tree root itself could not be read.
    Walk(PathBuf, String),
    /// The backup root is not a directory.
    NotADirectory(PathBuf),
    /// The underlying pipeline rejected the operation.
    System(HiDeStoreError),
    /// The version exists but does not carry the tree stream magic.
    NotATreeBackup(VersionId),
    /// The stream carries the magic but its manifest is malformed.
    Corrupt(String),
    /// The requested `--subtree` apath is not in the manifest.
    SubtreeNotFound(String),
    /// The restore destination root could not be created.
    Dest(PathBuf, String),
}

impl fmt::Display for TreeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TreeError::Walk(path, e) => {
                write!(f, "cannot read tree root {}: {e}", path.display())
            }
            TreeError::NotADirectory(path) => {
                write!(f, "{} is not a directory", path.display())
            }
            TreeError::System(e) => write!(f, "{e}"),
            TreeError::NotATreeBackup(v) => {
                write!(f, "version {v} is not a tree backup")
            }
            TreeError::Corrupt(detail) => write!(f, "corrupt tree manifest: {detail}"),
            TreeError::SubtreeNotFound(apath) => {
                write!(f, "subtree {apath:?} is not in this backup")
            }
            TreeError::Dest(path, e) => {
                write!(f, "cannot create destination {}: {e}", path.display())
            }
        }
    }
}

impl std::error::Error for TreeError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            TreeError::System(e) => Some(e),
            _ => None,
        }
    }
}

impl From<HiDeStoreError> for TreeError {
    fn from(e: HiDeStoreError) -> Self {
        TreeError::System(e)
    }
}
