//! The tree manifest: the versioned, fsck-auditable record of one tree
//! backup.
//!
//! A tree backup is stored as one ordinary version stream, so it rides the
//! existing recipe machinery unchanged — chunked, deduplicated, journaled,
//! and audited exactly like a byte-stream backup:
//!
//! ```text
//! "HDST" | manifest_len: u32 LE | manifest bytes | file contents …
//! ```
//!
//! The manifest (magic `HDSM`) lists every entry in apath order. File
//! entries carry `(offset, size)` into the *content region* (the bytes
//! after the manifest), which is the concatenation of all file bodies in
//! apath order. A restore therefore reads the stream prefix to get the
//! manifest, then maps any subset of files onto byte ranges — and via the
//! recipe's restore plan onto the exact containers holding them.

use std::fmt;

use crate::apath;

/// Magic prefix of a tree-backup version stream.
pub const STREAM_MAGIC: [u8; 4] = *b"HDST";

/// Magic prefix of an encoded manifest.
pub const MANIFEST_MAGIC: [u8; 4] = *b"HDSM";

/// Length of the stream header (magic + manifest length).
pub const STREAM_HEADER_LEN: u64 = 8;

/// Manifest format version written by this crate.
const FORMAT_VERSION: u32 = 1;

/// The kind-specific payload of a manifest entry.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EntryPayload {
    /// A directory (possibly empty — empty directories are preserved).
    Dir,
    /// A regular file occupying `[offset, offset + size)` of the content
    /// region.
    File {
        /// Byte offset in the content region.
        offset: u64,
        /// Byte length.
        size: u64,
    },
    /// A symlink and its verbatim (possibly dangling) target.
    Symlink {
        /// The link target, byte-for-byte as read.
        target: String,
    },
}

/// One entry of a tree manifest.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ManifestEntry {
    /// The entry's apath (see [`crate::apath`]).
    pub apath: String,
    /// Unix permission bits (not meaningful for symlinks).
    pub mode: u32,
    /// Mtime whole seconds since the epoch.
    pub mtime_secs: i64,
    /// Mtime subsecond nanoseconds.
    pub mtime_nanos: u32,
    /// Kind-specific payload.
    pub payload: EntryPayload,
}

impl ManifestEntry {
    /// Single-byte kind tag used on the wire.
    fn kind_tag(&self) -> u8 {
        match self.payload {
            EntryPayload::Dir => 0,
            EntryPayload::File { .. } => 1,
            EntryPayload::Symlink { .. } => 2,
        }
    }
}

/// A decoded (or to-be-encoded) tree manifest.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct TreeManifest {
    /// Entries in apath order, root first.
    pub entries: Vec<ManifestEntry>,
}

/// Why a manifest failed to decode.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ManifestError(pub String);

impl fmt::Display for ManifestError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "corrupt tree manifest: {}", self.0)
    }
}

impl std::error::Error for ManifestError {}

impl TreeManifest {
    /// Total length of the content region (end of the furthest file).
    #[must_use]
    pub fn content_len(&self) -> u64 {
        self.entries
            .iter()
            .filter_map(|e| match e.payload {
                EntryPayload::File { offset, size } => Some(offset + size),
                _ => None,
            })
            .max()
            .unwrap_or(0)
    }

    /// Encodes the manifest body (magic, version, count, entries).
    #[must_use]
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(16 + self.entries.len() * 48);
        out.extend_from_slice(&MANIFEST_MAGIC);
        out.extend_from_slice(&FORMAT_VERSION.to_le_bytes());
        out.extend_from_slice(&(self.entries.len() as u32).to_le_bytes());
        for e in &self.entries {
            out.push(e.kind_tag());
            out.extend_from_slice(&(e.apath.len() as u16).to_le_bytes());
            out.extend_from_slice(e.apath.as_bytes());
            out.extend_from_slice(&e.mode.to_le_bytes());
            out.extend_from_slice(&e.mtime_secs.to_le_bytes());
            out.extend_from_slice(&e.mtime_nanos.to_le_bytes());
            match &e.payload {
                EntryPayload::Dir => {}
                EntryPayload::File { offset, size } => {
                    out.extend_from_slice(&offset.to_le_bytes());
                    out.extend_from_slice(&size.to_le_bytes());
                }
                EntryPayload::Symlink { target } => {
                    out.extend_from_slice(&(target.len() as u16).to_le_bytes());
                    out.extend_from_slice(target.as_bytes());
                }
            }
        }
        out
    }

    /// Builds the full version stream: header, manifest, content region.
    #[must_use]
    pub fn encode_stream(&self, contents: &[u8]) -> Vec<u8> {
        let body = self.encode();
        let mut out = Vec::with_capacity(8 + body.len() + contents.len());
        out.extend_from_slice(&STREAM_MAGIC);
        out.extend_from_slice(&(body.len() as u32).to_le_bytes());
        out.extend_from_slice(&body);
        out.extend_from_slice(contents);
        out
    }

    /// Decodes and validates a manifest body.
    ///
    /// Validation: magic and format version, bounded lengths, valid apaths
    /// in strictly increasing walk order (root first), valid UTF-8
    /// throughout, and monotone non-overlapping file extents.
    ///
    /// # Errors
    ///
    /// [`ManifestError`] describing the first violation.
    pub fn decode(bytes: &[u8]) -> Result<Self, ManifestError> {
        let mut r = Reader { bytes, at: 0 };
        if r.take(4)? != MANIFEST_MAGIC {
            return Err(ManifestError("bad magic".into()));
        }
        let version = r.u32()?;
        if version != FORMAT_VERSION {
            return Err(ManifestError(format!("unknown format version {version}")));
        }
        let count = r.u32()? as usize;
        let mut entries = Vec::with_capacity(count.min(1 << 16));
        let mut next_offset = 0u64;
        for i in 0..count {
            let tag = r.u8()?;
            let apath_len = r.u16()? as usize;
            let apath = std::str::from_utf8(r.take(apath_len)?)
                .map_err(|_| ManifestError(format!("entry {i}: apath is not UTF-8")))?
                .to_string();
            if !apath::valid(&apath) {
                return Err(ManifestError(format!("entry {i}: invalid apath {apath:?}")));
            }
            let mode = r.u32()?;
            let mtime_secs = r.i64()?;
            let mtime_nanos = r.u32()?;
            if mtime_nanos >= 1_000_000_000 {
                return Err(ManifestError(format!(
                    "entry {i} ({apath}): mtime nanos {mtime_nanos} out of range"
                )));
            }
            let payload = match tag {
                0 => EntryPayload::Dir,
                1 => {
                    let offset = r.u64()?;
                    let size = r.u64()?;
                    if offset != next_offset {
                        return Err(ManifestError(format!(
                            "entry {i} ({apath}): file extent starts at {offset}, \
                             expected contiguous {next_offset}"
                        )));
                    }
                    next_offset = offset
                        .checked_add(size)
                        .ok_or_else(|| ManifestError(format!("entry {i}: extent overflow")))?;
                    EntryPayload::File { offset, size }
                }
                2 => {
                    let target_len = r.u16()? as usize;
                    let target = std::str::from_utf8(r.take(target_len)?)
                        .map_err(|_| {
                            ManifestError(format!("entry {i} ({apath}): target is not UTF-8"))
                        })?
                        .to_string();
                    if target.is_empty() {
                        return Err(ManifestError(format!("entry {i} ({apath}): empty target")));
                    }
                    EntryPayload::Symlink { target }
                }
                other => {
                    return Err(ManifestError(format!("entry {i}: unknown kind {other}")));
                }
            };
            entries.push(ManifestEntry {
                apath,
                mode,
                mtime_secs,
                mtime_nanos,
                payload,
            });
        }
        if r.at != bytes.len() {
            return Err(ManifestError(format!(
                "{} trailing bytes after {} entries",
                bytes.len() - r.at,
                count
            )));
        }
        // Ordering: root first, then strictly increasing walk order.
        if let Some(first) = entries.first() {
            if first.apath != apath::ROOT {
                return Err(ManifestError(format!(
                    "first entry is {:?}, expected the root",
                    first.apath
                )));
            }
        }
        for pair in entries.windows(2) {
            if apath::cmp(&pair[0].apath, &pair[1].apath) != std::cmp::Ordering::Less {
                return Err(ManifestError(format!(
                    "entries out of walk order: {:?} then {:?}",
                    pair[0].apath, pair[1].apath
                )));
            }
        }
        Ok(TreeManifest { entries })
    }
}

/// Parses the 8-byte stream header, returning the manifest length.
///
/// # Errors
///
/// [`ManifestError`] if the magic is absent (not a tree backup) or the
/// header is truncated.
pub fn decode_stream_header(bytes: &[u8]) -> Result<u32, ManifestError> {
    if bytes.len() < STREAM_HEADER_LEN as usize {
        return Err(ManifestError(format!(
            "stream header truncated at {} bytes",
            bytes.len()
        )));
    }
    if bytes[..4] != STREAM_MAGIC {
        return Err(ManifestError("stream magic absent".into()));
    }
    Ok(u32::from_le_bytes([bytes[4], bytes[5], bytes[6], bytes[7]]))
}

/// Whether a stream prefix carries the tree-backup magic.
#[must_use]
pub fn is_tree_stream(prefix: &[u8]) -> bool {
    prefix.len() >= 4 && prefix[..4] == STREAM_MAGIC
}

/// Bounded little-endian reader over the manifest body.
struct Reader<'a> {
    bytes: &'a [u8],
    at: usize,
}

impl<'a> Reader<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], ManifestError> {
        let end = self
            .at
            .checked_add(n)
            .filter(|&e| e <= self.bytes.len())
            .ok_or_else(|| ManifestError(format!("truncated at byte {}", self.at)))?;
        let s = &self.bytes[self.at..end];
        self.at = end;
        Ok(s)
    }

    fn u8(&mut self) -> Result<u8, ManifestError> {
        Ok(self.take(1)?[0])
    }

    fn u16(&mut self) -> Result<u16, ManifestError> {
        Ok(u16::from_le_bytes(
            self.take(2)?.try_into().unwrap_or([0; 2]),
        ))
    }

    fn u32(&mut self) -> Result<u32, ManifestError> {
        Ok(u32::from_le_bytes(
            self.take(4)?.try_into().unwrap_or([0; 4]),
        ))
    }

    fn u64(&mut self) -> Result<u64, ManifestError> {
        Ok(u64::from_le_bytes(
            self.take(8)?.try_into().unwrap_or([0; 8]),
        ))
    }

    fn i64(&mut self) -> Result<i64, ManifestError> {
        Ok(i64::from_le_bytes(
            self.take(8)?.try_into().unwrap_or([0; 8]),
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(apath: &str, payload: EntryPayload) -> ManifestEntry {
        ManifestEntry {
            apath: apath.to_string(),
            mode: 0o644,
            mtime_secs: 1_700_000_000,
            mtime_nanos: 123,
            payload,
        }
    }

    fn sample() -> TreeManifest {
        TreeManifest {
            entries: vec![
                entry("/", EntryPayload::Dir),
                entry("/a", EntryPayload::Dir),
                entry(
                    "/a/f",
                    EntryPayload::File {
                        offset: 0,
                        size: 10,
                    },
                ),
                entry(
                    "/a/l",
                    EntryPayload::Symlink {
                        target: "f".to_string(),
                    },
                ),
                entry(
                    "/b",
                    EntryPayload::File {
                        offset: 10,
                        size: 0,
                    },
                ),
            ],
        }
    }

    #[test]
    fn encode_decode_round_trip() {
        let m = sample();
        let decoded = TreeManifest::decode(&m.encode()).unwrap();
        assert_eq!(decoded, m);
        assert_eq!(decoded.content_len(), 10);
    }

    #[test]
    fn stream_framing_round_trips() {
        let m = sample();
        let stream = m.encode_stream(b"0123456789");
        assert!(is_tree_stream(&stream));
        let len = decode_stream_header(&stream).unwrap() as usize;
        let decoded = TreeManifest::decode(&stream[8..8 + len]).unwrap();
        assert_eq!(decoded, m);
        assert_eq!(&stream[8 + len..], b"0123456789");
    }

    #[test]
    fn decode_rejects_disorder_and_damage() {
        let mut m = sample();
        m.entries.swap(1, 4);
        assert!(TreeManifest::decode(&m.encode()).is_err());

        let good = sample().encode();
        assert!(TreeManifest::decode(&good[..good.len() - 1]).is_err());
        let mut bad_magic = good.clone();
        bad_magic[0] = b'X';
        assert!(TreeManifest::decode(&bad_magic).is_err());
        let mut trailing = good;
        trailing.push(0);
        assert!(TreeManifest::decode(&trailing).is_err());
    }

    #[test]
    fn decode_rejects_non_contiguous_extents() {
        let m = TreeManifest {
            entries: vec![
                entry("/", EntryPayload::Dir),
                entry("/f", EntryPayload::File { offset: 5, size: 1 }),
            ],
        };
        assert!(TreeManifest::decode(&m.encode()).is_err());
    }

    #[test]
    fn non_tree_streams_are_recognized() {
        assert!(!is_tree_stream(b"not"));
        assert!(!is_tree_stream(b"ABCD1234"));
        assert!(decode_stream_header(b"ABCD1234").is_err());
    }
}
