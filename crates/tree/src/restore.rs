//! Tree restore: full-tree and subtree-selective, planned from the
//! manifest so partial restores read only the containers they need.

use std::io::Write;
use std::path::{Path, PathBuf};

use hidestore_core::HiDeStore;
use hidestore_failpoint::Vfs;
use hidestore_restore::{Faa, RestoreConcurrency, RestoreEntry};
use hidestore_storage::{ContainerStore, VersionId};

use crate::manifest::{
    decode_stream_header, EntryPayload, TreeManifest, STREAM_HEADER_LEN, STREAM_MAGIC,
};
use crate::{apath, SkippedEntry, TreeError};

/// Suffix of the per-file staging name: every file is written to
/// `<name>.hds-tmp` and renamed into place only when complete, so a crashed
/// restore never leaves a truncated file under a final name.
pub const TMP_SUFFIX: &str = ".hds-tmp";

/// Options for [`restore_tree`].
#[derive(Debug, Clone)]
pub struct TreeRestoreOptions {
    /// Restore only this apath (a directory subtree, single file, or
    /// symlink) instead of the whole tree. The subtree root lands directly
    /// at the destination.
    pub subtree: Option<String>,
    /// Restore-engine concurrency for the container fetches.
    pub conc: RestoreConcurrency,
    /// Budget of the container cache shared across all per-file fetches.
    pub cache_bytes: usize,
}

impl Default for TreeRestoreOptions {
    fn default() -> Self {
        TreeRestoreOptions {
            subtree: None,
            conc: RestoreConcurrency::serial(),
            cache_bytes: 32 << 20,
        }
    }
}

/// The outcome of one tree restore.
#[derive(Debug, Clone, Default)]
pub struct TreeRestoreReport {
    /// Regular files restored (content, permission bits, mtime).
    pub files: u64,
    /// Directories restored.
    pub dirs: u64,
    /// Symlinks recreated.
    pub symlinks: u64,
    /// File-content bytes written to the destination.
    pub bytes_restored: u64,
    /// Container reads performed across every fetch — the partiality
    /// metric: a subtree restore's count is proportional to the data it
    /// needed, not to the whole backup.
    pub container_reads: u64,
    /// Entries that could not be restored (undecodable content, destination
    /// I/O failure, metadata reapplication failure): logged here and
    /// reported by the CLI as a non-zero exit — never an abort.
    pub skipped: Vec<SkippedEntry>,
}

impl TreeRestoreReport {
    /// Whether every selected entry was restored with its metadata.
    #[must_use]
    pub fn is_complete(&self) -> bool {
        self.skipped.is_empty()
    }
}

/// Restores `version` (a tree backup made by [`crate::backup_tree`]) under
/// the `dest` directory.
///
/// The restore plans from the manifest: it fetches the stream header and
/// manifest first, selects the requested entries, and then reads *only* the
/// byte ranges — and therefore only the containers — those entries need.
/// Every file is staged to `<name>.hds-tmp` and renamed into place, then
/// its permission bits and mtime are reapplied; directory metadata is
/// applied children-first after all content lands, so a parent's mtime is
/// not clobbered by writes beneath it.
///
/// Per-entry resilience: an entry whose chunks cannot be decoded or whose
/// destination write fails is recorded in [`TreeRestoreReport::skipped`]
/// and the restore continues with the next entry.
///
/// # Errors
///
/// [`TreeError`] when the version does not exist or is not a tree backup,
/// the manifest is corrupt, the requested subtree is absent, or the
/// destination root cannot be created. Individual entry failures are *not*
/// errors; see [`TreeRestoreReport::skipped`].
pub fn restore_tree<S, V>(
    system: &mut HiDeStore<S>,
    vfs: &V,
    version: VersionId,
    dest: &Path,
    options: &TreeRestoreOptions,
) -> Result<TreeRestoreReport, TreeError>
where
    S: ContainerStore + Send,
    V: Vfs,
{
    let plan = system.restore_plan(version).map_err(TreeError::System)?;
    // Prefix sums: chunk i covers stream bytes [offsets[i], offsets[i+1]).
    let mut offsets: Vec<u64> = Vec::with_capacity(plan.len() + 1);
    let mut total = 0u64;
    offsets.push(0);
    for e in &plan {
        total += e.size as u64;
        offsets.push(total);
    }
    if total < STREAM_HEADER_LEN {
        return Err(TreeError::NotATreeBackup(version));
    }

    let mut fetcher = RangeFetcher {
        plan,
        offsets,
        total,
        cache: Faa::new(options.cache_bytes.max(1 << 16)),
        conc: options.conc,
        container_reads: 0,
    };

    let header = fetcher.fetch(system, 0, STREAM_HEADER_LEN)?;
    if header[..4] != STREAM_MAGIC {
        return Err(TreeError::NotATreeBackup(version));
    }
    let manifest_len =
        decode_stream_header(&header).map_err(|e| TreeError::Corrupt(e.to_string()))? as u64;
    if STREAM_HEADER_LEN + manifest_len > total {
        return Err(TreeError::Corrupt(format!(
            "manifest length {manifest_len} exceeds stream of {total} bytes"
        )));
    }
    let manifest_bytes = fetcher.fetch(system, STREAM_HEADER_LEN, manifest_len)?;
    let manifest =
        TreeManifest::decode(&manifest_bytes).map_err(|e| TreeError::Corrupt(e.to_string()))?;
    let content_base = STREAM_HEADER_LEN + manifest_len;
    let content_len = total - content_base;

    // Selection: the whole tree, or the subtree rooted at the given apath.
    let subtree = match &options.subtree {
        None => apath::ROOT.to_string(),
        Some(s) => {
            if !apath::valid(s) {
                return Err(TreeError::SubtreeNotFound(s.clone()));
            }
            if !manifest.entries.iter().any(|e| e.apath == *s) {
                return Err(TreeError::SubtreeNotFound(s.clone()));
            }
            s.clone()
        }
    };
    let selected: Vec<&crate::manifest::ManifestEntry> = manifest
        .entries
        .iter()
        .filter(|e| apath::is_or_under(&e.apath, &subtree))
        .collect();

    // Destination root: a directory for tree/subtree roots, the parent for
    // a single-file or single-symlink selection.
    let root_is_dir = selected
        .first()
        .is_some_and(|e| matches!(e.payload, EntryPayload::Dir));
    let dest_err = |e: std::io::Error| TreeError::Dest(dest.to_path_buf(), e.to_string());
    if root_is_dir {
        vfs.create_dir_all(dest).map_err(dest_err)?;
    } else if let Some(parent) = dest.parent() {
        if !parent.as_os_str().is_empty() {
            vfs.create_dir_all(parent).map_err(dest_err)?;
        }
    }

    let mut report = TreeRestoreReport::default();
    // Directories whose metadata is applied once everything beneath them
    // has landed (deepest entries last in walk order, so reverse order is
    // children-first).
    let mut dir_meta: Vec<(PathBuf, u32, i64, u32)> = Vec::new();

    for entry in &selected {
        let rel = apath::strip_prefix(&entry.apath, &subtree);
        let path = dest_path(dest, rel);
        match &entry.payload {
            EntryPayload::Dir => {
                if let Err(e) = vfs.create_dir_all(&path) {
                    report.skipped.push(SkippedEntry {
                        apath: entry.apath.clone(),
                        reason: format!("cannot create directory: {e}"),
                    });
                    continue;
                }
                report.dirs += 1;
                dir_meta.push((path, entry.mode, entry.mtime_secs, entry.mtime_nanos));
            }
            EntryPayload::File { offset, size } => {
                if offset + size > content_len {
                    report.skipped.push(SkippedEntry {
                        apath: entry.apath.clone(),
                        reason: format!(
                            "dangling content range {offset}+{size} beyond {content_len}"
                        ),
                    });
                    continue;
                }
                let bytes = if *size == 0 {
                    Vec::new()
                } else {
                    match fetcher.fetch(system, content_base + offset, *size) {
                        Ok(b) => b,
                        Err(e) => {
                            report.skipped.push(SkippedEntry {
                                apath: entry.apath.clone(),
                                reason: format!("content unrestorable: {e}"),
                            });
                            continue;
                        }
                    }
                };
                match place_file(
                    vfs,
                    &path,
                    &bytes,
                    entry.mode,
                    entry.mtime_secs,
                    entry.mtime_nanos,
                ) {
                    Ok(()) => {
                        report.files += 1;
                        report.bytes_restored += bytes.len() as u64;
                    }
                    Err(e) => {
                        report.skipped.push(SkippedEntry {
                            apath: entry.apath.clone(),
                            reason: format!("cannot write: {e}"),
                        });
                    }
                }
            }
            EntryPayload::Symlink { target } => {
                // Replace any stale entry so re-restores are idempotent.
                if vfs.exists(&path) || vfs.read_link(&path).is_ok() {
                    let _ = vfs.remove_file(&path);
                }
                match vfs.symlink(Path::new(target), &path) {
                    Ok(()) => report.symlinks += 1,
                    Err(e) => {
                        report.skipped.push(SkippedEntry {
                            apath: entry.apath.clone(),
                            reason: format!("cannot create symlink: {e}"),
                        });
                    }
                }
            }
        }
    }

    // Metadata for directories, children-first.
    for (path, mode, secs, nanos) in dir_meta.into_iter().rev() {
        if let Err(e) = vfs
            .set_mode(&path, mode)
            .and_then(|()| vfs.set_mtime(&path, secs, nanos))
        {
            report.skipped.push(SkippedEntry {
                apath: format!("{}", path.display()),
                reason: format!("directory metadata: {e}"),
            });
        }
    }

    report.container_reads = fetcher.container_reads;
    Ok(report)
}

/// Maps a destination-relative apath onto a filesystem path under `dest`.
fn dest_path(dest: &Path, rel: &str) -> PathBuf {
    let mut path = dest.to_path_buf();
    if rel != apath::ROOT {
        for component in rel.trim_start_matches('/').split('/') {
            path.push(component);
        }
    }
    path
}

/// Stages, publishes, and re-applies metadata for one file. Any failure
/// cleans up the staging file.
fn place_file<V: Vfs>(
    vfs: &V,
    path: &Path,
    bytes: &[u8],
    mode: u32,
    mtime_secs: i64,
    mtime_nanos: u32,
) -> std::io::Result<()> {
    let mut name = path
        .file_name()
        .map(|n| n.to_os_string())
        .unwrap_or_default();
    name.push(TMP_SUFFIX);
    let tmp = path.with_file_name(name);
    let result = (|| {
        vfs.write(&tmp, bytes)?;
        vfs.sync_file(&tmp)?;
        vfs.rename(&tmp, path)?;
        vfs.set_mode(path, mode)?;
        vfs.set_mtime(path, mtime_secs, mtime_nanos)
    })();
    if result.is_err() {
        let _ = vfs.remove_file(&tmp);
    }
    result
}

/// Fetches arbitrary byte ranges of the version stream by restoring only
/// the chunk entries that cover them, through one shared container cache.
struct RangeFetcher {
    plan: Vec<RestoreEntry>,
    /// `plan.len() + 1` prefix sums of chunk sizes.
    offsets: Vec<u64>,
    total: u64,
    cache: Faa,
    conc: RestoreConcurrency,
    container_reads: u64,
}

impl RangeFetcher {
    /// Restores stream bytes `[start, start + len)`.
    fn fetch<S: ContainerStore + Send>(
        &mut self,
        system: &mut HiDeStore<S>,
        start: u64,
        len: u64,
    ) -> Result<Vec<u8>, TreeError> {
        if len == 0 {
            return Ok(Vec::new());
        }
        let end = start + len;
        debug_assert!(end <= self.total);
        // First chunk whose range contains `start`; one past the last chunk
        // overlapping `end`.
        let first = self.offsets.partition_point(|&o| o <= start) - 1;
        let last = self.offsets.partition_point(|&o| o < end);
        let entries = &self.plan[first..last];
        let mut sink = SkipTake {
            skip: start - self.offsets[first],
            want: len,
            buf: Vec::with_capacity(len as usize),
        };
        let report = system
            .restore_entries(entries, &mut self.cache, &mut sink, &self.conc)
            .map_err(TreeError::System)?;
        self.container_reads += report.container_reads;
        if sink.buf.len() as u64 != len {
            return Err(TreeError::Corrupt(format!(
                "range fetch returned {} bytes, wanted {len}",
                sink.buf.len()
            )));
        }
        Ok(sink.buf)
    }
}

/// A writer that discards a leading `skip` bytes, captures `want` bytes,
/// and ignores the tail of the final chunk.
struct SkipTake {
    skip: u64,
    want: u64,
    buf: Vec<u8>,
}

impl Write for SkipTake {
    fn write(&mut self, data: &[u8]) -> std::io::Result<usize> {
        let len = data.len();
        let mut data = data;
        if self.skip > 0 {
            let drop = (self.skip).min(data.len() as u64) as usize;
            data = &data[drop..];
            self.skip -= drop as u64;
        }
        let have = self.buf.len() as u64;
        if have < self.want {
            let take = ((self.want - have) as usize).min(data.len());
            self.buf.extend_from_slice(&data[..take]);
        }
        Ok(len)
    }

    fn flush(&mut self) -> std::io::Result<()> {
        Ok(())
    }
}
