#![forbid(unsafe_code)]
#![warn(missing_docs)]

//! Versioned backup-workload generators.
//!
//! The paper evaluates on four datasets (Table 1): `kernel` and `gcc`
//! (successive source releases of real software), and `fslhomes` and `macos`
//! (user snapshot traces). Those datasets total multiple terabytes and two of
//! them are not public, so this reproduction substitutes **deterministic
//! synthetic version streams** with matched *chunk-level statistics*: every
//! effect the paper measures (deduplication ratio, inter-version redundancy
//! decay of Figure 3, fragmentation growth, restore locality) depends only on
//! which chunks recur across versions and in what order — which the
//! generators reproduce — not on the actual bytes. See DESIGN.md for the
//! substitution rationale.
//!
//! A dataset is modelled as a file tree evolving version to version:
//!
//! * a fraction of files receives byte-level edits (overwrites, insertions,
//!   deletions — insertions/deletions shift content and exercise CDC);
//! * some files are added, some removed;
//! * optionally, *flapping* files disappear for one version and return — the
//!   macos pattern of Figure 3d that motivates HiDeStore's depth-2 cache;
//! * optionally, periodic *major upgrades* touch many files at once (the
//!   "large upgrades" the paper notes between some versions).
//!
//! # Examples
//!
//! ```
//! use hidestore_workloads::{Profile, VersionStream};
//!
//! let spec = Profile::Kernel.spec().scaled(1_000_000, 5);
//! let mut stream = VersionStream::new(spec, 42);
//! let v1 = stream.next_version();
//! let v2 = stream.next_version();
//! assert!(!v1.is_empty());
//! // Successive versions are highly similar but not identical.
//! assert_ne!(v1, v2);
//! ```

mod materialize;
mod trace;

pub use materialize::materialize;
pub use trace::{TraceChunk, TraceSpec, TraceStream};

use std::collections::BTreeMap;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// The workload profiles of the paper: the four Table 1 datasets plus the
/// two extra software-release workloads §3 mentions ("we have the similar
/// observations on other workloads (e.g., gdb, cmake)").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Profile {
    /// Linux kernel source releases: many files, small incremental diffs,
    /// very high redundancy (paper: 91.53% dedup over 158 versions).
    Kernel,
    /// gcc releases: larger per-release churn (paper: 78.75%).
    Gcc,
    /// User home-directory snapshots: high redundancy, file adds/deletes
    /// (paper: 92.17%).
    Fslhomes,
    /// macOS server snapshots: moderate redundancy plus the skip-a-version
    /// file pattern of Figure 3d (paper: 89.56%).
    Macos,
    /// gdb releases: kernel-like incremental evolution, slightly fewer,
    /// larger files.
    Gdb,
    /// cmake releases: small tree with moderate churn and steady growth.
    Cmake,
}

impl Profile {
    /// The four Table 1 datasets, in the paper's order.
    pub const ALL: [Profile; 4] = [
        Profile::Kernel,
        Profile::Gcc,
        Profile::Fslhomes,
        Profile::Macos,
    ];

    /// Every profile, including the §3 extras (gdb, cmake).
    pub const EXTENDED: [Profile; 6] = [
        Profile::Kernel,
        Profile::Gcc,
        Profile::Fslhomes,
        Profile::Macos,
        Profile::Gdb,
        Profile::Cmake,
    ];

    /// The generator specification for this profile at its default scaled
    /// size (tens of MB instead of the paper's GB/TB; scale further with
    /// [`WorkloadSpec::scaled`]).
    pub fn spec(self) -> WorkloadSpec {
        match self {
            Profile::Kernel => WorkloadSpec {
                name: "kernel",
                initial_bytes: 16 << 20,
                versions: 20,
                files: 256,
                modify_file_fraction: 0.12,
                modify_span_fraction: 0.15,
                add_fraction: 0.004,
                delete_fraction: 0.002,
                flap_fraction: 0.0,
                major_every: 0,
                major_file_fraction: 0.0,
            },
            Profile::Gcc => WorkloadSpec {
                name: "gcc",
                initial_bytes: 16 << 20,
                versions: 20,
                files: 256,
                modify_file_fraction: 0.45,
                modify_span_fraction: 0.35,
                add_fraction: 0.02,
                delete_fraction: 0.01,
                flap_fraction: 0.0,
                major_every: 6,
                major_file_fraction: 0.7,
            },
            Profile::Fslhomes => WorkloadSpec {
                name: "fslhomes",
                initial_bytes: 16 << 20,
                versions: 20,
                files: 192,
                modify_file_fraction: 0.10,
                modify_span_fraction: 0.20,
                add_fraction: 0.01,
                delete_fraction: 0.008,
                flap_fraction: 0.0,
                major_every: 0,
                major_file_fraction: 0.0,
            },
            Profile::Macos => WorkloadSpec {
                name: "macos",
                initial_bytes: 16 << 20,
                versions: 20,
                files: 224,
                modify_file_fraction: 0.18,
                modify_span_fraction: 0.25,
                add_fraction: 0.01,
                delete_fraction: 0.006,
                flap_fraction: 0.10,
                major_every: 8,
                major_file_fraction: 0.5,
            },
            Profile::Gdb => WorkloadSpec {
                name: "gdb",
                initial_bytes: 16 << 20,
                versions: 20,
                files: 160,
                modify_file_fraction: 0.15,
                modify_span_fraction: 0.18,
                add_fraction: 0.006,
                delete_fraction: 0.003,
                flap_fraction: 0.0,
                major_every: 0,
                major_file_fraction: 0.0,
            },
            Profile::Cmake => WorkloadSpec {
                name: "cmake",
                initial_bytes: 16 << 20,
                versions: 20,
                files: 128,
                modify_file_fraction: 0.25,
                modify_span_fraction: 0.22,
                add_fraction: 0.015,
                delete_fraction: 0.005,
                flap_fraction: 0.0,
                major_every: 10,
                major_file_fraction: 0.6,
            },
        }
    }
}

impl std::fmt::Display for Profile {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.spec().name)
    }
}

/// Tunable generator specification (see [`Profile::spec`] for presets).
#[derive(Debug, Clone, Copy)]
pub struct WorkloadSpec {
    /// Short dataset name.
    pub name: &'static str,
    /// Total bytes of version 1.
    pub initial_bytes: usize,
    /// Default number of versions for experiments.
    pub versions: u32,
    /// Number of files composing the tree.
    pub files: usize,
    /// Fraction of files modified per version.
    pub modify_file_fraction: f64,
    /// Fraction of a modified file's bytes that change.
    pub modify_span_fraction: f64,
    /// New-file bytes per version, as a fraction of the tree size.
    pub add_fraction: f64,
    /// Files deleted per version, as a fraction of the file count.
    pub delete_fraction: f64,
    /// Fraction of files that *flap*: absent on odd versions, present on
    /// even ones (macos Figure 3d behaviour).
    pub flap_fraction: f64,
    /// Every `major_every`-th version is a major upgrade (0 = never).
    pub major_every: u32,
    /// Fraction of files modified in a major upgrade.
    pub major_file_fraction: f64,
}

impl WorkloadSpec {
    /// Returns the spec resized to roughly `bytes` of version-1 data and
    /// `versions` versions — used to scale experiments to the available
    /// time budget.
    pub fn scaled(mut self, bytes: usize, versions: u32) -> Self {
        assert!(bytes >= 4096, "workload must be at least a few chunks");
        assert!(versions >= 1, "at least one version");
        // Keep the file count (the behavioural knob) and shrink file sizes,
        // unless files would drop below ~1 KiB each.
        let mean_file = (bytes / self.files).max(1024);
        self.files = (bytes / mean_file).max(4);
        self.initial_bytes = bytes;
        self.versions = versions;
        self
    }
}

#[derive(Debug, Clone)]
struct FileState {
    content: Vec<u8>,
    /// Flapping files toggle presence by version parity.
    flapping: bool,
}

/// Deterministic stream of backup versions for one workload.
///
/// Call [`VersionStream::next_version`] repeatedly; each call returns the
/// full backup stream of the next version (files concatenated in a stable
/// order, the way an archiver would feed a backup appliance).
#[derive(Debug)]
pub struct VersionStream {
    spec: WorkloadSpec,
    rng: StdRng,
    files: BTreeMap<u64, FileState>,
    next_file_id: u64,
    version: u32,
}

impl VersionStream {
    /// Creates the stream; the same `(spec, seed)` pair always produces the
    /// same versions.
    pub fn new(spec: WorkloadSpec, seed: u64) -> Self {
        let mut stream = VersionStream {
            spec,
            rng: StdRng::seed_from_u64(seed ^ 0x5DEE_CE66_D153_1CE5),
            files: BTreeMap::new(),
            next_file_id: 0,
            version: 0,
        };
        stream.populate_initial();
        stream
    }

    /// The spec in force.
    pub fn spec(&self) -> &WorkloadSpec {
        &self.spec
    }

    /// Number of versions produced so far.
    pub fn version(&self) -> u32 {
        self.version
    }

    fn populate_initial(&mut self) {
        let mean = (self.spec.initial_bytes / self.spec.files).max(512);
        let mut remaining = self.spec.initial_bytes as i64;
        while remaining > 0 {
            // File sizes vary ±50% around the mean.
            let size = self
                .rng
                .gen_range(mean / 2..=mean * 3 / 2)
                .min(remaining as usize)
                .max(1);
            let content = self.random_bytes(size);
            let flapping = self.rng.gen_bool(self.spec.flap_fraction.clamp(0.0, 1.0));
            let id = self.next_file_id;
            self.next_file_id += 1;
            self.files.insert(id, FileState { content, flapping });
            remaining -= size as i64;
        }
    }

    fn random_bytes(&mut self, len: usize) -> Vec<u8> {
        let mut buf = vec![0u8; len];
        self.rng.fill(&mut buf[..]);
        buf
    }

    /// Produces the next backup version's stream.
    pub fn next_version(&mut self) -> Vec<u8> {
        self.next_version_with_manifest().0
    }

    /// Produces the next version's stream together with its file manifest:
    /// `(file_id, length)` pairs in serialization order, letting callers
    /// recover per-file boundaries (e.g. for file-grained comparisons).
    pub fn next_version_with_manifest(&mut self) -> (Vec<u8>, Vec<(u64, usize)>) {
        self.version += 1;
        if self.version > 1 {
            self.evolve();
        }
        // Serialize: files in stable id order; flapping files skip even
        // versions (so they are present, absent, present, … — Figure 3d).
        let mut out = Vec::new();
        let mut manifest = Vec::new();
        for (&id, file) in &self.files {
            if file.flapping && self.version.is_multiple_of(2) {
                continue;
            }
            manifest.push((id, file.content.len()));
            out.extend_from_slice(&file.content);
        }
        (out, manifest)
    }

    fn evolve(&mut self) {
        let is_major =
            self.spec.major_every != 0 && self.version.is_multiple_of(self.spec.major_every);
        let modify_fraction = if is_major {
            self.spec.major_file_fraction
        } else {
            self.spec.modify_file_fraction
        };
        let ids: Vec<u64> = self.files.keys().copied().collect();

        // Deletions.
        let deletions = ((ids.len() as f64) * self.spec.delete_fraction).round() as usize;
        for _ in 0..deletions {
            if self.files.len() <= 2 {
                break;
            }
            let victim = ids[self.rng.gen_range(0..ids.len())];
            self.files.remove(&victim);
        }

        // Modifications.
        let ids: Vec<u64> = self.files.keys().copied().collect();
        let modifications = ((ids.len() as f64) * modify_fraction).round() as usize;
        for _ in 0..modifications {
            let id = ids[self.rng.gen_range(0..ids.len())];
            // Pre-generate randomness to avoid borrowing `self` twice.
            let choice = self.rng.gen_range(0u8..10);
            let Some(len) = self.files.get(&id).map(|f| f.content.len()) else {
                continue;
            };
            if len < 16 {
                continue;
            }
            let span = ((len as f64) * self.spec.modify_span_fraction) as usize;
            let span = span.clamp(1, len / 2);
            let start = self.rng.gen_range(0..len - span);
            match choice {
                // 60%: in-place overwrite (no shift).
                0..=5 => {
                    let patch = self.random_bytes(span);
                    let Some(file) = self.files.get_mut(&id) else {
                        continue;
                    };
                    file.content[start..start + span].copy_from_slice(&patch);
                }
                // 20%: insertion (shifts the tail).
                6..=7 => {
                    let insert = self.random_bytes(span / 4 + 1);
                    let Some(file) = self.files.get_mut(&id) else {
                        continue;
                    };
                    let tail = file.content.split_off(start);
                    file.content.extend_from_slice(&insert);
                    file.content.extend_from_slice(&tail);
                }
                // 20%: deletion (shifts the tail).
                _ => {
                    let Some(file) = self.files.get_mut(&id) else {
                        continue;
                    };
                    file.content.drain(start..start + span / 4 + 1);
                }
            }
        }

        // Additions.
        let total: usize = self.files.values().map(|f| f.content.len()).sum();
        let add_bytes = ((total as f64) * self.spec.add_fraction) as usize;
        if add_bytes > 0 {
            let content = self.random_bytes(add_bytes);
            let flapping = self.rng.gen_bool(self.spec.flap_fraction.clamp(0.0, 1.0));
            let id = self.next_file_id;
            self.next_file_id += 1;
            self.files.insert(id, FileState { content, flapping });
        }
    }

    /// Generates all `spec.versions` versions at once.
    pub fn all_versions(mut self) -> Vec<Vec<u8>> {
        let n = self.spec.versions;
        (0..n).map(|_| self.next_version()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_across_instances() {
        let spec = Profile::Kernel.spec().scaled(300_000, 3);
        let a = VersionStream::new(spec, 7).all_versions();
        let b = VersionStream::new(spec, 7).all_versions();
        assert_eq!(a, b);
    }

    #[test]
    fn different_seeds_differ() {
        let spec = Profile::Kernel.spec().scaled(300_000, 2);
        let a = VersionStream::new(spec, 1).all_versions();
        let b = VersionStream::new(spec, 2).all_versions();
        assert_ne!(a, b);
    }

    #[test]
    fn initial_size_near_target() {
        for profile in Profile::ALL {
            let spec = profile.spec().scaled(1_000_000, 1);
            let v1 = VersionStream::new(spec, 3).next_version();
            // Flapping files are present in V1 (odd), so V1 ~ target.
            assert!(
                (800_000..1_400_000).contains(&v1.len()),
                "{profile}: {} bytes",
                v1.len()
            );
        }
    }

    /// Fraction of version-2 files byte-identical to their version-1 self.
    fn file_similarity(profile: Profile, seed: u64) -> f64 {
        let spec = profile.spec().scaled(1_000_000, 2);
        let mut s = VersionStream::new(spec, seed);
        let (v1, m1) = s.next_version_with_manifest();
        let (v2, m2) = s.next_version_with_manifest();
        let slice = |data: &[u8], manifest: &[(u64, usize)]| {
            let mut map = std::collections::HashMap::new();
            let mut pos = 0;
            for &(id, len) in manifest {
                map.insert(id, data[pos..pos + len].to_vec());
                pos += len;
            }
            map
        };
        let f1 = slice(&v1, &m1);
        let f2 = slice(&v2, &m2);
        let same = f2.iter().filter(|(id, c)| f1.get(id) == Some(c)).count();
        same as f64 / f2.len() as f64
    }

    #[test]
    fn successive_versions_share_most_content() {
        let similarity = file_similarity(Profile::Kernel, 5);
        assert!(similarity > 0.7, "only {similarity:.2} of files unchanged");
    }

    #[test]
    fn gcc_churns_more_than_kernel() {
        let kernel = file_similarity(Profile::Kernel, 9);
        let gcc = file_similarity(Profile::Gcc, 9);
        assert!(kernel > gcc, "kernel {kernel:.2} vs gcc {gcc:.2}");
    }

    #[test]
    fn macos_flapping_files_skip_even_versions() {
        let spec = Profile::Macos.spec().scaled(500_000, 4);
        let mut s = VersionStream::new(spec, 13);
        let v1 = s.next_version();
        let v2 = s.next_version();
        let v3 = s.next_version();
        // Flapping drops content on even versions: v2 smaller than v1/v3.
        assert!(v2.len() < v1.len(), "v2 {} vs v1 {}", v2.len(), v1.len());
        assert!(v2.len() < v3.len(), "v2 {} vs v3 {}", v2.len(), v3.len());
    }

    #[test]
    fn scaled_preserves_mean_file_size() {
        let base = Profile::Fslhomes.spec();
        let scaled = base.scaled(2_000_000, 5);
        assert_eq!(scaled.initial_bytes, 2_000_000);
        assert_eq!(scaled.versions, 5);
        assert!(scaled.files >= 4);
    }

    #[test]
    fn version_counter_tracks() {
        let spec = Profile::Kernel.spec().scaled(100_000, 3);
        let mut s = VersionStream::new(spec, 1);
        assert_eq!(s.version(), 0);
        s.next_version();
        s.next_version();
        assert_eq!(s.version(), 2);
    }

    #[test]
    fn display_names_match_table_1() {
        let names: Vec<String> = Profile::ALL.iter().map(|p| p.to_string()).collect();
        assert_eq!(names, vec!["kernel", "gcc", "fslhomes", "macos"]);
    }

    #[test]
    fn extended_profiles_generate_and_evolve() {
        for profile in [Profile::Gdb, Profile::Cmake] {
            let spec = profile.spec().scaled(500_000, 3);
            let versions = VersionStream::new(spec, 17).all_versions();
            assert_eq!(versions.len(), 3);
            assert_ne!(versions[0], versions[1], "{profile}");
        }
    }

    #[test]
    fn gdb_evolves_like_kernel_cmake_churns_more() {
        let gdb = file_similarity(Profile::Gdb, 9);
        let cmake = file_similarity(Profile::Cmake, 9);
        assert!(gdb > cmake, "gdb {gdb:.2} vs cmake {cmake:.2}");
    }
}
