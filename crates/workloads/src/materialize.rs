//! Materializing synthetic version streams as real on-disk trees.
//!
//! The generators in this crate model the paper's datasets (fslhomes,
//! macos, …) as abstract byte streams. [`materialize`] turns those streams
//! into actual directory trees — one directory per backup version, one file
//! per generated dataset file — so the tree backup path
//! (`hidestore-tree::backup_tree`) can be driven with the same workloads the
//! stream-level experiments use.

use std::io;
use std::path::{Path, PathBuf};

use hidestore_failpoint::Vfs;

use crate::VersionStream;

/// Writes the next `versions` versions of `stream` under `root` as real
/// trees: version *N* lands in `root/vNNNN/`, and each generated dataset
/// file becomes `fIIIIII` (stable across versions, so an evolving file
/// keeps its name and a deleted or flapping file disappears from later
/// version directories). Concatenating one directory's files in name order
/// reproduces exactly the bytes [`VersionStream::next_version`] would have
/// returned for that version.
///
/// Returns the per-version directories in generation order.
///
/// # Errors
///
/// Any I/O error from the [`Vfs`]. Directories already materialized are
/// left behind.
pub fn materialize<V: Vfs>(
    stream: &mut VersionStream,
    vfs: &V,
    root: &Path,
    versions: u32,
) -> io::Result<Vec<PathBuf>> {
    let mut dirs = Vec::with_capacity(versions as usize);
    for _ in 0..versions {
        let (bytes, manifest) = stream.next_version_with_manifest();
        let dir = root.join(format!("v{:04}", stream.version()));
        vfs.create_dir_all(&dir)?;
        let mut offset = 0usize;
        for (id, len) in manifest {
            vfs.write(&dir.join(format!("f{id:06}")), &bytes[offset..offset + len])?;
            offset += len;
        }
        dirs.push(dir);
    }
    Ok(dirs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Profile;
    use hidestore_failpoint::RealVfs;

    #[test]
    fn materialized_trees_reproduce_the_stream_bytes() {
        let spec = Profile::Fslhomes.spec().scaled(200_000, 3);
        let mut disk = VersionStream::new(spec, 7);
        let mut reference = VersionStream::new(spec, 7);

        let root = std::env::temp_dir().join(format!("hds-materialize-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&root);
        let vfs = RealVfs;
        let dirs = materialize(&mut disk, &vfs, &root, 3).unwrap();
        assert_eq!(dirs.len(), 3);

        for dir in &dirs {
            let expected = reference.next_version();
            // Name order == id order == serialization order.
            let mut concatenated = Vec::new();
            for file in vfs.read_dir(dir).unwrap() {
                concatenated.extend_from_slice(&vfs.read(&file).unwrap());
            }
            assert_eq!(concatenated, expected, "bytes differ in {}", dir.display());
        }
        let _ = std::fs::remove_dir_all(&root);
    }
}
