//! Chunk-trace generation: synthetic backup streams at the *fingerprint*
//! level, without materializing content.
//!
//! The paper's fslhomes and macos datasets are themselves chunk **traces**
//! (fingerprint + size sequences collected by FSL), not raw data. Trace
//! streams let experiments run at the paper's version counts (100–175
//! versions) in seconds, because no bytes are generated, chunked, or hashed:
//! the evolution model operates directly on chunk identities. Pair with the
//! `backup_trace` entry points of the pipeline and HiDeStore.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// One traced chunk: a stable identity plus its size in bytes.
///
/// Identities are mapped to fingerprints by the consumer (e.g.
/// `Fingerprint::synthetic(chunk.id)`), keeping this crate free of hash
/// dependencies.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceChunk {
    /// Stable chunk identity: equal ids ⇔ duplicate chunks.
    pub id: u64,
    /// Chunk size in bytes.
    pub size: u32,
}

/// Configuration of a [`TraceStream`].
#[derive(Debug, Clone, Copy)]
pub struct TraceSpec {
    /// Chunks in the first version.
    pub initial_chunks: usize,
    /// Mean chunk size in bytes (sizes vary ±50%).
    pub mean_chunk_size: u32,
    /// Fraction of chunks replaced by fresh ones each version.
    pub churn: f64,
    /// Fraction of new chunks appended each version.
    pub growth: f64,
    /// Fraction of chunk runs that flap (absent on even versions) —
    /// the macos pattern.
    pub flap: f64,
}

impl Default for TraceSpec {
    fn default() -> Self {
        TraceSpec {
            initial_chunks: 4096,
            mean_chunk_size: 4096,
            churn: 0.03,
            growth: 0.005,
            flap: 0.0,
        }
    }
}

/// Deterministic generator of per-version chunk traces.
///
/// # Examples
///
/// ```
/// use hidestore_workloads::{TraceSpec, TraceStream};
///
/// let mut stream = TraceStream::new(TraceSpec::default(), 7);
/// let v1 = stream.next_version();
/// let v2 = stream.next_version();
/// let shared = v2.iter().filter(|c| v1.contains(c)).count();
/// assert!(shared * 10 > v2.len() * 8, "versions are highly redundant");
/// ```
#[derive(Debug)]
pub struct TraceStream {
    spec: TraceSpec,
    rng: StdRng,
    chunks: Vec<TraceChunk>,
    /// Indices of flapping chunks.
    flapping: Vec<bool>,
    next_id: u64,
    version: u32,
}

impl TraceStream {
    /// Creates the trace stream; deterministic per `(spec, seed)`.
    pub fn new(spec: TraceSpec, seed: u64) -> Self {
        let mut stream = TraceStream {
            spec,
            rng: StdRng::seed_from_u64(seed ^ 0x007A_CE57),
            chunks: Vec::new(),
            flapping: Vec::new(),
            next_id: 0,
            version: 0,
        };
        for _ in 0..spec.initial_chunks {
            stream.push_new_chunk();
        }
        stream
    }

    fn push_new_chunk(&mut self) {
        let mean = self.spec.mean_chunk_size;
        let size = self.rng.gen_range(mean / 2..=mean * 3 / 2);
        let flap = self.rng.gen_bool(self.spec.flap.clamp(0.0, 1.0));
        self.chunks.push(TraceChunk {
            id: self.next_id,
            size,
        });
        self.flapping.push(flap);
        self.next_id += 1;
    }

    /// Number of versions produced so far.
    pub fn version(&self) -> u32 {
        self.version
    }

    /// Produces the next version's chunk sequence.
    pub fn next_version(&mut self) -> Vec<TraceChunk> {
        self.version += 1;
        if self.version > 1 {
            // Churn: replace a fraction of chunks with fresh identities.
            let replacements = ((self.chunks.len() as f64) * self.spec.churn).round() as usize;
            for _ in 0..replacements {
                let i = self.rng.gen_range(0..self.chunks.len());
                let mean = self.spec.mean_chunk_size;
                let size = self.rng.gen_range(mean / 2..=mean * 3 / 2);
                self.chunks[i] = TraceChunk {
                    id: self.next_id,
                    size,
                };
                self.next_id += 1;
            }
            // Growth: append new chunks.
            let additions = ((self.chunks.len() as f64) * self.spec.growth).round() as usize;
            for _ in 0..additions {
                self.push_new_chunk();
            }
        }
        self.chunks
            .iter()
            .zip(&self.flapping)
            .filter(|&(_, &flap)| !(flap && self.version.is_multiple_of(2)))
            .map(|(&c, _)| c)
            .collect()
    }

    /// Generates `n` versions at once.
    pub fn versions(mut self, n: u32) -> Vec<Vec<TraceChunk>> {
        (0..n).map(|_| self.next_version()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic() {
        let a = TraceStream::new(TraceSpec::default(), 1).versions(5);
        let b = TraceStream::new(TraceSpec::default(), 1).versions(5);
        assert_eq!(a, b);
    }

    #[test]
    fn churn_rate_respected() {
        let spec = TraceSpec {
            churn: 0.10,
            growth: 0.0,
            ..TraceSpec::default()
        };
        let mut s = TraceStream::new(spec, 3);
        let v1 = s.next_version();
        let v2 = s.next_version();
        let v1_ids: std::collections::HashSet<u64> = v1.iter().map(|c| c.id).collect();
        let fresh = v2.iter().filter(|c| !v1_ids.contains(&c.id)).count();
        let rate = fresh as f64 / v2.len() as f64;
        assert!((0.05..0.15).contains(&rate), "churn rate {rate}");
    }

    #[test]
    fn growth_extends_stream() {
        let spec = TraceSpec {
            churn: 0.0,
            growth: 0.02,
            ..TraceSpec::default()
        };
        let mut s = TraceStream::new(spec, 5);
        let v1 = s.next_version();
        let v5 = {
            s.next_version();
            s.next_version();
            s.next_version();
            s.next_version()
        };
        assert!(v5.len() > v1.len());
    }

    #[test]
    fn flapping_alternates() {
        let spec = TraceSpec {
            flap: 0.2,
            churn: 0.0,
            growth: 0.0,
            ..TraceSpec::default()
        };
        let mut s = TraceStream::new(spec, 9);
        let v1 = s.next_version();
        let v2 = s.next_version();
        let v3 = s.next_version();
        assert!(v2.len() < v1.len(), "even versions drop flapping chunks");
        assert_eq!(v1.len(), v3.len());
    }

    #[test]
    fn ids_never_reused_after_churn() {
        let spec = TraceSpec {
            churn: 0.5,
            ..TraceSpec::default()
        };
        let mut s = TraceStream::new(spec, 11);
        let mut seen_max = 0u64;
        for _ in 0..5 {
            let v = s.next_version();
            let max = v.iter().map(|c| c.id).max().unwrap();
            assert!(max >= seen_max);
            seen_max = max;
        }
    }
}
