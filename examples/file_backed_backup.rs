//! A real on-disk backup repository: HiDeStore over [`FileContainerStore`].
//!
//! Containers are persisted as files under a repository directory; the
//! example backs up versions, lists the repository layout, restores from
//! disk, and shows the I/O statistics.
//!
//! Run with: `cargo run --example file_backed_backup`

use hidestore::core::{HiDeStore, HiDeStoreConfig};
use hidestore::restore::Faa;
use hidestore::storage::{ContainerStore, FileContainerStore, VersionId};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let repo = std::env::temp_dir().join(format!("hidestore-example-{}", std::process::id()));
    println!("repository: {}", repo.display());

    let store = FileContainerStore::open(&repo)?;
    let mut system = HiDeStore::new(
        HiDeStoreConfig {
            avg_chunk_size: 1024,
            container_capacity: 32 * 1024,
            ..HiDeStoreConfig::default()
        },
        store,
    );

    // Three versions; each edit goes cold one version later and lands in an
    // on-disk archival container.
    let v1: Vec<u8> = (0..150_000u32)
        .map(|i| (i.wrapping_mul(2654435761) >> 13) as u8)
        .collect();
    let mut v2 = v1.clone();
    v2[10_000..30_000].fill(0x11);
    let mut v3 = v2.clone();
    v3[90_000..120_000].fill(0x22);

    for data in [&v1, &v2, &v3] {
        system.backup(data)?;
    }

    println!("archival containers on disk:");
    for entry in std::fs::read_dir(&repo)? {
        let entry = entry?;
        println!(
            "  {} ({} bytes)",
            entry.file_name().to_string_lossy(),
            entry.metadata()?.len()
        );
    }

    system.archival_mut().reset_stats();
    let mut out = Vec::new();
    let report = system.restore(VersionId::new(1), &mut Faa::new(1 << 20), &mut out)?;
    assert_eq!(out, v1);
    let io = system.archival().stats();
    println!(
        "restored V1 from disk: {} container reads ({} from archival files, {:.1} KB read), \
         speed factor {:.2}",
        report.container_reads,
        io.container_reads,
        io.bytes_read as f64 / 1024.0,
        report.speed_factor(),
    );

    std::fs::remove_dir_all(&repo)?;
    println!("repository removed");
    Ok(())
}
