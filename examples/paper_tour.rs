//! A guided tour of the paper's argument, executed live:
//!
//! 1. **The observation** (Figure 3): chunks absent from the current version
//!    essentially never recur.
//! 2. **The problem** (§2.3): the baseline's fragmentation grows with every
//!    version.
//! 3. **The system** (§4): HiDeStore's hot/cold classification keeps the
//!    newest version physically dense — without losing a byte of
//!    deduplication.
//! 4. **The payoff** (§5.3, §5.5): faster restores of recent versions and
//!    free deletion of expired ones.
//!
//! Run with: `cargo run --release --example paper_tour`

use std::collections::HashMap;

use hidestore::chunking::{chunk_spans, ChunkerKind};
use hidestore::core::{HiDeStore, HiDeStoreConfig};
use hidestore::dedup::{BackupPipeline, PipelineConfig};
use hidestore::hash::Fingerprint;
use hidestore::index::DdfsIndex;
use hidestore::restore::Faa;
use hidestore::rewriting::NoRewrite;
use hidestore::storage::{MemoryContainerStore, VersionId};
use hidestore::workloads::{Profile, VersionStream};

const CHUNK: usize = 2048;
const CONTAINER: usize = 256 * 1024;
const N_VERSIONS: u32 = 10;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let spec = Profile::Kernel.spec().scaled(6 << 20, N_VERSIONS);
    let versions = VersionStream::new(spec, 2026).all_versions();
    println!(
        "workload: {} versions of ~{:.1} MB, kernel-like evolution\n",
        versions.len(),
        versions[0].len() as f64 / (1 << 20) as f64
    );

    // ---- 1. The observation (Figure 3) ----
    let mut chunker = ChunkerKind::Tttd.build(CHUNK);
    let mut tags: HashMap<Fingerprint, u32> = HashMap::new();
    let mut v1_counts = Vec::new();
    for (i, data) in versions.iter().enumerate() {
        for span in chunk_spans(chunker.as_mut(), data) {
            tags.insert(Fingerprint::of(&data[span]), i as u32 + 1);
        }
        v1_counts.push(tags.values().filter(|&&t| t == 1).count());
    }
    println!("1. the observation — chunks still tagged V1 after each backup:");
    println!("   {:?}", v1_counts);
    println!("   one sharp drop after V2, then flat: cold chunks never come back.\n");

    // ---- 2. The problem: baseline fragmentation ----
    let mut baseline = BackupPipeline::new(
        PipelineConfig {
            avg_chunk_size: CHUNK,
            container_capacity: CONTAINER,
            segment_chunks: 64,
            ..PipelineConfig::default()
        },
        DdfsIndex::new(),
        NoRewrite::new(),
        MemoryContainerStore::new(),
    );
    for v in &versions {
        baseline.backup(v)?;
    }
    let sf = |p: &mut BackupPipeline<_, _, _>, v: u32| {
        p.restore(
            VersionId::new(v),
            &mut Faa::new(8 * CONTAINER),
            &mut std::io::sink(),
        )
        .map(|r| r.speed_factor())
    };
    println!("2. the problem — baseline speed factor decays toward the newest version:");
    print!("  ");
    for v in [1u32, N_VERSIONS / 2, N_VERSIONS] {
        print!("  V{v}: {:.3}", sf(&mut baseline, v)?);
    }
    println!(" MB/read\n");

    // ---- 3. The system ----
    let mut hds = HiDeStore::new(
        HiDeStoreConfig {
            avg_chunk_size: CHUNK,
            container_capacity: CONTAINER,
            ..HiDeStoreConfig::default()
        },
        MemoryContainerStore::new(),
    );
    for v in &versions {
        hds.backup(v)?;
    }
    hds.flatten_recipes();
    println!("3. the system — HiDeStore after the same ingest:");
    println!(
        "     dedup ratio {:.2}% (baseline/exact: {:.2}%) — nothing was rewritten",
        hds.run_stats().dedup_ratio() * 100.0,
        baseline.run_stats().dedup_ratio() * 100.0,
    );
    let newest = VersionId::new(N_VERSIONS);
    let mut out = Vec::new();
    let report = hds.restore(newest, &mut Faa::new(8 * CONTAINER), &mut out)?;
    assert_eq!(out, versions[N_VERSIONS as usize - 1]);
    println!(
        "     newest version: {:.3} MB/read vs baseline {:.3} MB/read\n",
        report.speed_factor(),
        sf(&mut baseline, N_VERSIONS)?,
    );

    // ---- 4. The payoff: free deletion ----
    let expired = VersionId::new(N_VERSIONS / 2);
    let del = hds.delete_expired(expired)?;
    println!(
        "4. the payoff — expired versions 1..={} in {:?}: dropped {} whole containers, \
         no chunk-liveness detection, no garbage collection",
        expired.get(),
        del.elapsed,
        del.containers_dropped,
    );
    for v in expired.get() + 1..=N_VERSIONS {
        let mut out = Vec::new();
        hds.restore(VersionId::new(v), &mut Faa::new(8 * CONTAINER), &mut out)?;
        assert_eq!(out, versions[v as usize - 1]);
    }
    println!("   every surviving version verified byte-exact.");
    Ok(())
}
