//! Quickstart: back up three versions of a document tree with HiDeStore and
//! restore them byte-for-byte.
//!
//! Run with: `cargo run --example quickstart`

use hidestore::core::{HiDeStore, HiDeStoreConfig};
use hidestore::restore::Faa;
use hidestore::storage::{MemoryContainerStore, VersionId};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A backup system with 64 KiB containers and ~1 KiB chunks — small
    // numbers so the printout is interesting; production would use the
    // defaults (4 MiB containers, 8 KiB chunks).
    let config = HiDeStoreConfig {
        avg_chunk_size: 1024,
        container_capacity: 64 * 1024,
        ..HiDeStoreConfig::default()
    };
    let mut system = HiDeStore::new(config, MemoryContainerStore::new());

    // Three versions of "a project": v2 edits the middle, v3 appends.
    let v1: Vec<u8> = (0..200_000u32)
        .map(|i| (i.wrapping_mul(31) >> 3) as u8)
        .collect();
    let mut v2 = v1.clone();
    v2[100_000..101_000].fill(0xAB);
    let mut v3 = v2.clone();
    v3.extend_from_slice(&[0xCD; 5_000]);

    for (i, data) in [&v1, &v2, &v3].into_iter().enumerate() {
        let stats = system.backup(data)?;
        println!(
            "backed up V{}: {} chunks, {} new bytes stored ({:.1}% deduplicated), \
             {} cold chunks demoted",
            i + 1,
            stats.chunks,
            stats.stored_bytes,
            stats.dedup_ratio() * 100.0,
            stats.cold_chunks,
        );
    }
    println!(
        "cumulative dedup ratio: {:.2}%",
        system.run_stats().dedup_ratio() * 100.0
    );

    // Restore each version through a Forward Assembly Area and verify.
    for (i, expect) in [&v1, &v2, &v3].into_iter().enumerate() {
        let mut out = Vec::new();
        let report = system.restore(
            VersionId::new(i as u32 + 1),
            &mut Faa::new(1 << 20),
            &mut out,
        )?;
        assert_eq!(&out, expect, "restored bytes must match");
        println!(
            "restored V{}: {} bytes with {} container reads (speed factor {:.2} MB/read)",
            i + 1,
            report.bytes_restored,
            report.container_reads,
            report.speed_factor(),
        );
    }
    Ok(())
}
