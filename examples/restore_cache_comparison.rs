//! Compares the restore caching schemes — container LRU, chunk LRU, FAA,
//! ALACC — against Belady's optimal container cache on a deliberately
//! fragmented backup, at equal memory budgets.
//!
//! Run with: `cargo run --release --example restore_cache_comparison`

use hidestore::dedup::{BackupPipeline, PipelineConfig};
use hidestore::index::DdfsIndex;
use hidestore::restore::{Alacc, BeladyCache, ChunkLru, ContainerLru, Faa, RestoreCache};
use hidestore::rewriting::NoRewrite;
use hidestore::storage::{MemoryContainerStore, VersionId};
use hidestore::workloads::{Profile, VersionStream};

const CONTAINER: usize = 128 * 1024;
const BUDGET: usize = 8 * CONTAINER; // same memory for every scheme

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Ten versions of an evolving tree produce a fragmented final version.
    let versions = VersionStream::new(Profile::Gcc.spec().scaled(6 << 20, 10), 3).all_versions();
    let mut pipeline = BackupPipeline::new(
        PipelineConfig {
            avg_chunk_size: 2048,
            container_capacity: CONTAINER,
            segment_chunks: 64,
            ..PipelineConfig::default()
        },
        DdfsIndex::new(),
        NoRewrite::new(),
        MemoryContainerStore::new(),
    );
    for v in &versions {
        pipeline.backup(v)?;
    }
    let newest = VersionId::new(versions.len() as u32);
    println!(
        "restoring V{} ({:.1} MB) after {} versions of churn; memory budget {} KiB\n",
        newest.get(),
        versions.last().map(Vec::len).unwrap_or(0) as f64 / (1 << 20) as f64,
        versions.len(),
        BUDGET >> 10,
    );

    let mut schemes: Vec<Box<dyn RestoreCache>> = vec![
        Box::new(ContainerLru::new(BUDGET / CONTAINER)),
        Box::new(ChunkLru::new(BUDGET)),
        Box::new(Faa::new(BUDGET)),
        Box::new(Alacc::new(BUDGET / 2, BUDGET / 2)),
        Box::new(BeladyCache::new(BUDGET / CONTAINER)),
    ];
    println!(
        "{:<16} {:>16} {:>14}",
        "scheme", "container reads", "speed factor"
    );
    for scheme in schemes.iter_mut() {
        let report = pipeline.restore(newest, scheme.as_mut(), &mut std::io::sink())?;
        println!(
            "{:<16} {:>16} {:>10.3} MB/rd",
            scheme.name(),
            report.container_reads,
            report.speed_factor(),
        );
    }
    println!(
        "\nbelady is the offline optimum for container-granular caching: no online scheme \
         at this budget can read fewer containers."
    );
    Ok(())
}
