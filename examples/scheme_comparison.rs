//! Compares HiDeStore with the classic schemes on one synthetic workload:
//! deduplication ratio, index lookups, and newest-version restore locality —
//! a miniature of the paper's whole evaluation.
//!
//! Run with: `cargo run --release --example scheme_comparison`

use hidestore::core::{HiDeStore, HiDeStoreConfig};
use hidestore::dedup::{BackupPipeline, PipelineConfig};
use hidestore::index::{DdfsIndex, FingerprintIndex, SiloConfig, SiloIndex};
use hidestore::restore::Faa;
use hidestore::rewriting::{Capping, NoRewrite};
use hidestore::storage::{MemoryContainerStore, VersionId};
use hidestore::workloads::{Profile, VersionStream};

const CONTAINER: usize = 256 * 1024;
const CHUNK: usize = 2048;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let spec = Profile::Kernel.spec().scaled(4 << 20, 8);
    let versions = VersionStream::new(spec, 1).all_versions();
    let newest = VersionId::new(versions.len() as u32);
    println!(
        "workload: {} versions of ~{:.1} MB (kernel-like evolution)\n",
        versions.len(),
        versions[0].len() as f64 / (1 << 20) as f64
    );
    println!(
        "{:<16} {:>12} {:>14} {:>22}",
        "scheme", "dedup ratio", "disk lookups", "newest speed factor"
    );

    // DDFS: exact dedup, no rewriting.
    let mut ddfs = BackupPipeline::new(
        config(),
        DdfsIndex::with_cache_containers(4),
        NoRewrite::new(),
        MemoryContainerStore::new(),
    );
    for v in &versions {
        ddfs.backup(v)?;
    }
    let report = ddfs.restore(newest, &mut Faa::new(4 * CONTAINER), &mut std::io::sink())?;
    println!(
        "{:<16} {:>11.2}% {:>14} {:>18.3} MB/rd",
        "DDFS",
        ddfs.run_stats().dedup_ratio() * 100.0,
        ddfs.index().disk_lookups(),
        report.speed_factor()
    );

    // SiLo + Capping: near-exact dedup plus rewriting for locality.
    let mut capped = BackupPipeline::new(
        config(),
        SiloIndex::new(SiloConfig {
            cached_blocks: 4,
            ..SiloConfig::default()
        }),
        Capping::new(8),
        MemoryContainerStore::new(),
    );
    for v in &versions {
        capped.backup(v)?;
    }
    let report = capped.restore(newest, &mut Faa::new(4 * CONTAINER), &mut std::io::sink())?;
    println!(
        "{:<16} {:>11.2}% {:>14} {:>18.3} MB/rd",
        "SiLo+Capping",
        capped.run_stats().dedup_ratio() * 100.0,
        capped.index().disk_lookups(),
        report.speed_factor()
    );

    // HiDeStore.
    let mut hds = HiDeStore::new(
        HiDeStoreConfig {
            avg_chunk_size: CHUNK,
            container_capacity: CONTAINER,
            ..HiDeStoreConfig::default()
        },
        MemoryContainerStore::new(),
    );
    for v in &versions {
        hds.backup(v)?;
    }
    let lookups: u64 = hds.version_stats().iter().map(|s| s.lookup_requests).sum();
    let report = hds.restore(newest, &mut Faa::new(4 * CONTAINER), &mut std::io::sink())?;
    println!(
        "{:<16} {:>11.2}% {:>14} {:>18.3} MB/rd",
        "HiDeStore",
        hds.run_stats().dedup_ratio() * 100.0,
        lookups,
        report.speed_factor()
    );

    println!(
        "\nHiDeStore keeps the exact-dedup ratio, needs no full-index lookups, and restores \
         the newest version from the densest layout."
    );
    Ok(())
}

fn config() -> PipelineConfig {
    PipelineConfig {
        avg_chunk_size: CHUNK,
        container_capacity: CONTAINER,
        segment_chunks: 64,
        ..PipelineConfig::default()
    }
}
