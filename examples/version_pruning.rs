//! Retention management: keep the last K versions, expire the rest.
//!
//! Demonstrates §4.5 of the paper: because HiDeStore stores the chunks that
//! fell out of use in version-tagged archival containers, expiring old
//! versions drops whole containers — no liveness detection, no garbage
//! collection — and every surviving version still restores bit-exactly.
//!
//! Run with: `cargo run --release --example version_pruning`

use hidestore::core::{HiDeStore, HiDeStoreConfig};
use hidestore::restore::Faa;
use hidestore::storage::{ContainerStore, MemoryContainerStore, VersionId};
use hidestore::workloads::{Profile, VersionStream};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut system = HiDeStore::new(
        HiDeStoreConfig {
            avg_chunk_size: 2048,
            container_capacity: 256 * 1024,
            ..HiDeStoreConfig::default()
        },
        MemoryContainerStore::new(),
    );

    // Ingest 12 versions of an evolving home-directory-like tree.
    let spec = Profile::Fslhomes.spec().scaled(3 << 20, 12);
    let versions = VersionStream::new(spec, 99).all_versions();
    for (i, data) in versions.iter().enumerate() {
        system.backup(data)?;
        println!(
            "V{:<2} ingested ({} archival containers on disk, {} active in pool)",
            i + 1,
            system.archival().len(),
            system.pool().container_count(),
        );
    }

    // Retention policy: keep the last 4 versions.
    let keep_from = versions.len() as u32 - 4;
    println!("\nexpiring versions 1..={keep_from} (keeping the last 4)...");
    let report = system.delete_expired(VersionId::new(keep_from))?;
    println!(
        "removed {} recipes, dropped {} whole containers, reclaimed {:.2} MB in {:?} — \
         no garbage collection needed",
        report.versions_removed,
        report.containers_dropped,
        report.bytes_reclaimed as f64 / (1 << 20) as f64,
        report.elapsed,
    );

    // Every retained version still restores byte-exactly.
    for v in keep_from + 1..=versions.len() as u32 {
        let mut out = Vec::new();
        system.restore(VersionId::new(v), &mut Faa::new(1 << 20), &mut out)?;
        assert_eq!(out, versions[(v - 1) as usize]);
        println!("V{v} verified after pruning");
    }
    Ok(())
}
