//! `hidestore` — command-line interface to a HiDeStore backup repository.
//!
//! ```text
//! hidestore init    <repo>                      create an empty repository
//! hidestore backup  <repo> <file>               back up a file as the next version
//! hidestore restore <repo> <version> <outfile> [--threads <n>]
//!                                               restore a version to a file
//! hidestore list    <repo>                      list retained versions
//! hidestore prune   <repo> <keep-last-N>        expire all but the newest N versions
//! hidestore verify  <repo>                      integrity scrub
//! hidestore flatten <repo>                      run Algorithm 1 on the recipe chain
//! hidestore recluster <repo>                    defragment old versions' archival layout
//! hidestore stats   <repo>                      per-version fragmentation statistics
//! ```

use std::fs;
use std::path::Path;
use std::process::ExitCode;

use hidestore::core::{HiDeStore, HiDeStoreConfig};
use hidestore::restore::Faa;
use hidestore::storage::{ContainerStore, FileContainerStore, VersionId};

const CONFIG_FILE: &str = "config";

fn usage() -> ExitCode {
    eprintln!(
        "usage:\n  hidestore init    <repo> [--chunk <bytes>] [--container <bytes>] [--depth <1|2>] [--threads <n>]\n  \
         hidestore backup  <repo> <file>\n  \
         hidestore restore <repo> <version> <outfile> [--threads <n>]\n  \
         hidestore list    <repo>\n  \
         hidestore prune   <repo> <keep-last-N>\n  \
         hidestore verify  <repo>\n  \
         hidestore flatten <repo>\n  \
         hidestore recluster <repo>\n  \
         hidestore stats   <repo>"
    );
    ExitCode::from(2)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let result = match args.as_slice() {
        [cmd, rest @ ..] => match (cmd.as_str(), rest) {
            ("init", [repo, opts @ ..]) => cmd_init(repo, opts),
            ("backup", [repo, file]) => cmd_backup(repo, file),
            ("restore", [repo, version, outfile, opts @ ..]) => {
                cmd_restore(repo, version, outfile, opts)
            }
            ("list", [repo]) => cmd_list(repo),
            ("prune", [repo, keep]) => cmd_prune(repo, keep),
            ("verify", [repo]) => cmd_verify(repo),
            ("flatten", [repo]) => cmd_flatten(repo),
            ("recluster", [repo]) => cmd_recluster(repo),
            ("stats", [repo]) => cmd_stats(repo),
            _ => return usage(),
        },
        _ => return usage(),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

type CliResult = Result<(), Box<dyn std::error::Error>>;

fn load_config(repo: &str) -> Result<HiDeStoreConfig, Box<dyn std::error::Error>> {
    let mut config = HiDeStoreConfig::default();
    let path = Path::new(repo).join(CONFIG_FILE);
    if !path.exists() {
        return Err(format!("{repo} is not a hidestore repository (run `init` first)").into());
    }
    for line in fs::read_to_string(path)?.lines() {
        let Some((key, value)) = line.split_once('=') else {
            continue;
        };
        match key.trim() {
            "chunk" => config.avg_chunk_size = value.trim().parse()?,
            "container" => config.container_capacity = value.trim().parse()?,
            "depth" => config.history_depth = value.trim().parse()?,
            "threads" => config.threads = value.trim().parse()?,
            "restore_threads" => config.restore.threads = value.trim().parse()?,
            "restore_queue" => config.restore.queue_depth = value.trim().parse()?,
            "restore_readahead" => config.restore.readahead_containers = value.trim().parse()?,
            _ => {}
        }
    }
    // An environment override beats the repository config, so CI and
    // benchmarks can sweep thread counts without rewriting the config file.
    if let Ok(threads) = std::env::var("HDS_THREADS") {
        config.threads = threads.trim().parse()?;
        config.restore.threads = config.threads;
    }
    Ok(config)
}

fn open(repo: &str) -> Result<HiDeStore<FileContainerStore>, Box<dyn std::error::Error>> {
    let config = load_config(repo)?;
    Ok(HiDeStore::open_repository(config, repo)?)
}

fn cmd_init(repo: &str, opts: &[String]) -> CliResult {
    let mut config = HiDeStoreConfig::default();
    let mut it = opts.iter();
    while let Some(flag) = it.next() {
        let value = it.next().ok_or_else(|| format!("{flag} needs a value"))?;
        match flag.as_str() {
            "--chunk" => config.avg_chunk_size = value.parse()?,
            "--container" => config.container_capacity = value.parse()?,
            "--depth" => config.history_depth = value.parse()?,
            "--threads" => {
                config.threads = value.parse()?;
                config.restore.threads = config.threads;
            }
            other => return Err(format!("unknown option {other}").into()),
        }
    }
    config.validate();
    let dir = Path::new(repo);
    if dir.join(CONFIG_FILE).exists() {
        return Err(format!("{repo} already contains a repository").into());
    }
    fs::create_dir_all(dir)?;
    fs::write(
        dir.join(CONFIG_FILE),
        format!(
            "chunk={}\ncontainer={}\ndepth={}\nthreads={}\nrestore_threads={}\nrestore_queue={}\nrestore_readahead={}\n",
            config.avg_chunk_size,
            config.container_capacity,
            config.history_depth,
            config.threads,
            config.restore.threads,
            config.restore.queue_depth,
            config.restore.readahead_containers,
        ),
    )?;
    // Materialize the directory layout.
    let mut system = HiDeStore::open_repository(config, repo)?;
    system.save_repository(repo)?;
    println!(
        "initialized repository at {repo} (chunk {} B, container {} B, history depth {}, threads {})",
        config.avg_chunk_size, config.container_capacity, config.history_depth, config.threads
    );
    Ok(())
}

fn cmd_backup(repo: &str, file: &str) -> CliResult {
    let data = fs::read(file)?;
    let mut system = open(repo)?;
    let stats = system.backup(&data)?;
    system.save_repository(repo)?;
    println!(
        "{} -> {}: {} bytes, {} chunks, {} new bytes stored ({:.1}% deduplicated), \
         {} cold chunks archived",
        file,
        stats.version,
        stats.logical_bytes,
        stats.chunks,
        stats.stored_bytes,
        stats.dedup_ratio() * 100.0,
        stats.cold_chunks,
    );
    Ok(())
}

fn cmd_restore(repo: &str, version: &str, outfile: &str, opts: &[String]) -> CliResult {
    let v: u32 = version.trim_start_matches(['v', 'V']).parse()?;
    let mut system = open(repo)?;
    // Flag > HDS_THREADS > repository config (the latter two are already
    // folded into the opened system's config by load_config).
    let mut conc = system.config().restore;
    let mut it = opts.iter();
    while let Some(flag) = it.next() {
        let value = it.next().ok_or_else(|| format!("{flag} needs a value"))?;
        match flag.as_str() {
            "--threads" => conc.threads = value.parse()?,
            other => return Err(format!("unknown option {other}").into()),
        }
    }
    conc.validate();
    // Output is staged in `<outfile>.tmp` and renamed on success, so a
    // failed restore never leaves a partial file behind.
    let report = system.restore_to_path(
        VersionId::new(v),
        &mut Faa::new(32 << 20),
        Path::new(outfile),
        &conc,
    )?;
    println!(
        "restored V{v} to {outfile}: {} bytes, {} container reads (speed factor {:.2} MB/read)",
        report.bytes_restored,
        report.container_reads,
        report.speed_factor(),
    );
    if conc.effective_threads() > 1 {
        println!(
            "  staged engine: {} prefetched, {} hits, {} misses, {} wasted",
            report.stage.containers_prefetched,
            report.stage.prefetch_hits,
            report.stage.prefetch_misses,
            report.stage.prefetch_wasted,
        );
    }
    Ok(())
}

fn cmd_list(repo: &str) -> CliResult {
    let system = open(repo)?;
    if system.versions().is_empty() {
        println!("repository is empty");
        return Ok(());
    }
    println!("{:>8}  {:>12}  {:>8}", "version", "bytes", "chunks");
    for v in system.versions() {
        let recipe = system.recipes().get(v).expect("listed version exists");
        println!(
            "{:>8}  {:>12}  {:>8}",
            v.to_string(),
            recipe.total_bytes(),
            recipe.len()
        );
    }
    println!(
        "{} archival containers, {} active containers ({} hot chunks)",
        system.archival().len(),
        system.pool().container_count(),
        system.pool().chunk_count(),
    );
    Ok(())
}

fn cmd_prune(repo: &str, keep: &str) -> CliResult {
    let keep: u32 = keep.parse()?;
    if keep == 0 {
        return Err("must keep at least one version".into());
    }
    let mut system = open(repo)?;
    let Some(newest) = system.versions().last().copied() else {
        println!("repository is empty");
        return Ok(());
    };
    if newest.get() <= keep {
        println!(
            "nothing to prune ({} versions retained)",
            system.versions().len()
        );
        return Ok(());
    }
    let report = system.delete_expired(VersionId::new(newest.get() - keep))?;
    system.save_repository(repo)?;
    println!(
        "pruned {} versions, dropped {} containers, reclaimed {} bytes in {:?} (no GC)",
        report.versions_removed, report.containers_dropped, report.bytes_reclaimed, report.elapsed,
    );
    Ok(())
}

fn cmd_verify(repo: &str) -> CliResult {
    let mut system = open(repo)?;
    let report = system.scrub()?;
    println!(
        "checked {} containers, {} chunks, {} recipes",
        report.containers_checked, report.chunks_checked, report.recipes_checked,
    );
    if report.is_clean() {
        println!("repository is clean");
        Ok(())
    } else {
        for (container, fp) in &report.corrupt_chunks {
            eprintln!("CORRUPT: chunk {fp} in container {container}");
        }
        Err(format!("{} corrupt chunks found", report.corrupt_chunks.len()).into())
    }
}

fn cmd_stats(repo: &str) -> CliResult {
    use hidestore::dedup::analysis::analyze_plan;
    let system = open(repo)?;
    if system.versions().is_empty() {
        println!("repository is empty");
        return Ok(());
    }
    let capacity = system.config().container_capacity;
    println!(
        "{:>8}  {:>12}  {:>8}  {:>6}  {:>12}",
        "version", "bytes", "chunks", "CFL", "KiB/container"
    );
    for v in system.versions() {
        let recipe = system.recipes().get(v).expect("listed version exists");
        let plan = hidestore::core::chain::resolve_plan(system.recipes(), system.pool(), v)?;
        let report = analyze_plan(plan.into_iter().map(|(_, size, cid)| (size, cid)), capacity);
        println!(
            "{:>8}  {:>12}  {:>8}  {:>6.3}  {:>12.1}",
            v.to_string(),
            recipe.total_bytes(),
            recipe.len(),
            report.cfl,
            report.mean_bytes_per_container / 1024.0,
        );
    }
    println!(
        "pool: {} containers, {} hot chunks, {:.1} KiB live",
        system.pool().container_count(),
        system.pool().chunk_count(),
        system.pool().live_bytes() as f64 / 1024.0,
    );
    Ok(())
}

fn cmd_recluster(repo: &str) -> CliResult {
    let mut system = open(repo)?;
    let report = system.recluster_archival()?;
    system.save_repository(repo)?;
    println!(
        "reclustered {} tag groups: {} containers rewritten, {} chunks moved, \
         {} recipe entries updated",
        report.tag_groups,
        report.containers_rewritten,
        report.chunks_moved,
        report.recipe_entries_updated,
    );
    Ok(())
}

fn cmd_flatten(repo: &str) -> CliResult {
    let mut system = open(repo)?;
    let (updated, elapsed) = system.flatten_recipes();
    system.save_repository(repo)?;
    println!("flattened recipe chains: {updated} entries updated in {elapsed:?}");
    Ok(())
}
