//! `hidestore` — command-line interface to a HiDeStore backup repository.
//!
//! ```text
//! hidestore init    <repo>                      create an empty repository
//! hidestore backup  <repo> <file>               back up a file as the next version
//! hidestore restore <repo> <version> <outfile> [--threads <n>]
//!                                               restore a version to a file
//! hidestore backup-tree  <repo> <dir> [--exclude <glob>]... [--threads <n>]
//!                                               back up a directory tree
//! hidestore restore-tree <repo> <version> <destdir> [--subtree <apath>] [--threads <n>]
//!                                               restore a tree (or one subtree)
//! hidestore list    <repo> [--json]             list retained versions
//! hidestore prune   <repo> <keep-last-N>        expire all but the newest N versions
//! hidestore verify  <repo>                      integrity scrub
//! hidestore flatten <repo>                      run Algorithm 1 on the recipe chain
//! hidestore recluster <repo>                    defragment old versions' archival layout
//! hidestore dedup-pass <repo>                   run the out-of-line reverse-dedup pass
//!                                               (revdedup / hybrid schemes)
//! hidestore stats   <repo> [--json]             per-version fragmentation statistics
//! hidestore serve   <repo> [--port N] ...       run the hds-served daemon in-process
//! ```
//!
//! Every data command also takes `--remote <host:port>` to run against an
//! `hds-served` daemon instead of a local repository directory; the `<repo>`
//! argument is then omitted:
//!
//! ```text
//! hidestore backup  --remote 127.0.0.1:4321 <file>
//! hidestore restore --remote 127.0.0.1:4321 <version> <outfile>
//! hidestore list    --remote 127.0.0.1:4321 [--json]
//! hidestore stats   --remote 127.0.0.1:4321 [--json]
//! hidestore prune   --remote 127.0.0.1:4321 <keep-last-N>
//! hidestore verify  --remote 127.0.0.1:4321
//! hidestore shutdown --remote 127.0.0.1:4321
//! ```
//!
//! Against a multi-tenant daemon (`serve --tenants`), every remote data
//! verb additionally takes `--tenant <id>` to address one tenant's
//! repository (defaults to the `default` tenant), and two admin verbs
//! inspect the whole root:
//!
//! ```text
//! hidestore backup --remote 127.0.0.1:4321 --tenant alice <file>
//! hidestore tenant list  --remote 127.0.0.1:4321 [--json]
//! hidestore tenant stats --remote 127.0.0.1:4321 [--json]
//! ```
//!
//! Exit codes: 0 success, 1 runtime failure, 2 usage error.

use std::fmt;
use std::fs;
use std::path::Path;
use std::process::ExitCode;
use std::time::Duration;

use hidestore::core::{DedupMode, HiDeStore, HiDeStoreConfig};
use hidestore::proto::TenantId;
use hidestore::restore::Faa;
use hidestore::server::{default_net_timeout, view, RemoteClient, ServerConfig};
use hidestore::storage::{FileContainerStore, VersionId};

/// A CLI failure, split by who got it wrong.
///
/// `Usage` is the operator's mistake (bad flag, missing argument) and maps
/// to exit code 2 with the usage text; `Runtime` is the operation's failure
/// (I/O, corruption, server error) and maps to exit code 1 with an
/// `error:` line. The split is pinned by `tests/cli.rs`.
enum CliError {
    Usage(String),
    Runtime(String),
}

impl fmt::Display for CliError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CliError::Usage(msg) | CliError::Runtime(msg) => write!(f, "{msg}"),
        }
    }
}

impl<E: std::error::Error> From<E> for CliError {
    fn from(e: E) -> Self {
        CliError::Runtime(e.to_string())
    }
}

fn usage(msg: impl Into<String>) -> CliError {
    CliError::Usage(msg.into())
}

fn runtime(msg: impl Into<String>) -> CliError {
    CliError::Runtime(msg.into())
}

type CliResult = Result<(), CliError>;

fn print_usage() {
    eprintln!(
        "usage:\n  hidestore init    <repo> [--chunk <bytes>] [--container <bytes>] [--depth <1|2>] [--threads <n>]\n  \
         \x20                [--scheme <hidestore|revdedup|hybrid>]\n  \
         hidestore backup  <repo> <file>\n  \
         hidestore restore <repo> <version> <outfile> [--threads <n>]\n  \
         hidestore backup-tree  <repo> <dir> [--exclude <glob>]... [--threads <n>]\n  \
         hidestore restore-tree <repo> <version> <destdir> [--subtree <apath>] [--threads <n>]\n  \
         hidestore list    <repo> [--json]\n  \
         hidestore prune   <repo> <keep-last-N>\n  \
         hidestore verify  <repo>\n  \
         hidestore flatten <repo>\n  \
         hidestore recluster <repo>\n  \
         hidestore dedup-pass <repo>\n  \
         hidestore stats   <repo> [--json]\n  \
         hidestore serve   <repo> [--bind ADDR] [--port N] [--workers N] [--quiet]\n  \
         \x20                [--read-timeout SECS] [--write-timeout SECS]\n  \
         \x20                [--tenants] [--max-tenants N] [--no-auto-tenants]\n  \
         \x20                [--quota-bytes N] [--quota-versions N]\n\n\
         remote variants (against a running hds-served); each also takes\n\
         --remote-timeout SECS (per-I/O deadline, 0 disables, default\n\
         HDS_NET_TIMEOUT then 30) and --tenant <id> (address one tenant of\n\
         a --tenants daemon; defaults to the `default` tenant):\n  \
         hidestore backup  --remote <host:port> <file>\n  \
         hidestore restore --remote <host:port> <version> <outfile>\n  \
         hidestore list    --remote <host:port> [--json]\n  \
         hidestore stats   --remote <host:port> [--json]\n  \
         hidestore prune   --remote <host:port> <keep-last-N>\n  \
         hidestore verify  --remote <host:port>\n  \
         hidestore tenant  list  --remote <host:port> [--json]\n  \
         hidestore tenant  stats --remote <host:port> [--json]\n  \
         hidestore shutdown --remote <host:port>"
    );
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let result = run(&args);
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(CliError::Usage(msg)) => {
            if !msg.is_empty() {
                eprintln!("error: {msg}");
            }
            print_usage();
            ExitCode::from(2)
        }
        Err(CliError::Runtime(msg)) => {
            eprintln!("error: {msg}");
            ExitCode::FAILURE
        }
    }
}

/// The `--remote` connection options shared by every remote verb.
struct Remote {
    addr: String,
    /// `--remote-timeout` if given; otherwise resolved from
    /// `HDS_NET_TIMEOUT` / the 30s default at connect time.
    timeout: Option<Duration>,
    /// `--tenant` if given; every request is then enveloped with this id.
    tenant: Option<TenantId>,
}

/// Pulls `--remote <host:port>` (plus `--remote-timeout SECS` and
/// `--tenant <id>`) out of the argument list, returning the connection
/// options (if remote) and the remaining positional/flag arguments.
fn split_remote(args: &[String]) -> Result<(Option<Remote>, Vec<String>), CliError> {
    let mut addr = None;
    let mut timeout = None;
    let mut tenant = None;
    let mut rest = Vec::new();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        if arg == "--remote" {
            let value = it
                .next()
                .ok_or_else(|| usage("--remote needs a <host:port> value"))?;
            addr = Some(value.clone());
        } else if arg == "--remote-timeout" {
            let value = it
                .next()
                .ok_or_else(|| usage("--remote-timeout needs a seconds value"))?;
            let secs: u64 = value
                .parse()
                .map_err(|_| usage(format!("--remote-timeout must be a number, got {value}")))?;
            timeout = Some(Duration::from_secs(secs));
        } else if arg == "--tenant" {
            let value = it
                .next()
                .ok_or_else(|| usage("--tenant needs a tenant id"))?;
            // Validate here so a typo'd id is a usage error, not a wire
            // round-trip that the server rejects.
            let id = TenantId::new(value)
                .map_err(|e| usage(format!("invalid tenant id {value:?}: {e}")))?;
            tenant = Some(id);
        } else {
            rest.push(arg.clone());
        }
    }
    match (addr, timeout, tenant) {
        (Some(addr), timeout, tenant) => Ok((
            Some(Remote {
                addr,
                timeout,
                tenant,
            }),
            rest,
        )),
        (None, Some(_), _) => Err(usage("--remote-timeout requires --remote")),
        (None, None, Some(_)) => Err(usage("--tenant requires --remote")),
        (None, None, None) => Ok((None, rest)),
    }
}

/// Pulls a boolean `--json` flag out of the argument list.
fn split_json(args: Vec<String>) -> (bool, Vec<String>) {
    let json = args.iter().any(|a| a == "--json");
    let rest = args.into_iter().filter(|a| a != "--json").collect();
    (json, rest)
}

fn run(args: &[String]) -> CliResult {
    let [cmd, raw @ ..] = args else {
        return Err(usage(""));
    };
    let (remote, rest) = split_remote(raw)?;
    match (cmd.as_str(), remote) {
        ("init", None) => match rest.as_slice() {
            [repo, opts @ ..] => cmd_init(repo, opts),
            _ => Err(usage("init needs a <repo>")),
        },
        ("backup", None) => match rest.as_slice() {
            [repo, file] => cmd_backup(repo, file),
            _ => Err(usage("backup needs <repo> <file>")),
        },
        ("backup", Some(remote)) => match rest.as_slice() {
            [file] => cmd_backup_remote(&remote, file),
            _ => Err(usage("remote backup needs <file>")),
        },
        ("restore", None) => match rest.as_slice() {
            [repo, version, outfile, opts @ ..] => cmd_restore(repo, version, outfile, opts),
            _ => Err(usage("restore needs <repo> <version> <outfile>")),
        },
        ("restore", Some(remote)) => match rest.as_slice() {
            [version, outfile] => cmd_restore_remote(&remote, version, outfile),
            _ => Err(usage("remote restore needs <version> <outfile>")),
        },
        ("backup-tree", None) => match rest.as_slice() {
            [repo, dir, opts @ ..] => cmd_backup_tree(repo, dir, opts),
            _ => Err(usage("backup-tree needs <repo> <dir>")),
        },
        ("restore-tree", None) => match rest.as_slice() {
            [repo, version, dest, opts @ ..] => cmd_restore_tree(repo, version, dest, opts),
            _ => Err(usage("restore-tree needs <repo> <version> <destdir>")),
        },
        ("list", None) => {
            let (json, rest) = split_json(rest);
            match rest.as_slice() {
                [repo] => cmd_list(repo, json),
                _ => Err(usage("list needs a <repo>")),
            }
        }
        ("list", Some(remote)) => {
            let (json, rest) = split_json(rest);
            match rest.as_slice() {
                [] => cmd_list_remote(&remote, json),
                _ => Err(usage("remote list takes no positional arguments")),
            }
        }
        ("stats", None) => {
            let (json, rest) = split_json(rest);
            match rest.as_slice() {
                [repo] => cmd_stats(repo, json),
                _ => Err(usage("stats needs a <repo>")),
            }
        }
        ("stats", Some(remote)) => {
            let (json, rest) = split_json(rest);
            match rest.as_slice() {
                [] => cmd_stats_remote(&remote, json),
                _ => Err(usage("remote stats takes no positional arguments")),
            }
        }
        ("prune", None) => match rest.as_slice() {
            [repo, keep] => cmd_prune(repo, keep),
            _ => Err(usage("prune needs <repo> <keep-last-N>")),
        },
        ("prune", Some(remote)) => match rest.as_slice() {
            [keep] => cmd_prune_remote(&remote, keep),
            _ => Err(usage("remote prune needs <keep-last-N>")),
        },
        ("verify", None) => match rest.as_slice() {
            [repo] => cmd_verify(repo),
            _ => Err(usage("verify needs a <repo>")),
        },
        ("verify", Some(remote)) => match rest.as_slice() {
            [] => cmd_verify_remote(&remote),
            _ => Err(usage("remote verify takes no positional arguments")),
        },
        ("shutdown", Some(remote)) => match rest.as_slice() {
            [] => cmd_shutdown_remote(&remote),
            _ => Err(usage("shutdown takes no positional arguments")),
        },
        ("tenant", Some(remote)) => {
            let (json, rest) = split_json(rest);
            match rest.iter().map(String::as_str).collect::<Vec<_>>()[..] {
                ["list"] => cmd_tenant_list_remote(&remote, json),
                ["stats"] => cmd_tenant_stats_remote(&remote, json),
                _ => Err(usage("tenant needs a subcommand: list or stats")),
            }
        }
        ("tenant", None) => Err(usage("tenant verbs need --remote <host:port>")),
        ("flatten", None) => match rest.as_slice() {
            [repo] => cmd_flatten(repo),
            _ => Err(usage("flatten needs a <repo>")),
        },
        ("recluster", None) => match rest.as_slice() {
            [repo] => cmd_recluster(repo),
            _ => Err(usage("recluster needs a <repo>")),
        },
        ("dedup-pass", None) => match rest.as_slice() {
            [repo] => cmd_dedup_pass(repo),
            _ => Err(usage("dedup-pass needs a <repo>")),
        },
        ("serve", None) => match rest.as_slice() {
            [repo, opts @ ..] => cmd_serve(repo, opts),
            _ => Err(usage("serve needs a <repo>")),
        },
        (cmd, Some(_)) => Err(usage(format!("{cmd} has no --remote variant"))),
        _ => Err(usage("")),
    }
}

fn open(repo: &str) -> Result<HiDeStore<FileContainerStore>, CliError> {
    let config = HiDeStoreConfig::load_from(repo)?;
    Ok(HiDeStore::open_repository(config, repo)?)
}

fn connect(remote: &Remote) -> Result<RemoteClient, CliError> {
    let timeout = remote.timeout.unwrap_or_else(default_net_timeout);
    let client =
        RemoteClient::connect_with(&remote.addr, hidestore::proto::Limits::default(), timeout)
            .map_err(|e| runtime(format!("cannot reach hds-served at {}: {e}", remote.addr)))?;
    match &remote.tenant {
        Some(tenant) => client
            .with_tenant(tenant.clone())
            .map_err(|e| runtime(e.to_string())),
        None => Ok(client),
    }
}

fn parse_version(version: &str) -> Result<u32, CliError> {
    version
        .trim_start_matches(['v', 'V'])
        .parse()
        .map_err(|_| usage(format!("{version} is not a version number")))
}

fn cmd_init(repo: &str, opts: &[String]) -> CliResult {
    let mut config = HiDeStoreConfig::default();
    let mut it = opts.iter();
    while let Some(flag) = it.next() {
        let value = it
            .next()
            .ok_or_else(|| usage(format!("{flag} needs a value")))?;
        let parsed = |what: &str| {
            value
                .parse::<usize>()
                .map_err(|_| usage(format!("{what} must be a number, got {value}")))
        };
        match flag.as_str() {
            "--chunk" => config.avg_chunk_size = parsed("--chunk")?,
            "--container" => config.container_capacity = parsed("--container")?,
            "--depth" => config.history_depth = parsed("--depth")?,
            "--threads" => {
                config.threads = parsed("--threads")?;
                config.restore.threads = config.threads;
            }
            "--scheme" => config.scheme = DedupMode::parse(value).map_err(usage)?,
            other => return Err(usage(format!("unknown option {other}"))),
        }
    }
    config.validate();
    let dir = Path::new(repo);
    if dir.join(hidestore::core::CONFIG_FILE).exists() {
        return Err(runtime(format!("{repo} already contains a repository")));
    }
    fs::create_dir_all(dir)?;
    config.save_to(dir)?;
    // Materialize the directory layout.
    let mut system = HiDeStore::open_repository(config, repo)?;
    system.save_repository(repo)?;
    println!(
        "initialized repository at {repo} (chunk {} B, container {} B, history depth {}, \
         threads {}, scheme {})",
        config.avg_chunk_size,
        config.container_capacity,
        config.history_depth,
        config.threads,
        config.scheme,
    );
    Ok(())
}

fn cmd_backup(repo: &str, file: &str) -> CliResult {
    let data = fs::read(file)?;
    let mut system = open(repo)?;
    let stats = system.backup(&data)?;
    system.save_repository(repo)?;
    println!(
        "{} -> {}: {} bytes, {} chunks, {} new bytes stored ({:.1}% deduplicated), \
         {} cold chunks archived",
        file,
        stats.version,
        stats.logical_bytes,
        stats.chunks,
        stats.stored_bytes,
        stats.dedup_ratio() * 100.0,
        stats.cold_chunks,
    );
    Ok(())
}

fn cmd_backup_remote(remote: &Remote, file: &str) -> CliResult {
    let data = fs::read(file)?;
    let mut client = connect(remote)?;
    let summary = client.backup_bytes(&data)?;
    println!(
        "{} -> V{} on {}: {} bytes, {} chunks, {} new bytes stored, {} cold chunks archived",
        file,
        summary.version,
        remote.addr,
        summary.logical_bytes,
        summary.chunks,
        summary.stored_bytes,
        summary.cold_chunks,
    );
    Ok(())
}

fn cmd_restore(repo: &str, version: &str, outfile: &str, opts: &[String]) -> CliResult {
    let v = parse_version(version)?;
    if v == 0 {
        return Err(runtime("version ids are 1-based".to_string()));
    }
    let mut system = open(repo)?;
    // Flag > HDS_THREADS > repository config (the latter two are already
    // folded into the opened system's config by load_from).
    let mut conc = system.config().restore;
    let mut it = opts.iter();
    while let Some(flag) = it.next() {
        let value = it
            .next()
            .ok_or_else(|| usage(format!("{flag} needs a value")))?;
        match flag.as_str() {
            "--threads" => {
                conc.threads = value
                    .parse()
                    .map_err(|_| usage(format!("--threads must be a number, got {value}")))?;
            }
            other => return Err(usage(format!("unknown option {other}"))),
        }
    }
    conc.validate();
    // Output is staged in `<outfile>.tmp` and renamed on success, so a
    // failed restore never leaves a partial file behind.
    let report = system.restore_to_path(
        VersionId::new(v),
        &mut Faa::new(32 << 20),
        Path::new(outfile),
        &conc,
    )?;
    println!(
        "restored V{v} to {outfile}: {} bytes, {} container reads (speed factor {:.2} MB/read)",
        report.bytes_restored,
        report.container_reads,
        report.speed_factor(),
    );
    if conc.effective_threads() > 1 {
        println!(
            "  staged engine: {} prefetched, {} hits, {} misses, {} wasted",
            report.stage.containers_prefetched,
            report.stage.prefetch_hits,
            report.stage.prefetch_misses,
            report.stage.prefetch_wasted,
        );
    }
    Ok(())
}

fn cmd_backup_tree(repo: &str, dir: &str, opts: &[String]) -> CliResult {
    let mut excludes = hidestore::tree::ExcludeSet::none();
    let mut threads: Option<usize> = None;
    let mut it = opts.iter();
    while let Some(flag) = it.next() {
        let value = it
            .next()
            .ok_or_else(|| usage(format!("{flag} needs a value")))?;
        match flag.as_str() {
            "--exclude" => excludes.add(value).map_err(|e| usage(e.to_string()))?,
            "--threads" => {
                threads = Some(
                    value
                        .parse()
                        .map_err(|_| usage(format!("--threads must be a number, got {value}")))?,
                );
            }
            other => return Err(usage(format!("unknown option {other}"))),
        }
    }
    let mut config = HiDeStoreConfig::load_from(repo)?;
    if let Some(threads) = threads {
        config.threads = threads;
        config.restore.threads = threads;
        config.validate();
    }
    let mut system = HiDeStore::open_repository(config, repo)?;
    let report = hidestore::tree::backup_tree(
        &mut system,
        &hidestore::failpoint::RealVfs,
        Path::new(dir),
        &hidestore::tree::TreeBackupOptions { excludes },
    )?;
    system.save_repository(repo)?;
    println!(
        "{} -> {}: {} files, {} dirs, {} symlinks, {} content bytes \
         ({:.1}% deduplicated), {} excluded",
        dir,
        report.stats.version,
        report.files,
        report.dirs,
        report.symlinks,
        report.content_bytes,
        report.stats.dedup_ratio() * 100.0,
        report.excluded,
    );
    if report.is_complete() {
        Ok(())
    } else {
        // The backup itself is saved; the skips make the run non-zero.
        for skip in &report.skipped {
            eprintln!("skipped {skip}");
        }
        Err(runtime(format!(
            "{} entries could not be read (backup saved without them)",
            report.skipped.len()
        )))
    }
}

fn cmd_restore_tree(repo: &str, version: &str, dest: &str, opts: &[String]) -> CliResult {
    let v = parse_version(version)?;
    if v == 0 {
        return Err(runtime("version ids are 1-based".to_string()));
    }
    let mut system = open(repo)?;
    let mut conc = system.config().restore;
    let mut subtree = None;
    let mut it = opts.iter();
    while let Some(flag) = it.next() {
        let value = it
            .next()
            .ok_or_else(|| usage(format!("{flag} needs a value")))?;
        match flag.as_str() {
            "--subtree" => subtree = Some(value.clone()),
            "--threads" => {
                conc.threads = value
                    .parse()
                    .map_err(|_| usage(format!("--threads must be a number, got {value}")))?;
            }
            other => return Err(usage(format!("unknown option {other}"))),
        }
    }
    conc.validate();
    let report = hidestore::tree::restore_tree(
        &mut system,
        &hidestore::failpoint::RealVfs,
        VersionId::new(v),
        Path::new(dest),
        &hidestore::tree::TreeRestoreOptions {
            subtree,
            conc,
            ..Default::default()
        },
    )?;
    println!(
        "restored V{v} to {dest}: {} files, {} dirs, {} symlinks, {} bytes, \
         {} container reads",
        report.files, report.dirs, report.symlinks, report.bytes_restored, report.container_reads,
    );
    if report.is_complete() {
        Ok(())
    } else {
        for skip in &report.skipped {
            eprintln!("skipped {skip}");
        }
        Err(runtime(format!(
            "{} entries could not be restored",
            report.skipped.len()
        )))
    }
}

fn cmd_restore_remote(remote: &Remote, version: &str, outfile: &str) -> CliResult {
    let v = parse_version(version)?;
    let mut client = connect(remote)?;
    let summary = client.restore_to_path(v, Path::new(outfile))?;
    println!(
        "restored V{v} from {} to {outfile}: {} bytes, {} container reads",
        remote.addr, summary.bytes_restored, summary.container_reads,
    );
    Ok(())
}

fn cmd_list(repo: &str, json: bool) -> CliResult {
    let system = open(repo)?;
    let list = view::list_response(&system);
    if json {
        println!("{}", list.to_json());
        return Ok(());
    }
    print_list(&list);
    Ok(())
}

fn cmd_list_remote(remote: &Remote, json: bool) -> CliResult {
    let mut client = connect(remote)?;
    let list = client.list()?;
    if json {
        println!("{}", list.to_json());
        return Ok(());
    }
    print_list(&list);
    Ok(())
}

fn print_list(list: &hidestore::proto::ListResponse) {
    if list.versions.is_empty() {
        println!("repository is empty");
        return;
    }
    println!("{:>8}  {:>12}  {:>8}", "version", "bytes", "chunks");
    for v in &list.versions {
        println!(
            "{:>8}  {:>12}  {:>8}",
            format!("V{}", v.version),
            v.bytes,
            v.chunks
        );
    }
    println!(
        "{} archival containers, {} active containers ({} hot chunks)",
        list.archival_containers, list.active_containers, list.hot_chunks,
    );
}

fn cmd_stats(repo: &str, json: bool) -> CliResult {
    let system = open(repo)?;
    let stats = view::stats_response(&system)?;
    if json {
        println!("{}", stats.to_json());
        return Ok(());
    }
    print_stats(&stats);
    Ok(())
}

fn cmd_stats_remote(remote: &Remote, json: bool) -> CliResult {
    let mut client = connect(remote)?;
    let stats = client.stats()?;
    if json {
        println!("{}", stats.to_json());
        return Ok(());
    }
    print_stats(&stats);
    Ok(())
}

fn print_stats(stats: &hidestore::proto::StatsResponse) {
    if stats.versions.is_empty() {
        println!("repository is empty");
        return;
    }
    println!(
        "{:>8}  {:>12}  {:>8}  {:>6}  {:>12}",
        "version", "bytes", "chunks", "CFL", "KiB/container"
    );
    for v in &stats.versions {
        println!(
            "{:>8}  {:>12}  {:>8}  {:>6.3}  {:>12.1}",
            format!("V{}", v.version),
            v.bytes,
            v.chunks,
            v.cfl,
            v.mean_kib_per_container,
        );
    }
    println!(
        "pool: {} containers, {} hot chunks, {:.1} KiB live",
        stats.pool_containers,
        stats.pool_chunks,
        stats.pool_live_bytes as f64 / 1024.0,
    );
    if stats.out_of_line_rewritten_bytes > 0 {
        println!(
            "out-of-line rewrites this session: {} bytes (rewrite traffic, not new data)",
            stats.out_of_line_rewritten_bytes,
        );
    }
}

fn cmd_prune(repo: &str, keep: &str) -> CliResult {
    let keep: u32 = keep
        .parse()
        .map_err(|_| usage(format!("keep-last must be a number, got {keep}")))?;
    if keep == 0 {
        return Err(runtime("must keep at least one version".to_string()));
    }
    let mut system = open(repo)?;
    let Some(newest) = system.versions().last().copied() else {
        println!("repository is empty");
        return Ok(());
    };
    if newest.get() <= keep {
        println!(
            "nothing to prune ({} versions retained)",
            system.versions().len()
        );
        return Ok(());
    }
    let report = system.delete_expired(VersionId::new(newest.get() - keep))?;
    system.save_repository(repo)?;
    println!(
        "pruned {} versions, dropped {} containers, reclaimed {} bytes in {:?} (no GC)",
        report.versions_removed, report.containers_dropped, report.bytes_reclaimed, report.elapsed,
    );
    Ok(())
}

fn cmd_prune_remote(remote: &Remote, keep: &str) -> CliResult {
    let keep: u32 = keep
        .parse()
        .map_err(|_| usage(format!("keep-last must be a number, got {keep}")))?;
    let mut client = connect(remote)?;
    let summary = client.prune(keep)?;
    println!(
        "pruned {} versions, dropped {} containers, reclaimed {} bytes on {}",
        summary.versions_removed, summary.containers_dropped, summary.bytes_reclaimed, remote.addr,
    );
    Ok(())
}

fn cmd_verify(repo: &str) -> CliResult {
    let mut system = open(repo)?;
    let report = system.scrub()?;
    println!(
        "checked {} containers, {} chunks, {} recipes",
        report.containers_checked, report.chunks_checked, report.recipes_checked,
    );
    if report.is_clean() {
        println!("repository is clean");
        Ok(())
    } else {
        for (container, fp) in &report.corrupt_chunks {
            eprintln!("CORRUPT: chunk {fp} in container {container}");
        }
        Err(runtime(format!(
            "{} corrupt chunks found",
            report.corrupt_chunks.len()
        )))
    }
}

fn cmd_verify_remote(remote: &Remote) -> CliResult {
    let mut client = connect(remote)?;
    let summary = client.verify()?;
    println!(
        "checked {} containers, {} chunks, {} recipes on {}",
        summary.containers_checked, summary.chunks_checked, summary.recipes_checked, remote.addr,
    );
    if summary.is_clean() {
        println!("repository is clean");
        Ok(())
    } else {
        for (container, fp) in &summary.corrupt_chunks {
            eprintln!("CORRUPT: chunk {fp} in container {container}");
        }
        Err(runtime(format!(
            "{} corrupt chunks found",
            summary.corrupt_chunks.len()
        )))
    }
}

fn cmd_tenant_list_remote(remote: &Remote, json: bool) -> CliResult {
    let mut client = connect(remote)?;
    let list = client.tenant_list()?;
    if json {
        println!("{}", list.to_json());
        return Ok(());
    }
    if list.tenants.is_empty() {
        println!("no tenants");
        return Ok(());
    }
    println!(
        "{:<24}  {:>8}  {:>14}  {:>5}",
        "tenant", "versions", "logical bytes", "live"
    );
    for t in &list.tenants {
        println!(
            "{:<24}  {:>8}  {:>14}  {:>5}",
            t.tenant,
            t.versions,
            t.logical_bytes,
            if t.live { "yes" } else { "no" }
        );
    }
    Ok(())
}

fn cmd_tenant_stats_remote(remote: &Remote, json: bool) -> CliResult {
    let mut client = connect(remote)?;
    let stats = client.tenant_stats()?;
    if json {
        println!("{}", stats.to_json());
        return Ok(());
    }
    if stats.tenants.is_empty() {
        println!("no tenant activity since the daemon started");
        return Ok(());
    }
    println!(
        "{:<24}  {:>6}  {:>6}  {:>12}  {:>12}  {:>6}  {:>6}",
        "tenant", "ok", "failed", "bytes in", "bytes out", "rback", "quota"
    );
    for t in &stats.tenants {
        println!(
            "{:<24}  {:>6}  {:>6}  {:>12}  {:>12}  {:>6}  {:>6}",
            t.tenant,
            t.requests_ok,
            t.requests_failed,
            t.bytes_in,
            t.bytes_out,
            t.rolled_back,
            t.quota_refused,
        );
    }
    Ok(())
}

fn cmd_shutdown_remote(remote: &Remote) -> CliResult {
    let client = connect(remote)?;
    client.shutdown()?;
    println!("hds-served at {} is draining", remote.addr);
    Ok(())
}

fn cmd_recluster(repo: &str) -> CliResult {
    let mut system = open(repo)?;
    let report = system.recluster_archival()?;
    system.save_repository(repo)?;
    println!(
        "reclustered {} tag groups: {} containers rewritten, {} chunks moved, \
         {} recipe entries updated",
        report.tag_groups,
        report.containers_rewritten,
        report.chunks_moved,
        report.recipe_entries_updated,
    );
    Ok(())
}

fn cmd_dedup_pass(repo: &str) -> CliResult {
    let mut system = open(repo)?;
    let report = system.out_of_line_pass()?;
    system.save_repository(repo)?;
    println!(
        "out-of-line pass: {} duplicate chunks removed ({} bytes reclaimed), \
         {} containers rewritten, {} removed, {} recipe entries updated, \
         {} bytes rewritten in {:?}",
        report.duplicate_chunks_removed,
        report.bytes_reclaimed,
        report.containers_rewritten,
        report.containers_removed,
        report.recipe_entries_updated,
        report.rewritten_bytes,
        report.elapsed,
    );
    Ok(())
}

fn cmd_flatten(repo: &str) -> CliResult {
    let mut system = open(repo)?;
    let (updated, elapsed) = system.flatten_recipes();
    system.save_repository(repo)?;
    println!("flattened recipe chains: {updated} entries updated in {elapsed:?}");
    Ok(())
}

fn cmd_serve(repo: &str, opts: &[String]) -> CliResult {
    let mut bind = "127.0.0.1".to_string();
    let mut port: u16 = 0;
    let mut config = ServerConfig::default();
    let mut it = opts.iter();
    while let Some(flag) = it.next() {
        match flag.as_str() {
            "--bind" => {
                bind = it
                    .next()
                    .ok_or_else(|| usage("--bind needs a value"))?
                    .clone();
            }
            "--port" => {
                let value = it.next().ok_or_else(|| usage("--port needs a value"))?;
                port = value
                    .parse()
                    .map_err(|_| usage(format!("--port must be a number, got {value}")))?;
            }
            "--workers" => {
                let value = it.next().ok_or_else(|| usage("--workers needs a value"))?;
                config.workers = value
                    .parse()
                    .map_err(|_| usage(format!("--workers must be a number, got {value}")))?;
            }
            "--quiet" => config.quiet = true,
            "--read-timeout" => {
                let value = it
                    .next()
                    .ok_or_else(|| usage("--read-timeout needs a value"))?;
                let secs: u64 = value
                    .parse()
                    .map_err(|_| usage(format!("--read-timeout must be a number, got {value}")))?;
                config.read_timeout = Some(Duration::from_secs(secs));
            }
            "--write-timeout" => {
                let value = it
                    .next()
                    .ok_or_else(|| usage("--write-timeout needs a value"))?;
                let secs: u64 = value
                    .parse()
                    .map_err(|_| usage(format!("--write-timeout must be a number, got {value}")))?;
                config.write_timeout = Some(Duration::from_secs(secs));
            }
            "--tenants" => config.tenants_root = true,
            "--max-tenants" => {
                let value = it
                    .next()
                    .ok_or_else(|| usage("--max-tenants needs a value"))?;
                config.max_live_tenants = value
                    .parse()
                    .ok()
                    .filter(|v| *v >= 1)
                    .ok_or_else(|| usage(format!("--max-tenants must be >= 1, got {value}")))?;
            }
            "--no-auto-tenants" => config.auto_create_tenants = false,
            "--quota-bytes" => {
                let value = it
                    .next()
                    .ok_or_else(|| usage("--quota-bytes needs a value"))?;
                config.default_quota.max_bytes = value
                    .parse()
                    .map_err(|_| usage(format!("--quota-bytes must be a number, got {value}")))?;
            }
            "--quota-versions" => {
                let value = it
                    .next()
                    .ok_or_else(|| usage("--quota-versions needs a value"))?;
                config.default_quota.max_versions = value.parse().map_err(|_| {
                    usage(format!("--quota-versions must be a number, got {value}"))
                })?;
            }
            other => return Err(usage(format!("unknown option {other}"))),
        }
    }
    config.bind = format!("{bind}:{port}");
    let handle = hidestore::server::serve(repo, config)?;
    // Scripts block on this exact line to learn the bound (ephemeral) port.
    println!("hds-served listening on {}", handle.addr());
    use std::io::Write;
    let _ = std::io::stdout().flush();
    let stats = handle.join();
    eprintln!("hds-served: drained; final counters: {stats}");
    Ok(())
}
