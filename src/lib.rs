#![forbid(unsafe_code)]
#![warn(missing_docs)]

//! **hidestore** — facade crate for the HiDeStore reproduction.
//!
//! This workspace reimplements, from scratch in Rust, the system described
//! in *"Improving the Restore Performance via Physical-Locality Middleware
//! for Backup Systems"* (Li, Hua, Cao, Zhang — Middleware 2020): the
//! **HiDeStore** deduplication backup system, together with the Destor-style
//! research platform and every baseline it is evaluated against.
//!
//! The facade re-exports the component crates:
//!
//! | module | contents |
//! |---|---|
//! | [`hash`] | SHA-1 / MD5, [`hash::Fingerprint`] |
//! | [`chunking`] | Fixed, Rabin, TTTD, FastCDC, AE chunkers |
//! | [`storage`] | containers, stores (memory/file), recipes |
//! | [`index`] | DDFS, Sparse Indexing, SiLo |
//! | [`rewriting`] | CBR, CFL, Capping, FBW |
//! | [`restore`] | container/chunk LRU, FAA, ALACC |
//! | [`dedup`] | the baseline backup/restore pipeline + mark-sweep GC |
//! | [`core`] | HiDeStore itself |
//! | [`workloads`] | kernel / gcc / fslhomes / macos generators |
//! | [`fsck`] | cross-layer invariant checker ([`fsck::SystemAuditor`]) |
//! | [`failpoint`] | [`failpoint::Vfs`] io-shim + fault injection for crash testing |
//! | [`tree`] | real filesystem trees: apath-ordered walk, manifests, subtree restore |
//! | [`proto`] | framed wire protocol: versioned HELLO, CRC-guarded frames, typed messages |
//! | [`tenant`] | multi-tenant registry: tenant ids → isolated repositories via a bounded LRU |
//! | [`server`] | `hds-served` daemon + [`server::RemoteClient`] |
//!
//! # Quickstart
//!
//! ```
//! use hidestore::core::{HiDeStore, HiDeStoreConfig};
//! use hidestore::restore::Faa;
//! use hidestore::storage::{MemoryContainerStore, VersionId};
//!
//! let mut system = HiDeStore::new(
//!     HiDeStoreConfig::small_for_tests(),
//!     MemoryContainerStore::new(),
//! );
//! system.backup(b"version one of my data, chunked and deduplicated")?;
//! let mut out = Vec::new();
//! system.restore(VersionId::new(1), &mut Faa::new(1 << 20), &mut out)?;
//! assert_eq!(&out[..], b"version one of my data, chunked and deduplicated");
//! # Ok::<(), hidestore::core::HiDeStoreError>(())
//! ```

pub use hidestore_chunking as chunking;
pub use hidestore_core as core;
pub use hidestore_dedup as dedup;
pub use hidestore_failpoint as failpoint;
pub use hidestore_fsck as fsck;
pub use hidestore_hash as hash;
pub use hidestore_index as index;
pub use hidestore_netfault as netfault;
pub use hidestore_proto as proto;
pub use hidestore_restore as restore;
pub use hidestore_rewriting as rewriting;
pub use hidestore_server as server;
pub use hidestore_storage as storage;
pub use hidestore_tenant as tenant;
pub use hidestore_tree as tree;
pub use hidestore_workloads as workloads;

/// Commonly used items in one import.
///
/// # Examples
///
/// ```
/// use hidestore::prelude::*;
///
/// let fp = Fingerprint::of(b"chunk");
/// assert_eq!(fp.as_bytes().len(), 20);
/// ```
pub mod prelude {
    pub use hidestore_chunking::{chunk_spans, Chunker, ChunkerKind, TttdChunker};
    pub use hidestore_core::{HiDeStore, HiDeStoreConfig, HiDeStoreError};
    pub use hidestore_dedup::{BackupPipeline, PipelineConfig, PipelineError};
    pub use hidestore_hash::Fingerprint;
    pub use hidestore_index::{
        DdfsIndex, FingerprintIndex, SiloConfig, SiloIndex, SparseConfig, SparseIndex,
    };
    pub use hidestore_restore::{
        restore_staged, Alacc, ChunkLru, ContainerLru, Faa, RestoreCache, RestoreConcurrency,
        RestoreReport,
    };
    pub use hidestore_rewriting::{Capping, Cbr, CflRewrite, Fbw, NoRewrite, RewritePolicy};
    pub use hidestore_storage::{
        Container, ContainerId, ContainerStore, FileContainerStore, MemoryContainerStore, Recipe,
        RecipeStore, VersionId,
    };
    pub use hidestore_workloads::{Profile, VersionStream, WorkloadSpec};
}
