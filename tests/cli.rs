//! Integration tests driving the `hidestore` CLI binary end-to-end.

use std::fs;
use std::path::PathBuf;
use std::process::{Command, Output};

fn bin() -> &'static str {
    env!("CARGO_BIN_EXE_hidestore")
}

fn run(args: &[&str]) -> Output {
    Command::new(bin())
        .args(args)
        .output()
        .expect("binary launches")
}

fn temp(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("hidestore-cli-{tag}-{}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    dir
}

fn noise(len: usize, seed: u64) -> Vec<u8> {
    let mut state = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
    (0..len)
        .map(|_| {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state >> 32) as u8
        })
        .collect()
}

#[test]
fn full_cli_lifecycle() {
    let repo = temp("lifecycle");
    let repo_s = repo.to_str().unwrap();
    let data_dir = temp("lifecycle-data");
    fs::create_dir_all(&data_dir).unwrap();

    // init
    let out = run(&["init", repo_s, "--chunk", "1024", "--container", "65536"]);
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );

    // three backups of an evolving file
    let mut content = noise(200_000, 1);
    for i in 0..3u64 {
        let f = data_dir.join(format!("v{i}.bin"));
        fs::write(&f, &content).unwrap();
        let out = run(&["backup", repo_s, f.to_str().unwrap()]);
        assert!(
            out.status.success(),
            "{}",
            String::from_utf8_lossy(&out.stderr)
        );
        content[5_000..9_000].copy_from_slice(&noise(4_000, 100 + i));
    }

    // list shows three versions
    let out = run(&["list", repo_s]);
    let text = String::from_utf8_lossy(&out.stdout).to_string();
    assert!(text.contains("V1") && text.contains("V3"), "{text}");

    // verify is clean
    let out = run(&["verify", repo_s]);
    assert!(out.status.success());
    assert!(String::from_utf8_lossy(&out.stdout).contains("clean"));

    // restore V1 and compare
    let restored = data_dir.join("restored.bin");
    let out = run(&["restore", repo_s, "1", restored.to_str().unwrap()]);
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert_eq!(
        fs::read(&restored).unwrap(),
        fs::read(data_dir.join("v0.bin")).unwrap()
    );

    // prune to the last 2; V1 must disappear, V2/V3 must survive
    let out = run(&["prune", repo_s, "2"]);
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let out = run(&["list", repo_s]);
    let text = String::from_utf8_lossy(&out.stdout).to_string();
    assert!(!text.contains("V1 "), "pruned version still listed: {text}");
    let out = run(&["restore", repo_s, "3", restored.to_str().unwrap()]);
    assert!(out.status.success());
    assert_eq!(
        fs::read(&restored).unwrap(),
        fs::read(data_dir.join("v2.bin")).unwrap()
    );

    // flatten succeeds
    let out = run(&["flatten", repo_s]);
    assert!(out.status.success());

    fs::remove_dir_all(&repo).unwrap();
    fs::remove_dir_all(&data_dir).unwrap();
}

#[test]
fn verify_detects_corruption() {
    let repo = temp("corrupt");
    let repo_s = repo.to_str().unwrap();
    run(&["init", repo_s, "--chunk", "1024", "--container", "32768"]);
    let f = repo.join("input.bin");
    fs::write(&f, noise(100_000, 9)).unwrap();
    run(&["backup", repo_s, f.to_str().unwrap()]);
    // Force chunks into archival containers: a second, different backup.
    fs::write(&f, noise(100_000, 10)).unwrap();
    run(&["backup", repo_s, f.to_str().unwrap()]);

    // Flip bytes inside an archival container's data section.
    let archival = repo.join("archival");
    let victim = fs::read_dir(&archival)
        .unwrap()
        .filter_map(Result::ok)
        .find(|e| e.file_name().to_string_lossy().ends_with(".ctr"))
        .expect("archival container exists");
    let mut bytes = fs::read(victim.path()).unwrap();
    let n = bytes.len();
    for b in &mut bytes[n - 64..] {
        *b ^= 0xFF;
    }
    fs::write(victim.path(), bytes).unwrap();

    let out = run(&["verify", repo_s]);
    assert!(!out.status.success(), "verify must fail on corruption");
    assert!(String::from_utf8_lossy(&out.stderr).contains("CORRUPT"));

    fs::remove_dir_all(&repo).unwrap();
}

#[test]
fn init_refuses_double_init_and_bad_args() {
    let repo = temp("doubleinit");
    let repo_s = repo.to_str().unwrap();
    assert!(run(&["init", repo_s]).status.success());
    assert!(
        !run(&["init", repo_s]).status.success(),
        "second init must fail"
    );
    assert!(!run(&["backup", "/definitely/not/a/repo", "/etc/hostname"])
        .status
        .success());
    assert!(!run(&["bogus-command"]).status.success());
    fs::remove_dir_all(&repo).unwrap();
}

#[test]
fn restore_unknown_version_fails_cleanly() {
    let repo = temp("unknown");
    let repo_s = repo.to_str().unwrap();
    run(&["init", repo_s]);
    let out = run(&["restore", repo_s, "7", "/tmp/never-written.bin"]);
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("error"));
    fs::remove_dir_all(&repo).unwrap();
}

/// Exit codes are part of the CLI contract: 2 for usage mistakes (with the
/// usage text), 1 for runtime failures (with an `error:` line), 0 for
/// success. Scripts and ci.sh branch on them.
#[test]
fn exit_codes_distinguish_usage_from_runtime_errors() {
    let repo = temp("exitcodes");
    let repo_s = repo.to_str().unwrap();

    // Usage errors -> exit 2 + usage text.
    for args in [
        &[] as &[&str],
        &["bogus-command"],
        &["init"],
        &["backup", repo_s],
        &["restore", repo_s, "1"],
        &["backup", "--remote"],
        &["restore", repo_s, "not-a-number", "/tmp/x"],
        &["prune", repo_s, "many"],
        &["list", repo_s, "extra-arg"],
        &["flatten", "--remote", "127.0.0.1:1", repo_s],
    ] {
        let out = run(args);
        assert_eq!(
            out.status.code(),
            Some(2),
            "usage error {args:?} must exit 2: {}",
            String::from_utf8_lossy(&out.stderr)
        );
        assert!(
            String::from_utf8_lossy(&out.stderr).contains("usage:"),
            "usage text expected for {args:?}"
        );
    }

    // Runtime errors -> exit 1 + error line, no usage text.
    assert!(run(&["init", repo_s]).status.success());
    for args in [
        &["backup", repo_s, "/definitely/missing/file.bin"] as &[&str],
        &["restore", repo_s, "7", "/tmp/never-written.bin"],
        &["prune", repo_s, "0"],
        &["init", repo_s],
        &["list", "--remote", "127.0.0.1:1"],
    ] {
        let out = run(args);
        assert_eq!(
            out.status.code(),
            Some(1),
            "runtime error {args:?} must exit 1: {}",
            String::from_utf8_lossy(&out.stderr)
        );
        let stderr = String::from_utf8_lossy(&out.stderr);
        assert!(
            stderr.contains("error:"),
            "error line expected for {args:?}"
        );
        assert!(
            !stderr.contains("usage:"),
            "runtime error {args:?} must not print usage"
        );
    }

    // Success -> exit 0.
    assert_eq!(run(&["list", repo_s]).status.code(), Some(0));
    fs::remove_dir_all(&repo).unwrap();
}

/// The `--json` schema is a stable machine interface shared with the wire
/// protocol's response types; this pins it byte-for-byte on an empty
/// repository and structurally once versions exist.
#[test]
fn json_output_schema_is_pinned() {
    let repo = temp("json");
    let repo_s = repo.to_str().unwrap();
    assert!(
        run(&["init", repo_s, "--chunk", "1024", "--container", "32768"])
            .status
            .success()
    );

    let out = run(&["list", repo_s, "--json"]);
    assert!(out.status.success());
    assert_eq!(
        String::from_utf8_lossy(&out.stdout).trim(),
        "{\"versions\":[],\"archival_containers\":0,\"active_containers\":0,\"hot_chunks\":0}"
    );
    let out = run(&["stats", repo_s, "--json"]);
    assert!(out.status.success());
    assert_eq!(
        String::from_utf8_lossy(&out.stdout).trim(),
        "{\"versions\":[],\"pool_containers\":0,\"pool_chunks\":0,\"pool_live_bytes\":0,\
         \"out_of_line_rewritten_bytes\":0}"
    );

    let f = repo.join("input.bin");
    fs::write(&f, noise(50_000, 4)).unwrap();
    assert!(run(&["backup", repo_s, f.to_str().unwrap()])
        .status
        .success());

    let out = run(&["list", repo_s, "--json"]);
    let text = String::from_utf8_lossy(&out.stdout).trim().to_string();
    assert!(
        text.starts_with("{\"versions\":[{\"version\":1,\"bytes\":50000,\"chunks\":"),
        "{text}"
    );
    assert!(text.contains("\"archival_containers\":"), "{text}");
    let out = run(&["stats", repo_s, "--json"]);
    let text = String::from_utf8_lossy(&out.stdout).trim().to_string();
    assert!(
        text.starts_with("{\"versions\":[{\"version\":1,\"bytes\":50000,\"chunks\":"),
        "{text}"
    );
    assert!(
        text.contains("\"cfl\":") && text.contains("\"mean_kib_per_container\":"),
        "{text}"
    );
    assert!(text.contains("\"pool_live_bytes\":50000"), "{text}");

    fs::remove_dir_all(&repo).unwrap();
}

/// `init --scheme`, `dedup-pass`, and the out-of-line byte accounting in
/// `stats --json`: a reverse-dedup rewrite is rewrite traffic, not new user
/// data, so it must appear in `out_of_line_rewritten_bytes` and leave the
/// pool counters untouched.
#[test]
fn scheme_lifecycle_with_out_of_line_pass() {
    let repo = temp("scheme");
    let repo_s = repo.to_str().unwrap();
    let out = run(&[
        "init",
        repo_s,
        "--chunk",
        "1024",
        "--container",
        "16384",
        "--scheme",
        "hybrid",
    ]);
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(String::from_utf8_lossy(&out.stdout).contains("scheme hybrid"));

    // Recurring content after a gap leaves cross-version duplicates that
    // only the out-of-line pass can reclaim.
    let f = repo.join("input.bin");
    let base = noise(60_000, 11);
    let extra = noise(20_000, 12);
    for round in 0..4u64 {
        let mut content = base.clone();
        content[(round as usize * 10_000)..][..5_000].copy_from_slice(&noise(5_000, 500 + round));
        if round % 2 == 0 {
            content.extend_from_slice(&extra);
        }
        fs::write(&f, &content).unwrap();
        assert!(run(&["backup", repo_s, f.to_str().unwrap()])
            .status
            .success());
    }

    let snapshot_v1 = {
        let restored = repo.join("v1-before.bin");
        run(&["restore", repo_s, "1", restored.to_str().unwrap()]);
        fs::read(&restored).unwrap()
    };
    let out = run(&["dedup-pass", repo_s]);
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout).to_string();
    assert!(text.contains("duplicate chunks removed"), "{text}");
    assert!(text.contains("bytes rewritten"), "{text}");

    // Every version still restores byte-exact and the repo verifies clean.
    let restored = repo.join("v1-after.bin");
    assert!(run(&["restore", repo_s, "1", restored.to_str().unwrap()])
        .status
        .success());
    assert_eq!(fs::read(&restored).unwrap(), snapshot_v1);
    assert!(run(&["verify", repo_s]).status.success());

    // Scheme repos bypass the active pool entirely, and the rewrite counter
    // is per-process (this `stats` invocation did no out-of-line work), so
    // the trailing fields are exact.
    let out = run(&["stats", repo_s, "--json"]);
    let text = String::from_utf8_lossy(&out.stdout).trim().to_string();
    assert!(
        text.ends_with(
            "\"pool_containers\":0,\"pool_chunks\":0,\"pool_live_bytes\":0,\
             \"out_of_line_rewritten_bytes\":0}"
        ),
        "{text}"
    );

    // The inline scheme rejects the pass with a runtime error.
    let other = temp("scheme-inline");
    let other_s = other.to_str().unwrap();
    assert!(run(&["init", other_s]).status.success());
    let out = run(&["dedup-pass", other_s]);
    assert_eq!(out.status.code(), Some(1));
    assert!(String::from_utf8_lossy(&out.stderr).contains("no out-of-line pass"));

    // Bad scheme names are usage errors.
    let bogus = temp("scheme-bogus");
    let out = run(&["init", bogus.to_str().unwrap(), "--scheme", "lru"]);
    assert_eq!(out.status.code(), Some(2));

    fs::remove_dir_all(&repo).unwrap();
    fs::remove_dir_all(&other).unwrap();
    let _ = fs::remove_dir_all(&bogus);
}

#[test]
fn recluster_keeps_repository_restorable() {
    let repo = temp("recluster");
    let repo_s = repo.to_str().unwrap();
    run(&["init", repo_s, "--chunk", "1024", "--container", "8192"]);
    let f = repo.join("input.bin");
    let mut content = noise(120_000, 77);
    for i in 0..4u64 {
        fs::write(&f, &content).unwrap();
        assert!(run(&["backup", repo_s, f.to_str().unwrap()])
            .status
            .success());
        content[(i as usize * 25_000) % 90_000..][..20_000]
            .copy_from_slice(&noise(20_000, 300 + i));
    }
    let snapshot_v1 = {
        let restored = repo.join("v1-before.bin");
        run(&["restore", repo_s, "1", restored.to_str().unwrap()]);
        fs::read(&restored).unwrap()
    };
    let out = run(&["recluster", repo_s]);
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let restored = repo.join("v1-after.bin");
    assert!(run(&["restore", repo_s, "1", restored.to_str().unwrap()])
        .status
        .success());
    assert_eq!(fs::read(&restored).unwrap(), snapshot_v1);
    // Still verifies clean.
    assert!(run(&["verify", repo_s]).status.success());
    fs::remove_dir_all(&repo).unwrap();
}

#[test]
fn tree_backup_restore_lifecycle() {
    let repo = temp("tree");
    let repo_s = repo.to_str().unwrap();
    let work = temp("tree-work");
    let src = work.join("src");
    fs::create_dir_all(src.join("code/deep")).unwrap();
    fs::create_dir_all(src.join("empty-dir")).unwrap();
    fs::write(src.join("top.txt"), b"top file").unwrap();
    fs::write(src.join("code/main.rs"), noise(5_000, 50)).unwrap();
    fs::write(src.join("code/deep/util.rs"), noise(3_000, 51)).unwrap();
    fs::write(src.join("debug.log"), b"excluded").unwrap();
    #[cfg(unix)]
    std::os::unix::fs::symlink("top.txt", src.join("link")).unwrap();

    let out = run(&["init", repo_s, "--chunk", "1024", "--container", "16384"]);
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );

    // backup-tree with an exclude
    let out = run(&[
        "backup-tree",
        repo_s,
        src.to_str().unwrap(),
        "--exclude",
        "*.log",
    ]);
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout).to_string();
    assert!(
        text.contains("3 files") && text.contains("1 excluded"),
        "{text}"
    );

    // full restore round-trips content and omits the excluded file
    let dest = work.join("dest");
    let out = run(&["restore-tree", repo_s, "1", dest.to_str().unwrap()]);
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert_eq!(fs::read(dest.join("top.txt")).unwrap(), b"top file");
    assert_eq!(
        fs::read(dest.join("code/deep/util.rs")).unwrap(),
        noise(3_000, 51)
    );
    assert!(dest.join("empty-dir").is_dir());
    assert!(!dest.join("debug.log").exists());
    #[cfg(unix)]
    assert_eq!(
        fs::read_link(dest.join("link")).unwrap().to_str().unwrap(),
        "top.txt"
    );

    // subtree restore lands the subtree at the destination
    let sub = work.join("sub");
    let out = run(&[
        "restore-tree",
        repo_s,
        "1",
        sub.to_str().unwrap(),
        "--subtree",
        "/code",
    ]);
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert_eq!(fs::read(sub.join("main.rs")).unwrap(), noise(5_000, 50));
    assert!(!sub.join("top.txt").exists());

    // a missing subtree is a runtime error (exit 1)
    let out = run(&[
        "restore-tree",
        repo_s,
        "1",
        work.join("nope").to_str().unwrap(),
        "--subtree",
        "/does/not/exist",
    ]);
    assert_eq!(out.status.code(), Some(1));
    assert!(String::from_utf8_lossy(&out.stderr).starts_with("error:"));

    // an unreadable entry (fifo) is skipped, reported, and exits non-zero,
    // but the backup itself is saved
    #[cfg(unix)]
    {
        let fifo = src.join("pipe");
        let status = std::process::Command::new("mkfifo")
            .arg(&fifo)
            .status()
            .expect("mkfifo runs");
        assert!(status.success());
        let out = run(&[
            "backup-tree",
            repo_s,
            src.to_str().unwrap(),
            "--exclude",
            "*.log",
        ]);
        assert_eq!(out.status.code(), Some(1));
        let err = String::from_utf8_lossy(&out.stderr).to_string();
        assert!(err.contains("skipped /pipe"), "{err}");
        let out = run(&["list", repo_s]);
        assert!(
            String::from_utf8_lossy(&out.stdout).contains("V2"),
            "the partial backup must still be saved"
        );
    }

    // usage errors exit 2
    let out = run(&["backup-tree", repo_s]);
    assert_eq!(out.status.code(), Some(2));
    let out = run(&["restore-tree", repo_s, "1"]);
    assert_eq!(out.status.code(), Some(2));

    let _ = fs::remove_dir_all(&repo);
    let _ = fs::remove_dir_all(&work);
}
