//! Crash-consistency matrix: enumerate every filesystem operation in a full
//! open → backup → save → delete lifecycle, crash at each one, reopen, and
//! require the repository to come back *clean* in exactly one of the states
//! a save boundary could have left — never a torn mix.
//!
//! "Clean" is checked three ways after every crash:
//!
//! 1. reopening succeeds (degraded-mode recovery resolves the journal and
//!    quarantines uncommitted residue instead of failing),
//! 2. `SystemAuditor` reports no `Error`-severity findings (only quarantine
//!    warnings are tolerated — contained damage, not integrity loss),
//! 3. the set of retained versions *and their restored bytes* equals one of
//!    the pre-computed save-boundary states.
//!
//! The fault injection runs through [`hidestore::failpoint::FaultVfs`]: a
//! counting run numbers every filesystem operation of the scripted
//! sequence, then one run per site crashes there (all I/O after the fault
//! fails, modeling process death). Torn-write variants re-run every write
//! site persisting only a prefix of the payload.

use std::collections::BTreeMap;
use std::path::{Path, PathBuf};

use hidestore::core::{HiDeStore, HiDeStoreConfig, HiDeStoreError, JournalRecovery, OpenReport};
use hidestore::failpoint::{FaultKind, FaultVfs, OpKind, Vfs};
use hidestore::fsck::{FindingKind, Severity, SystemAuditor};
use hidestore::hash::crc32;
use hidestore::restore::Faa;
use hidestore::storage::VersionId;

/// A unique scratch directory, removed on drop.
struct Scratch(PathBuf);

impl Scratch {
    fn new(tag: &str) -> Self {
        let dir = std::env::temp_dir().join(format!("hds-crash-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        Scratch(dir)
    }
}

impl Drop for Scratch {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

fn config() -> HiDeStoreConfig {
    HiDeStoreConfig {
        avg_chunk_size: 1024,
        container_capacity: 16 * 1024,
        ..HiDeStoreConfig::default()
    }
}

fn noise(len: usize, seed: u64) -> Vec<u8> {
    let mut state = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
    (0..len)
        .map(|_| {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state >> 32) as u8
        })
        .collect()
}

/// The three version payloads of the scripted sequence: churned evolutions
/// of one base, so each backup demotes cold chunks into archival containers.
fn version_payloads() -> Vec<Vec<u8>> {
    let mut data = noise(30_000, 1);
    let mut out = Vec::new();
    for round in 0..3u64 {
        out.push(data.clone());
        let start = (round as usize * 7_000) % 20_000;
        let patch = noise(6_000, 100 + round);
        data[start..start + patch.len()].copy_from_slice(&patch);
    }
    out
}

/// The scripted lifecycle under test. `saves` caps how many save boundaries
/// run (used to build the reference states); `usize::MAX` runs everything:
/// three backup+save rounds, then delete_expired(V1) + save.
fn run_sequence<V: Vfs>(dir: &Path, vfs: V, saves: usize) -> Result<(), HiDeStoreError> {
    run_sequence_cfg(dir, vfs, saves, config())
}

/// [`run_sequence`] with an explicit configuration, so the matrix can also
/// run with the backup phase on the staged concurrent pipeline.
fn run_sequence_cfg<V: Vfs>(
    dir: &Path,
    vfs: V,
    saves: usize,
    cfg: HiDeStoreConfig,
) -> Result<(), HiDeStoreError> {
    let payloads = version_payloads();
    let (mut hds, _) = HiDeStore::open_repository_with(cfg, dir, vfs)?;
    let mut done = 0;
    for data in &payloads {
        if done >= saves {
            return Ok(());
        }
        hds.backup(data)?;
        hds.save_repository(dir)?;
        done += 1;
    }
    if done >= saves {
        return Ok(());
    }
    hds.delete_expired(VersionId::new(1))?;
    hds.save_repository(dir)?;
    Ok(())
}

/// Reopens `dir` and captures its logical state: version -> CRC-32 of the
/// restored bytes. Also asserts the audit carries no `Error` finding and
/// nothing beyond quarantine warnings.
fn reopen_and_check(dir: &Path, context: &str) -> (BTreeMap<u32, u32>, OpenReport) {
    let (mut hds, report) = HiDeStore::open_repository_report(config(), dir)
        .unwrap_or_else(|e| panic!("{context}: reopen after crash must succeed: {e}"));
    let audit = SystemAuditor::new().audit(&mut hds);
    assert_eq!(
        audit.count(Severity::Error),
        0,
        "{context}: audit must be error-free, got:\n{:#?}",
        audit.findings
    );
    assert!(
        audit.findings.iter().all(|f| matches!(
            f.kind,
            FindingKind::QuarantinedArtifact { .. } | FindingKind::QuarantinedRef { .. }
        )),
        "{context}: only quarantine warnings tolerated, got:\n{:#?}",
        audit.findings
    );
    let mut state = BTreeMap::new();
    for v in hds.versions() {
        let mut out = Vec::new();
        hds.restore(v, &mut Faa::new(1 << 18), &mut out)
            .unwrap_or_else(|e| panic!("{context}: retained {v} must restore: {e}"));
        state.insert(v.get(), crc32(&out));
    }
    (state, report)
}

/// The states a crash is allowed to land in: one per save boundary (0 saves
/// = fresh repository, up through the full sequence).
fn boundary_states(tag: &str) -> Vec<BTreeMap<u32, u32>> {
    (0..=4)
        .map(|saves| {
            let scratch = Scratch::new(&format!("{tag}-boundary-{saves}"));
            run_sequence(&scratch.0, hidestore::failpoint::RealVfs, saves)
                .expect("unfaulted boundary build");
            reopen_and_check(&scratch.0, &format!("boundary {saves}")).0
        })
        .collect()
}

fn assert_at_boundary(state: &BTreeMap<u32, u32>, boundaries: &[BTreeMap<u32, u32>], ctx: &str) {
    assert!(
        boundaries.contains(state),
        "{ctx}: recovered state {:?} matches no save boundary {:?}",
        state,
        boundaries
            .iter()
            .map(|b| b.keys().collect::<Vec<_>>())
            .collect::<Vec<_>>()
    );
}

/// One crash run: arm the fault, run the sequence (it must fail — the crash
/// model kills every op after the fault), reopen, check.
fn crash_at(site: u64, kind: FaultKind, boundaries: &[BTreeMap<u32, u32>], tag: &str) {
    let scratch = Scratch::new(&format!("{tag}-site-{site}"));
    let vfs = FaultVfs::armed(site, kind);
    let result = run_sequence(&scratch.0, vfs.clone(), usize::MAX);
    assert!(
        vfs.crashed(),
        "{tag} site {site}: the fault must have fired"
    );
    assert!(
        result.is_err(),
        "{tag} site {site}: a crashed sequence cannot succeed"
    );
    let ctx = format!("{tag} site {site}");
    let (state, _) = reopen_and_check(&scratch.0, &ctx);
    assert_at_boundary(&state, boundaries, &ctx);
}

#[test]
fn crash_matrix_every_site() {
    // Counting run: number every filesystem op of the full sequence.
    let scratch = Scratch::new("count");
    let vfs = FaultVfs::counting();
    run_sequence(&scratch.0, vfs.clone(), usize::MAX).expect("counting run");
    let total = vfs.ops();
    assert!(
        total > 50,
        "sequence too small to be interesting: {total} ops"
    );
    drop(scratch);

    let boundaries = boundary_states("matrix");
    for site in 0..total {
        crash_at(site, FaultKind::Error, &boundaries, "matrix");
    }
}

#[test]
fn crash_matrix_torn_writes() {
    // Same matrix, but every write site persists only half its payload
    // before the crash — the torn-write model of a power failure.
    let scratch = Scratch::new("torn-count");
    let vfs = FaultVfs::counting();
    run_sequence(&scratch.0, vfs.clone(), usize::MAX).expect("counting run");
    let writes: Vec<(u64, usize)> = vfs
        .trace()
        .into_iter()
        .filter(|op| op.kind == OpKind::Write && op.len >= 2)
        .map(|op| (op.index, op.len))
        .collect();
    assert!(!writes.is_empty());
    drop(scratch);

    let boundaries = boundary_states("torn");
    for (site, len) in writes {
        crash_at(site, FaultKind::Torn(len / 2), &boundaries, "torn");
    }
}

/// Seeded pseudo-random variant: random payload shapes, random crash sites.
/// Vendored xorshift64* keeps it deterministic without external crates.
#[test]
fn crash_matrix_seeded_random_sites() {
    struct Rng(u64);
    impl Rng {
        fn next(&mut self) -> u64 {
            self.0 ^= self.0 >> 12;
            self.0 ^= self.0 << 25;
            self.0 ^= self.0 >> 27;
            self.0.wrapping_mul(0x2545_F491_4F6C_DD1D)
        }
    }
    let mut rng = Rng(0x9E37_79B9_7F4A_7C15);

    let scratch = Scratch::new("seeded-count");
    let vfs = FaultVfs::counting();
    run_sequence(&scratch.0, vfs.clone(), usize::MAX).expect("counting run");
    let total = vfs.ops();
    let trace = vfs.trace();
    drop(scratch);

    let boundaries = boundary_states("seeded");
    for trial in 0..24 {
        let site = rng.next() % total;
        // Half the trials tear the write (if the site is one) at a random
        // offset; the rest crash with a plain error.
        let kind = match trace.iter().find(|op| op.index == site) {
            Some(op) if op.kind == OpKind::Write && op.len > 0 && trial % 2 == 0 => {
                FaultKind::Torn((rng.next() % op.len as u64) as usize)
            }
            _ => FaultKind::Error,
        };
        crash_at(site, kind, &boundaries, "seeded");
    }
}

/// The same matrix with the backup phase on the staged concurrent pipeline:
/// the pipeline only changes *who computes* the in-memory state, never the
/// state itself, so the filesystem op trace — and therefore every fault
/// site and the whole journal protocol — must be unaffected.
#[test]
fn crash_matrix_threaded_backup_variant() {
    let threaded = config().with_threads(8).with_queue_depth(2);

    // The threaded counting run must produce exactly the serial op trace
    // (paths compared relative to each run's scratch directory).
    let mt_scratch = Scratch::new("mt-count");
    let vfs = FaultVfs::counting();
    run_sequence_cfg(&mt_scratch.0, vfs.clone(), usize::MAX, threaded).expect("mt counting run");
    let mt_trace = vfs.trace();
    let serial_scratch = Scratch::new("mt-serial-count");
    let vfs = FaultVfs::counting();
    run_sequence(&serial_scratch.0, vfs.clone(), usize::MAX).expect("serial counting run");
    let serial_trace = vfs.trace();
    assert_eq!(
        mt_trace.len(),
        serial_trace.len(),
        "threaded backup changed the filesystem op count"
    );
    let rel = |path: &Path, scratch: &Scratch| {
        path.strip_prefix(&scratch.0).unwrap_or(path).to_path_buf()
    };
    for (mt, serial) in mt_trace.iter().zip(&serial_trace) {
        assert_eq!(
            (mt.index, mt.kind, rel(&mt.path, &mt_scratch), mt.len),
            (
                serial.index,
                serial.kind,
                rel(&serial.path, &serial_scratch),
                serial.len
            ),
            "threaded backup diverged from the serial op trace"
        );
    }
    drop(mt_scratch);
    drop(serial_scratch);

    // Seeded crash-site sample through the threaded sequence; recovery must
    // land on the same save boundaries as ever.
    struct Rng(u64);
    impl Rng {
        fn next(&mut self) -> u64 {
            self.0 ^= self.0 >> 12;
            self.0 ^= self.0 << 25;
            self.0 ^= self.0 >> 27;
            self.0.wrapping_mul(0x2545_F491_4F6C_DD1D)
        }
    }
    let mut rng = Rng(0x5EED_CAFE);
    let boundaries = boundary_states("mt");
    let total = mt_trace.len() as u64;
    for trial in 0..12 {
        let site = rng.next() % total;
        let kind = match mt_trace.iter().find(|op| op.index == site) {
            Some(op) if op.kind == OpKind::Write && op.len > 0 && trial % 2 == 0 => {
                FaultKind::Torn((rng.next() % op.len as u64) as usize)
            }
            _ => FaultKind::Error,
        };
        let scratch = Scratch::new(&format!("mt-site-{site}"));
        let vfs = FaultVfs::armed(site, kind);
        let result = run_sequence_cfg(&scratch.0, vfs.clone(), usize::MAX, threaded);
        assert!(
            vfs.crashed() && result.is_err(),
            "mt site {site}: the fault must fire and fail the sequence"
        );
        let ctx = format!("mt site {site}");
        let (state, _) = reopen_and_check(&scratch.0, &ctx);
        assert_at_boundary(&state, &boundaries, &ctx);
    }
}

// ---------------------------------------------------------------------------
// Out-of-line schemes: the reverse-dedup pass crashed at every site.
// ---------------------------------------------------------------------------

/// Payloads with content recurring after a gap, so the out-of-line pass has
/// real duplicates to reclaim under both revdedup and hybrid.
fn scheme_payloads() -> Vec<Vec<u8>> {
    let base = noise(24_000, 5);
    let extra = noise(8_000, 6);
    let mut out = Vec::new();
    for round in 0..3u64 {
        let mut data = base.clone();
        let start = (round as usize * 6_000) % 18_000;
        data[start..start + 4_000].copy_from_slice(&noise(4_000, 700 + round));
        if round % 2 == 0 {
            data.extend_from_slice(&extra);
        }
        out.push(data);
    }
    out
}

/// The scripted out-of-line lifecycle: three backup+save rounds, then the
/// reverse-dedup pass + save, then delete_expired(V1) + save — five save
/// boundaries in all.
fn run_scheme_sequence<V: Vfs>(
    dir: &Path,
    vfs: V,
    saves: usize,
    scheme: hidestore::core::DedupMode,
) -> Result<(), HiDeStoreError> {
    let payloads = scheme_payloads();
    let (mut hds, _) = HiDeStore::open_repository_with(config().with_scheme(scheme), dir, vfs)?;
    let mut done = 0;
    for data in &payloads {
        if done >= saves {
            return Ok(());
        }
        hds.backup(data)?;
        hds.save_repository(dir)?;
        done += 1;
    }
    if done >= saves {
        return Ok(());
    }
    hds.out_of_line_pass()?;
    hds.save_repository(dir)?;
    done += 1;
    if done >= saves {
        return Ok(());
    }
    hds.delete_expired(VersionId::new(1))?;
    hds.save_repository(dir)?;
    Ok(())
}

/// [`reopen_and_check`] for a scheme repository (same audit bar: no errors,
/// nothing beyond quarantine warnings — half-rewritten containers from a
/// mid-pass crash must come back quarantined, never live).
fn reopen_and_check_scheme(
    dir: &Path,
    scheme: hidestore::core::DedupMode,
    context: &str,
) -> BTreeMap<u32, u32> {
    let (mut hds, _) = HiDeStore::open_repository_report(config().with_scheme(scheme), dir)
        .unwrap_or_else(|e| panic!("{context}: reopen after crash must succeed: {e}"));
    let audit = SystemAuditor::new().audit(&mut hds);
    assert_eq!(
        audit.count(Severity::Error),
        0,
        "{context}: audit must be error-free, got:\n{:#?}",
        audit.findings
    );
    assert!(
        audit.findings.iter().all(|f| matches!(
            f.kind,
            FindingKind::QuarantinedArtifact { .. } | FindingKind::QuarantinedRef { .. }
        )),
        "{context}: only quarantine warnings tolerated, got:\n{:#?}",
        audit.findings
    );
    let mut state = BTreeMap::new();
    for v in hds.versions() {
        let mut out = Vec::new();
        hds.restore(v, &mut Faa::new(1 << 18), &mut out)
            .unwrap_or_else(|e| panic!("{context}: retained {v} must restore: {e}"));
        state.insert(v.get(), crc32(&out));
    }
    state
}

/// Crash the out-of-line lifecycle at every filesystem op site, for both
/// out-of-line schemes: recovery must land exactly on a save boundary — a
/// crash mid-reverse-dedup either rolls back (fresh-id rewrites quarantined)
/// or rolls forward (journaled removals applied), never a torn mix.
#[test]
fn crash_matrix_out_of_line_pass_every_site() {
    use hidestore::core::DedupMode;

    for scheme in [DedupMode::RevDedup, DedupMode::Hybrid] {
        let tag = format!("oop-{scheme}");
        let scratch = Scratch::new(&format!("{tag}-count"));
        let vfs = FaultVfs::counting();
        run_scheme_sequence(&scratch.0, vfs.clone(), usize::MAX, scheme).expect("counting run");
        let total = vfs.ops();
        assert!(total > 50, "{tag}: sequence too small: {total} ops");
        drop(scratch);

        let boundaries: Vec<BTreeMap<u32, u32>> = (0..=5)
            .map(|saves| {
                let scratch = Scratch::new(&format!("{tag}-boundary-{saves}"));
                run_scheme_sequence(&scratch.0, hidestore::failpoint::RealVfs, saves, scheme)
                    .expect("unfaulted boundary build");
                reopen_and_check_scheme(&scratch.0, scheme, &format!("{tag} boundary {saves}"))
            })
            .collect();

        for site in 0..total {
            let scratch = Scratch::new(&format!("{tag}-site-{site}"));
            let vfs = FaultVfs::armed(site, FaultKind::Error);
            let result = run_scheme_sequence(&scratch.0, vfs.clone(), usize::MAX, scheme);
            assert!(
                vfs.crashed() && result.is_err(),
                "{tag} site {site}: the fault must fire and fail the sequence"
            );
            let ctx = format!("{tag} site {site}");
            let state = reopen_and_check_scheme(&scratch.0, scheme, &ctx);
            assert_at_boundary(&state, &boundaries, &ctx);
        }
    }
}

// ---------------------------------------------------------------------------
// Targeted commit-protocol cases: the three classically wrong crash windows.
// ---------------------------------------------------------------------------

/// Locates interesting sites within the *second* save of a two-save
/// sequence: the COMMIT record write, the first publish rename after it, and
/// the first directory fsync after the last publish rename.
fn second_save_sites() -> (u64, u64, u64, usize) {
    let scratch = Scratch::new("targeted-count");
    let vfs = FaultVfs::counting();
    run_sequence(&scratch.0, vfs.clone(), 2).expect("counting run");
    let trace = vfs.trace();
    let commit_writes: Vec<&hidestore::failpoint::OpRecord> = trace
        .iter()
        .filter(|op| op.kind == OpKind::Write && op.path.ends_with("COMMIT"))
        .collect();
    assert_eq!(commit_writes.len(), 2, "one COMMIT per save");
    let commit = commit_writes[1];
    let renames_after: Vec<u64> = trace
        .iter()
        .filter(|op| op.kind == OpKind::Rename && op.index > commit.index)
        .map(|op| op.index)
        .collect();
    assert!(
        !renames_after.is_empty(),
        "the publish renames staged files"
    );
    let first_rename = renames_after[0];
    let last_rename = *renames_after.last().expect("non-empty");
    let sync_after_publish = trace
        .iter()
        .find(|op| op.kind == OpKind::SyncDir && op.index > last_rename)
        .expect("publish fsyncs the touched directories")
        .index;
    (commit.index, first_rename, sync_after_publish, commit.len)
}

fn two_save_boundaries() -> (BTreeMap<u32, u32>, BTreeMap<u32, u32>) {
    let b1 = {
        let s = Scratch::new("targeted-b1");
        run_sequence(&s.0, hidestore::failpoint::RealVfs, 1).expect("build");
        reopen_and_check(&s.0, "targeted boundary 1").0
    };
    let b2 = {
        let s = Scratch::new("targeted-b2");
        run_sequence(&s.0, hidestore::failpoint::RealVfs, 2).expect("build");
        reopen_and_check(&s.0, "targeted boundary 2").0
    };
    (b1, b2)
}

fn targeted_crash(site: u64, kind: FaultKind, tag: &str) -> (BTreeMap<u32, u32>, OpenReport) {
    let scratch = Scratch::new(tag);
    let vfs = FaultVfs::armed(site, kind);
    let result = run_sequence(&scratch.0, vfs.clone(), 2);
    assert!(vfs.crashed() && result.is_err(), "{tag}: fault must fire");
    reopen_and_check(&scratch.0, tag)
}

#[test]
fn torn_commit_record_rolls_back_to_pre_save_state() {
    let (commit_site, _, _, commit_len) = second_save_sites();
    let (b1, _) = two_save_boundaries();
    // Half a COMMIT record on disk: its trailing CRC cannot validate, so the
    // transaction never committed and recovery must discard it.
    let (state, report) =
        targeted_crash(commit_site, FaultKind::Torn(commit_len / 2), "torn-commit");
    assert_eq!(report.journal, JournalRecovery::RolledBack);
    assert_eq!(state, b1, "a torn commit record must land pre-save");
}

#[test]
fn crash_before_publish_rolls_forward() {
    let (_, first_rename, _, _) = second_save_sites();
    let (_, b2) = two_save_boundaries();
    // The fsynced COMMIT record is the commit point: dying before the first
    // publish rename must still surface the *new* state after recovery.
    let (state, report) = targeted_crash(first_rename, FaultKind::Error, "pre-publish");
    assert_eq!(report.journal, JournalRecovery::RolledForward);
    assert_eq!(state, b2, "a committed transaction must roll forward");
}

#[test]
fn crash_after_publish_before_dir_fsync_rolls_forward() {
    let (_, _, sync_site, _) = second_save_sites();
    let (_, b2) = two_save_boundaries();
    // Every staged file is renamed into place but no directory fsync has
    // happened: the journal is still present, so replaying the (idempotent)
    // apply completes the publish.
    let (state, report) = targeted_crash(sync_site, FaultKind::Error, "post-publish");
    assert_eq!(report.journal, JournalRecovery::RolledForward);
    assert_eq!(state, b2, "replayed publish must complete");
}

// ---------------------------------------------------------------------------
// Staged restore engine under container-read faults.
// ---------------------------------------------------------------------------

/// A fault in a prefetcher's container read must cancel the restore
/// pipeline, join every thread (a hang here times the test out), surface a
/// typed error, and — because restore output stages to `<path>.tmp` and only
/// renames on success — leave no partial output file behind.
#[test]
fn restore_read_fault_cancels_pipeline_and_leaves_no_partial_output() {
    use hidestore::restore::RestoreConcurrency;

    let scratch = Scratch::new("restore-fault");
    run_sequence(&scratch.0, hidestore::failpoint::RealVfs, 3).expect("build repo");
    let conc = RestoreConcurrency::threads(8).with_queue_depth(2);

    // Counting pass: number the filesystem reads of open + one staged
    // restore of the oldest (most archival-dependent) version.
    let vfs = FaultVfs::counting();
    let outfile = scratch.0.join("restored.bin");
    let restore_once = |vfs: FaultVfs, out: &Path| -> Result<(), HiDeStoreError> {
        let (mut hds, _) = HiDeStore::open_repository_with(config(), &scratch.0, vfs)?;
        hds.restore_to_path(VersionId::new(1), &mut Faa::new(1 << 18), out, &conc)?;
        Ok(())
    };
    restore_once(vfs.clone(), &outfile).expect("unfaulted staged restore");
    let expected = std::fs::read(&outfile).expect("restored output exists");
    assert!(!expected.is_empty());
    std::fs::remove_file(&outfile).expect("clean up reference output");
    let container_reads: Vec<u64> = vfs
        .trace()
        .into_iter()
        .filter(|op| op.kind == OpKind::Read && op.path.extension().is_some_and(|x| x == "ctr"))
        .map(|op| op.index)
        .collect();
    assert!(
        container_reads.len() > 2,
        "restore must read containers through the vfs: {container_reads:?}"
    );

    // Fault every container-read site. Early sites fault reads issued
    // during open/recovery; later ones hit the engine's prefetchers — all
    // must fail typed with no output file residue.
    for site in container_reads {
        let vfs = FaultVfs::armed(site, FaultKind::Error);
        let err =
            restore_once(vfs.clone(), &outfile).expect_err("a faulted restore cannot succeed");
        assert!(
            vfs.crashed(),
            "site {site}: the container-read fault must fire"
        );
        assert!(
            matches!(err, HiDeStoreError::Storage(_) | HiDeStoreError::Restore(_)),
            "site {site}: expected a typed storage/restore error, got: {err}"
        );
        assert!(
            !outfile.exists(),
            "site {site}: failed restore left a partial output file"
        );
        assert!(
            !outfile.with_extension("tmp").exists(),
            "site {site}: failed restore left its staging file"
        );
    }

    // And with the faults gone, the same staged restore succeeds again.
    restore_once(FaultVfs::counting(), &outfile).expect("post-fault staged restore");
    assert_eq!(
        std::fs::read(&outfile).expect("restored output"),
        expected,
        "recovered restore must reproduce the reference bytes"
    );
}

// ---------------------------------------------------------------------------
// Tree lifecycle: the same crash discipline for directory-tree backups.
// ---------------------------------------------------------------------------

/// Builds the small source tree the matrix backs up: nested dirs, an empty
/// file, an empty dir, and a symlink — every entry shape the manifest
/// stores. Built with `std::fs`, so fixture construction adds no ops to the
/// faulted sequence.
fn build_tree_fixture(src: &Path) {
    for (rel, seed, len) in [
        ("notes.txt", 21u64, 2_500usize),
        ("src/alpha.rs", 22, 5_000),
        ("src/beta.rs", 23, 3_000),
        ("src/deep/gamma.rs", 24, 4_000),
        ("empty.dat", 25, 0),
    ] {
        let path = src.join(rel);
        std::fs::create_dir_all(path.parent().expect("fixture parent")).expect("fixture dirs");
        std::fs::write(&path, noise(len, seed)).expect("fixture file");
    }
    std::fs::create_dir_all(src.join("bare-dir")).expect("fixture empty dir");
    #[cfg(unix)]
    std::os::unix::fs::symlink("src/alpha.rs", src.join("link")).expect("fixture symlink");
}

/// The scripted tree lifecycle: open → backup-tree ×2 (identical source, so
/// the second round exercises dedup against the first) → restore-tree V1.
/// Source reads, repository I/O, and destination writes all flow through
/// the same `vfs`. Returns whether every per-entry operation completed —
/// a crashed run must come back `Err` *or* `Ok(false)` (tree ops skip
/// failing entries instead of aborting).
fn run_tree_sequence<V: Vfs>(
    repo: &Path,
    src: &Path,
    dest: &Path,
    vfs: V,
    saves: usize,
) -> Result<bool, String> {
    use hidestore::tree::{backup_tree, restore_tree, TreeBackupOptions, TreeRestoreOptions};
    let (mut hds, _) =
        HiDeStore::open_repository_with(config(), repo, vfs.clone()).map_err(|e| e.to_string())?;
    let mut complete = true;
    let mut done = 0;
    for _ in 0..2 {
        if done >= saves {
            return Ok(complete);
        }
        let report = backup_tree(&mut hds, &vfs, src, &TreeBackupOptions::default())
            .map_err(|e| e.to_string())?;
        complete &= report.is_complete();
        hds.save_repository(repo).map_err(|e| e.to_string())?;
        done += 1;
    }
    if done >= saves {
        return Ok(complete);
    }
    let report = restore_tree(
        &mut hds,
        &vfs,
        VersionId::new(1),
        dest,
        &TreeRestoreOptions::default(),
    )
    .map_err(|e| e.to_string())?;
    complete &= report.is_complete();
    Ok(complete)
}

/// Every non-staging file that made it into `dest` must byte-match its
/// source counterpart, and every symlink its target — a crashed restore may
/// be a *prefix* of the tree (plus `.hds-tmp` staging residue), but never a
/// torn or renamed-but-wrong file.
fn assert_dest_is_clean_prefix(src: &Path, dest: &Path) {
    if !dest.exists() {
        return;
    }
    fn walk(src: &Path, dest: &Path) {
        for entry in std::fs::read_dir(dest).expect("read dest dir") {
            let entry = entry.expect("dest entry");
            let name = entry.file_name();
            if name.to_string_lossy().ends_with(".hds-tmp") {
                continue; // staging residue of the crash — allowed
            }
            let d = entry.path();
            let s = src.join(&name);
            let meta = std::fs::symlink_metadata(&d).expect("dest lstat");
            if meta.file_type().is_symlink() {
                assert_eq!(
                    std::fs::read_link(&d).expect("dest link"),
                    std::fs::read_link(&s).expect("src link"),
                    "symlink target mismatch at {}",
                    d.display()
                );
            } else if meta.is_dir() {
                walk(&s, &d);
            } else {
                assert_eq!(
                    std::fs::read(&d).expect("dest file"),
                    std::fs::read(&s).expect("src file"),
                    "restored file differs from source at {}",
                    d.display()
                );
            }
        }
    }
    walk(src, dest);
}

#[test]
fn crash_matrix_tree_lifecycle() {
    let fixture = Scratch::new("tree-src");
    let src = fixture.0.join("tree");
    build_tree_fixture(&src);

    // Counting run: number every op of the full tree lifecycle.
    let scratch = Scratch::new("tree-count");
    let vfs = FaultVfs::counting();
    let complete = run_tree_sequence(
        &scratch.0.join("repo"),
        &src,
        &scratch.0.join("dest"),
        vfs.clone(),
        usize::MAX,
    )
    .expect("counting run");
    assert!(complete, "unfaulted tree lifecycle must be complete");
    let total = vfs.ops();
    assert!(
        total > 80,
        "tree sequence too small to be interesting: {total} ops"
    );
    drop(scratch);

    // Repository boundary states: 0, 1, or 2 tree backups saved (the
    // restore phase never mutates the repository).
    let boundaries: Vec<BTreeMap<u32, u32>> = (0..=2)
        .map(|saves| {
            let s = Scratch::new(&format!("tree-boundary-{saves}"));
            run_tree_sequence(
                &s.0.join("repo"),
                &src,
                &s.0.join("dest"),
                hidestore::failpoint::RealVfs,
                saves,
            )
            .expect("unfaulted boundary build");
            reopen_and_check(&s.0.join("repo"), &format!("tree boundary {saves}")).0
        })
        .collect();

    for site in 0..total {
        let s = Scratch::new(&format!("tree-site-{site}"));
        let repo = s.0.join("repo");
        let dest = s.0.join("dest");
        let vfs = FaultVfs::armed(site, FaultKind::Error);
        let result = run_tree_sequence(&repo, &src, &dest, vfs.clone(), usize::MAX);
        assert!(vfs.crashed(), "tree site {site}: the fault must have fired");
        match result {
            Err(_) => {}
            Ok(complete) => assert!(
                !complete,
                "tree site {site}: a crashed lifecycle cannot be complete"
            ),
        }
        let ctx = format!("tree site {site}");
        let (state, _) = reopen_and_check(&repo, &ctx);
        assert_at_boundary(&state, &boundaries, &ctx);
        assert_dest_is_clean_prefix(&src, &dest);
    }
}
