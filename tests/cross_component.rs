//! Cross-component integration: combinations that no single crate's unit
//! tests exercise — verified restores over HiDeStore's two-tier layout,
//! the Belady bound against HiDeStore's layout, device-model reporting,
//! and recluster + deletion + persistence interacting on one repository.

use hidestore::core::{HiDeStore, HiDeStoreConfig};
use hidestore::restore::{BeladyCache, ChunkLru, Faa, RestoreCache, VerifyingRestore};
use hidestore::storage::{
    ContainerStore, DeviceProfile, FileContainerStore, MemoryContainerStore, VersionId,
};
use hidestore::workloads::{Profile, VersionStream};

fn noise(len: usize, seed: u64) -> Vec<u8> {
    let mut state = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
    (0..len)
        .map(|_| {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state >> 32) as u8
        })
        .collect()
}

fn hds_config() -> HiDeStoreConfig {
    HiDeStoreConfig {
        avg_chunk_size: 1024,
        container_capacity: 32 * 1024,
        ..HiDeStoreConfig::default()
    }
}

fn ingest(n: u32, seed: u64) -> (HiDeStore<MemoryContainerStore>, Vec<Vec<u8>>) {
    let versions =
        VersionStream::new(Profile::Kernel.spec().scaled(800_000, n), seed).all_versions();
    let mut hds = HiDeStore::new(hds_config(), MemoryContainerStore::new());
    for v in &versions {
        hds.backup(v).unwrap();
    }
    (hds, versions)
}

#[test]
fn verified_restore_over_hidestore_two_tier_layout() {
    let (mut hds, versions) = ingest(5, 1);
    // Every version passes fingerprint verification, including chunks served
    // from the active pool through the composite store.
    for (i, expect) in versions.iter().enumerate() {
        let mut cache = VerifyingRestore::new(Faa::new(1 << 18));
        let mut out = Vec::new();
        hds.restore(VersionId::new(i as u32 + 1), &mut cache, &mut out)
            .unwrap_or_else(|e| panic!("verified restore of V{} failed: {e}", i + 1));
        assert_eq!(&out, expect);
    }
}

#[test]
fn belady_bound_holds_on_hidestore_layout() {
    let (mut hds, versions) = ingest(6, 2);
    hds.flatten_recipes();
    let newest = VersionId::new(versions.len() as u32);
    let reads = |hds: &mut HiDeStore<MemoryContainerStore>, cache: &mut dyn RestoreCache| {
        hds.restore(newest, cache, &mut std::io::sink())
            .unwrap()
            .container_reads
    };
    // At equal container budgets, the clairvoyant cache can never need more
    // reads than LRU-family schemes — also true on the two-tier layout.
    let budget = 4;
    let optimal = reads(&mut hds, &mut BeladyCache::new(budget));
    let chunk_lru = reads(&mut hds, &mut ChunkLru::new(budget * 32 * 1024));
    assert!(
        optimal <= chunk_lru,
        "belady {optimal} reads > chunk-lru {chunk_lru}"
    );
}

#[test]
fn device_profiles_rank_hidestore_layouts() {
    // The same restore, costed on HDD vs NVMe: fewer container reads matter
    // far more on the seek-bound device.
    let (mut hds, versions) = ingest(6, 3);
    let newest = VersionId::new(versions.len() as u32);
    hds.archival_mut().reset_stats();
    let report = hds
        .restore(newest, &mut Faa::new(1 << 18), &mut std::io::sink())
        .unwrap();
    let stats = hidestore::storage::IoStats {
        container_reads: report.container_reads,
        bytes_read: report.bytes_restored,
        ..Default::default()
    };
    let hdd = DeviceProfile::HDD.restore_throughput_mbps(report.bytes_restored, &stats);
    let nvme = DeviceProfile::NVME.restore_throughput_mbps(report.bytes_restored, &stats);
    assert!(
        nvme > hdd,
        "nvme {nvme:.1} MB/s must beat hdd {hdd:.1} MB/s"
    );
    assert!(hdd > 0.0);
}

#[test]
fn recluster_then_delete_then_persist_round_trip() {
    // The three maintenance operations compose on a real on-disk repository.
    let dir = std::env::temp_dir().join(format!("hidestore-cross-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);

    let versions = VersionStream::new(Profile::Gcc.spec().scaled(600_000, 6), 5).all_versions();
    {
        let mut hds = HiDeStore::open_repository(hds_config(), &dir).unwrap();
        for v in &versions {
            hds.backup(v).unwrap();
        }
        hds.recluster_archival().unwrap();
        hds.delete_expired(VersionId::new(2)).unwrap();
        hds.save_repository(&dir).unwrap();
    }
    let mut reopened = HiDeStore::open_repository(hds_config(), &dir).unwrap();
    assert_eq!(reopened.versions().len(), 4);
    for v in 3..=6u32 {
        let mut out = Vec::new();
        reopened
            .restore(VersionId::new(v), &mut Faa::new(1 << 18), &mut out)
            .unwrap_or_else(|e| panic!("V{v} after recluster+delete+reopen: {e}"));
        assert_eq!(&out, &versions[(v - 1) as usize], "V{v}");
    }
    let scrub = reopened.scrub().unwrap();
    assert!(scrub.is_clean());
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn streaming_ingest_into_file_repository() {
    // backup_reader + FileContainerStore: the full streaming path against
    // real files.
    let dir = std::env::temp_dir().join(format!("hidestore-stream-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let store = FileContainerStore::open(&dir).unwrap();
    let mut hds = HiDeStore::new(hds_config(), store);
    let v1 = noise(300_000, 9);
    let mut v2 = v1.clone();
    v2[40_000..60_000].copy_from_slice(&noise(20_000, 10));

    hds.backup_reader(&v1[..]).unwrap();
    let s2 = hds.backup_reader(&v2[..]).unwrap();
    assert!(s2.stored_bytes < 60_000, "incremental ingest over a reader");
    for (v, expect) in [(1u32, &v1), (2, &v2)] {
        let mut out = Vec::new();
        hds.restore(
            VersionId::new(v),
            &mut VerifyingRestore::new(Faa::new(1 << 18)),
            &mut out,
        )
        .unwrap();
        assert_eq!(&out, expect, "V{v}");
    }
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn trace_and_content_interleave_in_one_hidestore() {
    // A repository can mix trace-driven and content-driven versions; all
    // bookkeeping (dedup ratio, deletion) stays consistent.
    use hidestore::hash::Fingerprint;
    let mut hds = HiDeStore::new(hds_config(), MemoryContainerStore::new());
    let trace: Vec<(Fingerprint, u32)> = (0..500u64)
        .map(|i| (Fingerprint::synthetic(i), 1024))
        .collect();
    hds.backup_trace(&trace).unwrap();
    let data = noise(200_000, 11);
    hds.backup(&data).unwrap();
    hds.backup_trace(&trace).unwrap(); // trace chunks went cold, re-stored
    assert_eq!(hds.versions().len(), 3);
    let mut out = Vec::new();
    hds.restore(VersionId::new(2), &mut Faa::new(1 << 18), &mut out)
        .unwrap();
    assert_eq!(out, data, "content version sandwiched between traces");
    hds.delete_expired(VersionId::new(1)).unwrap();
    let mut out = Vec::new();
    hds.restore(VersionId::new(3), &mut Faa::new(1 << 18), &mut out)
        .unwrap();
    assert_eq!(out.len(), 500 * 1024);
}
