//! End-to-end integration tests: every backup scheme × every restore cache
//! must reproduce the original bytes across multi-version workloads.

use hidestore::core::{HiDeStore, HiDeStoreConfig};
use hidestore::dedup::{BackupPipeline, PipelineConfig};
use hidestore::index::{
    DdfsIndex, FingerprintIndex, SiloConfig, SiloIndex, SparseConfig, SparseIndex,
};
use hidestore::restore::{Alacc, ChunkLru, ContainerLru, Faa, RestoreCache};
use hidestore::rewriting::{Capping, Cbr, CflRewrite, Fbw, NoRewrite, RewritePolicy};
use hidestore::storage::{MemoryContainerStore, VersionId};
use hidestore::workloads::{Profile, VersionStream};

const CHUNK: usize = 1024;
const CONTAINER: usize = 64 * 1024;

fn pipeline_config() -> PipelineConfig {
    PipelineConfig {
        avg_chunk_size: CHUNK,
        container_capacity: CONTAINER,
        segment_chunks: 32,
        ..PipelineConfig::default()
    }
}

fn hds_config(depth: usize) -> HiDeStoreConfig {
    HiDeStoreConfig {
        avg_chunk_size: CHUNK,
        container_capacity: CONTAINER,
        history_depth: depth,
        ..HiDeStoreConfig::default()
    }
}

fn workload(profile: Profile, seed: u64) -> Vec<Vec<u8>> {
    VersionStream::new(profile.spec().scaled(1 << 20, 5), seed).all_versions()
}

fn restore_caches() -> Vec<Box<dyn RestoreCache>> {
    vec![
        Box::new(ContainerLru::new(6)),
        Box::new(ChunkLru::new(256 * 1024)),
        Box::new(Faa::new(256 * 1024)),
        Box::new(Alacc::new(128 * 1024, 128 * 1024)),
    ]
}

fn assert_pipeline_round_trips(
    index: Box<dyn FingerprintIndex>,
    rewriter: Box<dyn RewritePolicy>,
    tag: &str,
) {
    let versions = workload(Profile::Kernel, 11);
    let mut p = BackupPipeline::new(
        pipeline_config(),
        index,
        rewriter,
        MemoryContainerStore::new(),
    );
    for v in &versions {
        p.backup(v).unwrap();
    }
    for (i, expect) in versions.iter().enumerate() {
        for cache in restore_caches().iter_mut() {
            let mut out = Vec::new();
            p.restore(VersionId::new(i as u32 + 1), cache.as_mut(), &mut out)
                .unwrap_or_else(|e| {
                    panic!("{tag}/{}: restore V{} failed: {e}", cache.name(), i + 1)
                });
            assert_eq!(
                &out,
                expect,
                "{tag}/{}: V{} bytes differ",
                cache.name(),
                i + 1
            );
        }
    }
}

#[test]
fn ddfs_round_trips_all_caches() {
    assert_pipeline_round_trips(
        Box::new(DdfsIndex::new()),
        Box::new(NoRewrite::new()),
        "ddfs",
    );
}

#[test]
fn sparse_round_trips_all_caches() {
    assert_pipeline_round_trips(
        Box::new(SparseIndex::new(SparseConfig::default())),
        Box::new(NoRewrite::new()),
        "sparse",
    );
}

#[test]
fn silo_round_trips_all_caches() {
    assert_pipeline_round_trips(
        Box::new(SiloIndex::new(SiloConfig::default())),
        Box::new(NoRewrite::new()),
        "silo",
    );
}

#[test]
fn capping_round_trips_all_caches() {
    assert_pipeline_round_trips(
        Box::new(DdfsIndex::new()),
        Box::new(Capping::new(4)),
        "capping",
    );
}

#[test]
fn cbr_round_trips_all_caches() {
    assert_pipeline_round_trips(Box::new(DdfsIndex::new()), Box::new(Cbr::default()), "cbr");
}

#[test]
fn cfl_round_trips_all_caches() {
    assert_pipeline_round_trips(
        Box::new(DdfsIndex::new()),
        Box::new(CflRewrite::new(0.6, CONTAINER as u64)),
        "cfl",
    );
}

#[test]
fn fbw_round_trips_all_caches() {
    assert_pipeline_round_trips(
        Box::new(DdfsIndex::new()),
        Box::new(Fbw::new((4 * CONTAINER) as u64, 0.05, CONTAINER as u64)),
        "fbw",
    );
}

#[test]
fn hidestore_round_trips_all_caches_all_profiles() {
    for profile in Profile::ALL {
        let versions = workload(profile, 23);
        let depth = if profile == Profile::Macos { 2 } else { 1 };
        let mut hds = HiDeStore::new(hds_config(depth), MemoryContainerStore::new());
        for v in &versions {
            hds.backup(v).unwrap();
        }
        for (i, expect) in versions.iter().enumerate() {
            for cache in restore_caches().iter_mut() {
                let mut out = Vec::new();
                hds.restore(VersionId::new(i as u32 + 1), cache.as_mut(), &mut out)
                    .unwrap_or_else(|e| {
                        panic!("{profile}/{}: restore V{} failed: {e}", cache.name(), i + 1)
                    });
                assert_eq!(
                    &out,
                    expect,
                    "{profile}/{}: V{} bytes differ",
                    cache.name(),
                    i + 1
                );
            }
        }
    }
}

#[test]
fn hidestore_round_trips_after_flatten_and_more_backups() {
    // Interleave flatten passes with further backups: the chain maintenance
    // must stay consistent.
    let versions = workload(Profile::Gcc, 31);
    let mut hds = HiDeStore::new(hds_config(1), MemoryContainerStore::new());
    for (i, v) in versions.iter().enumerate() {
        hds.backup(v).unwrap();
        if i % 2 == 1 {
            hds.flatten_recipes();
        }
    }
    for (i, expect) in versions.iter().enumerate() {
        let mut out = Vec::new();
        hds.restore(
            VersionId::new(i as u32 + 1),
            &mut Faa::new(1 << 20),
            &mut out,
        )
        .unwrap();
        assert_eq!(&out, expect, "V{}", i + 1);
    }
}

#[test]
fn hidestore_depth2_on_flapping_workload() {
    let versions = workload(Profile::Macos, 47);
    let mut hds = HiDeStore::new(hds_config(2), MemoryContainerStore::new());
    for v in &versions {
        hds.backup(v).unwrap();
    }
    // The flapping files mean consecutive versions alternate; depth 2 must
    // still dedup them (ratio close to exact dedup).
    let mut ddfs = BackupPipeline::new(
        pipeline_config(),
        DdfsIndex::new(),
        NoRewrite::new(),
        MemoryContainerStore::new(),
    );
    for v in &versions {
        ddfs.backup(v).unwrap();
    }
    let gap = ddfs.run_stats().dedup_ratio() - hds.run_stats().dedup_ratio();
    assert!(
        gap < 0.02,
        "depth-2 HiDeStore lost {gap:.3} dedup ratio vs exact on macos-like workload"
    );
}

#[test]
fn mixed_scheme_stores_are_independent() {
    // Two systems over the same workload: results must not interfere (no
    // global state anywhere).
    let versions = workload(Profile::Kernel, 3);
    let mut a = HiDeStore::new(hds_config(1), MemoryContainerStore::new());
    let mut b = HiDeStore::new(hds_config(1), MemoryContainerStore::new());
    for v in &versions {
        a.backup(v).unwrap();
        b.backup(v).unwrap();
    }
    assert_eq!(a.run_stats(), b.run_stats());
}
