//! Failure injection: the container store fails mid-operation and the
//! system must degrade safely — a failed backup never corrupts the versions
//! already retained.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use hidestore::core::{HiDeStore, HiDeStoreConfig};
use hidestore::dedup::{BackupPipeline, PipelineConfig};
use hidestore::index::DdfsIndex;
use hidestore::restore::Faa;
use hidestore::rewriting::NoRewrite;
use hidestore::storage::{
    Container, ContainerId, ContainerStore, IoStats, MemoryContainerStore, StorageError,
    VersionId,
};

/// A store that fails every write once `fail_after_writes` have succeeded.
#[derive(Debug)]
struct FlakyStore {
    inner: MemoryContainerStore,
    writes: Arc<AtomicU64>,
    fail_after_writes: u64,
}

impl FlakyStore {
    fn new(fail_after_writes: u64) -> Self {
        FlakyStore {
            inner: MemoryContainerStore::new(),
            writes: Arc::new(AtomicU64::new(0)),
            fail_after_writes,
        }
    }

    fn disarm(&mut self) {
        self.fail_after_writes = u64::MAX;
    }
}

impl ContainerStore for FlakyStore {
    fn write(&mut self, container: Container) -> Result<(), StorageError> {
        let n = self.writes.fetch_add(1, Ordering::SeqCst);
        if n >= self.fail_after_writes {
            return Err(StorageError::Io(std::io::Error::other("injected write failure")));
        }
        self.inner.write(container)
    }

    fn read(&mut self, id: ContainerId) -> Result<std::sync::Arc<Container>, StorageError> {
        self.inner.read(id)
    }

    fn contains(&self, id: ContainerId) -> bool {
        self.inner.contains(id)
    }

    fn remove(&mut self, id: ContainerId) -> Result<(), StorageError> {
        self.inner.remove(id)
    }

    fn replace(&mut self, container: Container) -> Result<(), StorageError> {
        self.inner.replace(container)
    }

    fn ids(&self) -> Vec<ContainerId> {
        self.inner.ids()
    }

    fn stats(&self) -> IoStats {
        self.inner.stats()
    }

    fn reset_stats(&mut self) {
        self.inner.reset_stats()
    }
}

fn noise(len: usize, seed: u64) -> Vec<u8> {
    let mut state = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
    (0..len)
        .map(|_| {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state >> 32) as u8
        })
        .collect()
}

fn hds_config() -> HiDeStoreConfig {
    HiDeStoreConfig {
        avg_chunk_size: 1024,
        container_capacity: 16 * 1024,
        ..HiDeStoreConfig::default()
    }
}

#[test]
fn hidestore_failed_demotion_preserves_old_versions() {
    // Fail on every archival write from the start: the first demotion (at
    // the end of version 2) errors out.
    let mut hds = HiDeStore::new(hds_config(), FlakyStore::new(0));
    let v1 = noise(100_000, 1);
    let v2 = noise(100_000, 2); // fully different: everything of v1 goes cold
    hds.backup(&v1).unwrap();
    let err = hds.backup(&v2).unwrap_err();
    assert!(err.to_string().contains("injected"), "{err}");

    // Both versions must still restore byte-exact from the intact pool.
    hds.archival_mut().disarm();
    for (v, expect) in [(1u32, &v1), (2, &v2)] {
        let mut out = Vec::new();
        hds.restore(VersionId::new(v), &mut Faa::new(1 << 18), &mut out)
            .unwrap_or_else(|e| panic!("V{v} must survive the failed demotion: {e}"));
        assert_eq!(&out, expect, "V{v}");
    }
}

#[test]
fn hidestore_recovers_on_next_backup_after_failure() {
    // One failed demotion, then the store heals: subsequent backups work
    // and the whole history remains restorable.
    let mut hds = HiDeStore::new(hds_config(), FlakyStore::new(0));
    let v1 = noise(80_000, 3);
    let v2 = noise(80_000, 4);
    let mut v3 = v2.clone();
    v3.extend_from_slice(&noise(5_000, 5));
    hds.backup(&v1).unwrap();
    hds.backup(&v2).unwrap_err();
    hds.archival_mut().disarm();
    hds.backup(&v3).unwrap();
    for (v, expect) in [(1u32, &v1), (2, &v2), (3, &v3)] {
        let mut out = Vec::new();
        hds.restore(VersionId::new(v), &mut Faa::new(1 << 18), &mut out)
            .unwrap_or_else(|e| panic!("V{v}: {e}"));
        assert_eq!(&out, expect, "V{v}");
    }
}

#[test]
fn pipeline_failed_backup_preserves_old_versions() {
    let mut p = BackupPipeline::new(
        PipelineConfig {
            avg_chunk_size: 1024,
            container_capacity: 16 * 1024,
            segment_chunks: 32,
            ..PipelineConfig::default()
        },
        DdfsIndex::new(),
        NoRewrite::new(),
        FlakyStore::new(10),
    );
    let v1 = noise(100_000, 7);
    p.backup(&v1).unwrap();
    // A big unique version blows past the write budget.
    let err = p.backup(&noise(400_000, 8)).unwrap_err();
    assert!(err.to_string().contains("injected"), "{err}");
    p.store_mut().disarm();
    let mut out = Vec::new();
    p.restore(VersionId::new(1), &mut Faa::new(1 << 18), &mut out).unwrap();
    assert_eq!(out, v1, "V1 must survive the failed ingest");
}

#[test]
fn scrub_passes_after_recovered_failure() {
    let mut hds = HiDeStore::new(hds_config(), FlakyStore::new(0));
    hds.backup(&noise(60_000, 9)).unwrap();
    hds.backup(&noise(60_000, 10)).unwrap_err();
    hds.archival_mut().disarm();
    hds.backup(&noise(60_000, 11)).unwrap();
    let report = hds.scrub().unwrap();
    assert!(report.is_clean(), "{:?}", report.corrupt_chunks);
}
