//! Failure injection, in two families:
//!
//! 1. **Flaky store** — the container store fails mid-operation and the
//!    system must degrade safely: a failed backup never corrupts the
//!    versions already retained.
//! 2. **Corruption injection** — an on-disk repository is tampered with in
//!    four targeted ways (payload bit flip, container truncation, dangling
//!    recipe CID, recipe-chain cycle) and `SystemAuditor` must report
//!    exactly the injected damage — and nothing on an untouched store.

use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use hidestore::fsck::{FindingKind, Severity, SystemAuditor};
use hidestore::storage::FileContainerStore;

use hidestore::core::{HiDeStore, HiDeStoreConfig, HiDeStoreError, QuarantinedArtifact};
use hidestore::dedup::{BackupPipeline, PipelineConfig};
use hidestore::index::DdfsIndex;
use hidestore::restore::Faa;
use hidestore::rewriting::NoRewrite;
use hidestore::storage::{
    Container, ContainerId, ContainerStore, IoStats, MemoryContainerStore, StorageError, VersionId,
};

/// A store that fails every write once `fail_after_writes` have succeeded.
#[derive(Debug)]
struct FlakyStore {
    inner: MemoryContainerStore,
    writes: Arc<AtomicU64>,
    fail_after_writes: u64,
}

impl FlakyStore {
    fn new(fail_after_writes: u64) -> Self {
        FlakyStore {
            inner: MemoryContainerStore::new(),
            writes: Arc::new(AtomicU64::new(0)),
            fail_after_writes,
        }
    }

    fn disarm(&mut self) {
        self.fail_after_writes = u64::MAX;
    }
}

impl ContainerStore for FlakyStore {
    fn write(&mut self, container: Container) -> Result<(), StorageError> {
        let n = self.writes.fetch_add(1, Ordering::SeqCst);
        if n >= self.fail_after_writes {
            return Err(StorageError::Io(std::io::Error::other(
                "injected write failure",
            )));
        }
        self.inner.write(container)
    }

    fn read(&mut self, id: ContainerId) -> Result<std::sync::Arc<Container>, StorageError> {
        self.inner.read(id)
    }

    fn contains(&self, id: ContainerId) -> bool {
        self.inner.contains(id)
    }

    fn remove(&mut self, id: ContainerId) -> Result<(), StorageError> {
        self.inner.remove(id)
    }

    fn replace(&mut self, container: Container) -> Result<(), StorageError> {
        self.inner.replace(container)
    }

    fn ids(&self) -> Vec<ContainerId> {
        self.inner.ids()
    }

    fn stats(&self) -> IoStats {
        self.inner.stats()
    }

    fn reset_stats(&mut self) {
        self.inner.reset_stats()
    }
}

fn noise(len: usize, seed: u64) -> Vec<u8> {
    let mut state = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
    (0..len)
        .map(|_| {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state >> 32) as u8
        })
        .collect()
}

fn hds_config() -> HiDeStoreConfig {
    HiDeStoreConfig {
        avg_chunk_size: 1024,
        container_capacity: 16 * 1024,
        ..HiDeStoreConfig::default()
    }
}

#[test]
fn hidestore_failed_demotion_preserves_old_versions() {
    // Fail on every archival write from the start: the first demotion (at
    // the end of version 2) errors out.
    let mut hds = HiDeStore::new(hds_config(), FlakyStore::new(0));
    let v1 = noise(100_000, 1);
    let v2 = noise(100_000, 2); // fully different: everything of v1 goes cold
    hds.backup(&v1).unwrap();
    let err = hds.backup(&v2).unwrap_err();
    assert!(err.to_string().contains("injected"), "{err}");

    // Both versions must still restore byte-exact from the intact pool.
    hds.archival_mut().disarm();
    for (v, expect) in [(1u32, &v1), (2, &v2)] {
        let mut out = Vec::new();
        hds.restore(VersionId::new(v), &mut Faa::new(1 << 18), &mut out)
            .unwrap_or_else(|e| panic!("V{v} must survive the failed demotion: {e}"));
        assert_eq!(&out, expect, "V{v}");
    }
}

#[test]
fn hidestore_recovers_on_next_backup_after_failure() {
    // One failed demotion, then the store heals: subsequent backups work
    // and the whole history remains restorable.
    let mut hds = HiDeStore::new(hds_config(), FlakyStore::new(0));
    let v1 = noise(80_000, 3);
    let v2 = noise(80_000, 4);
    let mut v3 = v2.clone();
    v3.extend_from_slice(&noise(5_000, 5));
    hds.backup(&v1).unwrap();
    hds.backup(&v2).unwrap_err();
    hds.archival_mut().disarm();
    hds.backup(&v3).unwrap();
    for (v, expect) in [(1u32, &v1), (2, &v2), (3, &v3)] {
        let mut out = Vec::new();
        hds.restore(VersionId::new(v), &mut Faa::new(1 << 18), &mut out)
            .unwrap_or_else(|e| panic!("V{v}: {e}"));
        assert_eq!(&out, expect, "V{v}");
    }
}

#[test]
fn pipeline_failed_backup_preserves_old_versions() {
    let mut p = BackupPipeline::new(
        PipelineConfig {
            avg_chunk_size: 1024,
            container_capacity: 16 * 1024,
            segment_chunks: 32,
            ..PipelineConfig::default()
        },
        DdfsIndex::new(),
        NoRewrite::new(),
        FlakyStore::new(10),
    );
    let v1 = noise(100_000, 7);
    p.backup(&v1).unwrap();
    // A big unique version blows past the write budget.
    let err = p.backup(&noise(400_000, 8)).unwrap_err();
    assert!(err.to_string().contains("injected"), "{err}");
    p.store_mut().disarm();
    let mut out = Vec::new();
    p.restore(VersionId::new(1), &mut Faa::new(1 << 18), &mut out)
        .unwrap();
    assert_eq!(out, v1, "V1 must survive the failed ingest");
}

#[test]
fn scrub_passes_after_recovered_failure() {
    let mut hds = HiDeStore::new(hds_config(), FlakyStore::new(0));
    hds.backup(&noise(60_000, 9)).unwrap();
    hds.backup(&noise(60_000, 10)).unwrap_err();
    hds.archival_mut().disarm();
    hds.backup(&noise(60_000, 11)).unwrap();
    let report = hds.scrub().unwrap();
    assert!(report.is_clean(), "{:?}", report.corrupt_chunks);
}

// ---------------------------------------------------------------------------
// Corruption injection against on-disk repositories, audited by hds-fsck's
// library API.
// ---------------------------------------------------------------------------

/// A unique scratch directory, removed on drop.
struct Scratch(PathBuf);

impl Scratch {
    fn new(tag: &str) -> Self {
        let dir = std::env::temp_dir().join(format!(
            "hds-failure-injection-{tag}-{}",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        Scratch(dir)
    }
}

impl Drop for Scratch {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

/// Builds a repo with enough churn that cold chunks reach the archival
/// store, then saves it.
fn build_churned_repo(dir: &Path) {
    let mut hds = HiDeStore::open_repository(hds_config(), dir).expect("open repository");
    let mut data = noise(60_000, 11);
    for round in 0..4u64 {
        hds.backup(&data).expect("backup");
        let start = (round as usize * 9_000) % 50_000;
        let patch = noise(7_000, 500 + round);
        data[start..start + patch.len()].copy_from_slice(&patch);
    }
    hds.save_repository(dir).expect("save repository");
}

/// Builds a repo of two *identical* versions (so V1's recipe chains into V2
/// and nothing is demoted), then saves it.
fn build_chained_repo(dir: &Path) {
    let mut hds = HiDeStore::open_repository(hds_config(), dir).expect("open repository");
    let data = noise(40_000, 23);
    hds.backup(&data).expect("backup v1");
    hds.backup(&data).expect("backup v2");
    hds.save_repository(dir).expect("save repository");
}

fn reopen(dir: &Path) -> HiDeStore<FileContainerStore> {
    HiDeStore::open_repository(hds_config(), dir).expect("reopen repository")
}

fn archival_container_files(dir: &Path) -> Vec<PathBuf> {
    let mut files: Vec<PathBuf> = std::fs::read_dir(dir.join("archival"))
        .expect("archival dir")
        .filter_map(Result::ok)
        .map(|e| e.path())
        .filter(|p| p.extension().is_some_and(|x| x == "ctr"))
        .collect();
    files.sort();
    files
}

fn recipe_file(dir: &Path, version: u32) -> PathBuf {
    dir.join("recipes").join(format!("r{version}.rcp"))
}

/// Recipe layout: 12-byte header (`HDSR` + u32 version + u32 count), then
/// 28-byte entries (20-byte fingerprint + u32 size + i32 cid, both LE).
const RECIPE_HEADER: usize = 12;
const RECIPE_ENTRY: usize = 28;
const ENTRY_CID_OFFSET: usize = 24;

/// Overwrites the CID of entry `idx` in a recipe file.
fn patch_recipe_cid(path: &Path, idx: usize, cid: i32) {
    let mut bytes = std::fs::read(path).expect("read recipe");
    let at = RECIPE_HEADER + idx * RECIPE_ENTRY + ENTRY_CID_OFFSET;
    bytes[at..at + 4].copy_from_slice(&cid.to_le_bytes());
    std::fs::write(path, bytes).expect("write recipe");
}

/// Index of the first entry in a recipe file whose CID is a positive
/// (archival) reference.
fn first_archival_entry(path: &Path) -> Option<usize> {
    let bytes = std::fs::read(path).expect("read recipe");
    let n = (bytes.len() - RECIPE_HEADER) / RECIPE_ENTRY;
    (0..n).find(|i| {
        let at = RECIPE_HEADER + i * RECIPE_ENTRY + ENTRY_CID_OFFSET;
        let mut word = [0u8; 4];
        word.copy_from_slice(&bytes[at..at + 4]);
        i32::from_le_bytes(word) > 0
    })
}

#[test]
fn untouched_store_audits_clean() {
    let scratch = Scratch::new("clean");
    build_churned_repo(&scratch.0);
    let mut hds = reopen(&scratch.0);
    let report = SystemAuditor::new().audit(&mut hds);
    assert!(
        report.is_clean(),
        "expected zero findings, got:\n{report:#?}"
    );
    assert!(report.containers_checked > 0);
    assert!(report.chunks_checked > 0);
    assert_eq!(report.recipes_checked, 4);
}

#[test]
fn flipped_payload_byte_is_reported_as_hash_mismatch() {
    let scratch = Scratch::new("bitflip");
    build_churned_repo(&scratch.0);
    // The data section is encoded last, so the file's final byte belongs to
    // some chunk's payload.
    let victim = archival_container_files(&scratch.0)
        .into_iter()
        .next()
        .expect("an archival container");
    let mut bytes = std::fs::read(&victim).expect("read container");
    let last = bytes.len() - 1;
    bytes[last] ^= 0x01;
    std::fs::write(&victim, bytes).expect("write container");

    let mut hds = reopen(&scratch.0);
    let report = SystemAuditor::new().audit(&mut hds);
    assert!(!report.is_clean(), "corruption must be detected");
    assert!(
        report
            .findings
            .iter()
            .all(|f| matches!(f.kind, FindingKind::ChunkHashMismatch { .. })),
        "only the injected hash mismatch may be reported:\n{:#?}",
        report.findings
    );
    assert_eq!(report.findings.len(), 1, "exactly one chunk was corrupted");
}

#[test]
fn truncated_container_is_quarantined_and_contained() {
    let scratch = Scratch::new("truncate");
    build_churned_repo(&scratch.0);
    let victim = archival_container_files(&scratch.0)
        .into_iter()
        .next()
        .expect("an archival container");
    let bytes = std::fs::read(&victim).expect("read container");
    std::fs::write(&victim, &bytes[..bytes.len() / 2]).expect("truncate container");

    // Degraded-mode open: the damaged container is moved to quarantine/
    // instead of failing the open or poisoning every restore.
    let mut hds = reopen(&scratch.0);
    assert_eq!(hds.quarantine().len(), 1, "{:?}", hds.quarantine());
    let victim_name = victim.file_name().expect("container file name");
    assert!(
        scratch.0.join("quarantine").join(victim_name).exists(),
        "the damaged file must be preserved in quarantine/"
    );
    assert!(!victim.exists(), "and gone from archival/");

    // The audit reports the damage as *contained*: quarantine warnings, no
    // fresh integrity errors.
    let report = SystemAuditor::new().audit(&mut hds);
    assert!(!report.is_clean());
    assert_eq!(
        report.count(Severity::Error),
        0,
        "quarantined damage must not surface as errors:\n{:#?}",
        report.findings
    );
    assert!(
        report.findings.iter().all(|f| matches!(
            f.kind,
            FindingKind::QuarantinedArtifact { .. } | FindingKind::QuarantinedRef { .. }
        )),
        "only quarantine findings may be reported:\n{:#?}",
        report.findings
    );

    // The newest version never references archival containers; it restores.
    let latest = *hds.versions().last().expect("versions retained");
    let mut out = Vec::new();
    hds.restore(latest, &mut Faa::new(1 << 18), &mut out)
        .expect("newest version must survive the quarantine");

    // Versions that depended on the container fail with a typed partial
    // restore naming it — never a wrong-data success.
    let mut partial = 0;
    for v in hds.versions() {
        let mut out = Vec::new();
        match hds.restore(v, &mut Faa::new(1 << 18), &mut out) {
            Ok(_) => {}
            Err(HiDeStoreError::PartialRestore {
                version,
                quarantined,
            }) => {
                assert_eq!(version, v);
                assert!(
                    quarantined
                        .iter()
                        .any(|a| matches!(a, QuarantinedArtifact::ArchivalContainer(_))),
                    "the lost container must be named: {quarantined:?}"
                );
                partial += 1;
            }
            Err(other) => panic!("V{v} must fail as PartialRestore, got: {other}"),
        }
    }
    assert!(partial > 0, "some version depended on the lost container");
}

#[test]
fn dangling_recipe_cid_is_reported() {
    let scratch = Scratch::new("dangle");
    build_churned_repo(&scratch.0);
    // Point V1's first archival reference at a container that was never
    // written.
    let r1 = recipe_file(&scratch.0, 1);
    let idx = first_archival_entry(&r1).expect("V1 has an archival entry after churn");
    patch_recipe_cid(&r1, idx, 9_999);

    let mut hds = reopen(&scratch.0);
    let report = SystemAuditor::new().audit(&mut hds);
    assert!(!report.is_clean());
    assert!(
        report.findings.iter().all(|f| matches!(
            f.kind,
            FindingKind::DanglingArchivalRef {
                version: 1,
                container: 9_999,
                ..
            }
        )),
        "only the injected dangling reference may be reported:\n{:#?}",
        report.findings
    );
    assert_eq!(report.findings.len(), 1);
}

#[test]
fn chain_cycle_is_reported() {
    let scratch = Scratch::new("cycle");
    build_chained_repo(&scratch.0);
    // V1's entries are all chained forward to V2 (cid -2). Rewriting V2's
    // first entry to chain back to V1 (cid -1) closes a cycle — and is also
    // a backward hop, violating version ordering.
    let r2 = recipe_file(&scratch.0, 2);
    patch_recipe_cid(&r2, 0, -1);

    let mut hds = reopen(&scratch.0);
    let report = SystemAuditor::new().audit(&mut hds);
    assert!(!report.is_clean());
    assert!(
        report.findings.iter().all(|f| matches!(
            f.kind,
            FindingKind::ChainCycle { .. } | FindingKind::ChainNotVersionOrdered { .. }
        )),
        "only chain findings may be reported:\n{:#?}",
        report.findings
    );
    assert!(
        report
            .findings
            .iter()
            .any(|f| matches!(f.kind, FindingKind::ChainCycle { .. })),
        "the cycle itself must be among the findings:\n{:#?}",
        report.findings
    );
}
