//! Integration tests for the on-disk container store: HiDeStore and the
//! baseline pipeline as *real* backup repositories, including process
//! "restart" (reopen) and corruption handling.

use std::fs;
use std::path::PathBuf;

use hidestore::core::{HiDeStore, HiDeStoreConfig};
use hidestore::dedup::{BackupPipeline, PipelineConfig};
use hidestore::index::DdfsIndex;
use hidestore::restore::Faa;
use hidestore::rewriting::NoRewrite;
use hidestore::storage::{ContainerStore, FileContainerStore, StorageError, VersionId};
use hidestore::workloads::{Profile, VersionStream};

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("hidestore-it-{tag}-{}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    dir
}

fn small_versions() -> Vec<Vec<u8>> {
    VersionStream::new(Profile::Kernel.spec().scaled(512 << 10, 4), 5).all_versions()
}

#[test]
fn hidestore_over_file_store_round_trips() {
    let dir = temp_dir("hds");
    let store = FileContainerStore::open(&dir).unwrap();
    let mut hds = HiDeStore::new(
        HiDeStoreConfig {
            avg_chunk_size: 1024,
            container_capacity: 32 * 1024,
            ..HiDeStoreConfig::default()
        },
        store,
    );
    let versions = small_versions();
    for v in &versions {
        hds.backup(v).unwrap();
    }
    for (i, expect) in versions.iter().enumerate() {
        let mut out = Vec::new();
        hds.restore(
            VersionId::new(i as u32 + 1),
            &mut Faa::new(1 << 18),
            &mut out,
        )
        .unwrap();
        assert_eq!(&out, expect, "V{}", i + 1);
    }
    // Cold chunks really are on disk as container files.
    assert!(fs::read_dir(&dir).unwrap().count() > 0);
    fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn pipeline_repository_survives_reopen() {
    let dir = temp_dir("reopen");
    let versions = small_versions();
    // Ingest with one store instance...
    {
        let store = FileContainerStore::open(&dir).unwrap();
        let mut p = BackupPipeline::new(
            PipelineConfig {
                avg_chunk_size: 1024,
                container_capacity: 32 * 1024,
                segment_chunks: 32,
                ..PipelineConfig::default()
            },
            DdfsIndex::new(),
            NoRewrite::new(),
            store,
        );
        for v in &versions {
            p.backup(v).unwrap();
        }
        // Persist the recipes alongside the containers.
        p.recipes().save_dir(dir.join("recipes")).unwrap();
    }
    // ...then reopen a fresh store (a new process) and restore directly
    // from the on-disk recipes and containers.
    let mut store = FileContainerStore::open(&dir).unwrap();
    let recipes = hidestore::storage::RecipeStore::load_dir(dir.join("recipes")).unwrap();
    assert_eq!(recipes.len(), versions.len());
    for (i, expect) in versions.iter().enumerate() {
        let recipe = recipes.get(VersionId::new(i as u32 + 1)).unwrap();
        let plan: Vec<hidestore::restore::RestoreEntry> = recipe
            .entries()
            .iter()
            .map(|e| {
                hidestore::restore::RestoreEntry::new(
                    e.fingerprint,
                    e.size,
                    e.cid.as_archival().expect("baseline recipes are resolved"),
                )
            })
            .collect();
        let mut out = Vec::new();
        use hidestore::restore::RestoreCache;
        Faa::new(1 << 18)
            .restore(&plan, &mut store, &mut out)
            .unwrap();
        assert_eq!(&out, expect, "V{} after reopen", i + 1);
    }
    fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn corrupt_container_file_is_reported() {
    let dir = temp_dir("corrupt");
    let versions = small_versions();
    let store = FileContainerStore::open(&dir).unwrap();
    let mut p = BackupPipeline::new(
        PipelineConfig {
            avg_chunk_size: 1024,
            container_capacity: 32 * 1024,
            segment_chunks: 32,
            ..PipelineConfig::default()
        },
        DdfsIndex::new(),
        NoRewrite::new(),
        store,
    );
    p.backup(&versions[0]).unwrap();
    // Truncate the first container file behind the store's back.
    let victim = fs::read_dir(&dir)
        .unwrap()
        .filter_map(Result::ok)
        .find(|e| e.file_name().to_string_lossy().ends_with(".ctr"))
        .expect("at least one container file");
    let bytes = fs::read(victim.path()).unwrap();
    fs::write(victim.path(), &bytes[..bytes.len() / 2]).unwrap();

    let err = p
        .restore(
            VersionId::new(1),
            &mut Faa::new(1 << 18),
            &mut std::io::sink(),
        )
        .unwrap_err();
    let msg = err.to_string();
    assert!(
        msg.contains("corrupt") || msg.contains("truncated") || msg.contains("not found"),
        "unexpected error: {msg}"
    );
    fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn file_store_deletion_removes_files() {
    let dir = temp_dir("delete");
    let store = FileContainerStore::open(&dir).unwrap();
    let mut hds = HiDeStore::new(
        HiDeStoreConfig {
            avg_chunk_size: 1024,
            container_capacity: 32 * 1024,
            ..HiDeStoreConfig::default()
        },
        store,
    );
    let versions = small_versions();
    for v in &versions {
        hds.backup(v).unwrap();
    }
    let files_before = fs::read_dir(&dir).unwrap().count();
    let report = hds.delete_expired(VersionId::new(2)).unwrap();
    let files_after = fs::read_dir(&dir).unwrap().count();
    if report.containers_dropped > 0 {
        assert!(files_after < files_before);
    }
    // Survivors still restore from disk.
    for v in 3..=versions.len() as u32 {
        let mut out = Vec::new();
        hds.restore(VersionId::new(v), &mut Faa::new(1 << 18), &mut out)
            .unwrap();
        assert_eq!(&out, &versions[(v - 1) as usize]);
    }
    fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn duplicate_container_id_rejected_on_disk() {
    let dir = temp_dir("dupid");
    let mut store = FileContainerStore::open(&dir).unwrap();
    let mut c = hidestore::storage::Container::new(hidestore::storage::ContainerId::new(1), 1024);
    c.try_add(hidestore::hash::Fingerprint::of(b"x"), b"x");
    store.write(c.clone()).unwrap();
    assert!(matches!(
        store.write(c),
        Err(StorageError::DuplicateContainer(_))
    ));
    fs::remove_dir_all(&dir).unwrap();
}
