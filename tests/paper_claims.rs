//! Integration tests asserting the *shape* of the paper's headline results
//! at test scale: who wins, in which direction, with which trade-off. The
//! full-scale numbers live in the `hidestore-bench` experiment binaries and
//! EXPERIMENTS.md.

use hidestore::chunking::{chunk_spans, ChunkerKind};
use hidestore::core::{DedupMode, HiDeStore, HiDeStoreConfig};
use hidestore::dedup::{gc, BackupPipeline, PipelineConfig};
use hidestore::hash::Fingerprint;
use hidestore::index::{DdfsIndex, SiloConfig, SiloIndex};
use hidestore::restore::Faa;
use hidestore::rewriting::{Capping, NoRewrite, RewritePolicy};
use hidestore::storage::{ContainerStore, MemoryContainerStore, VersionId};
use hidestore::workloads::{Profile, VersionStream};

const CHUNK: usize = 1024;
const CONTAINER: usize = 64 * 1024;
const FAA_AREA: usize = 8 * CONTAINER;

fn pipeline_config() -> PipelineConfig {
    PipelineConfig {
        avg_chunk_size: CHUNK,
        container_capacity: CONTAINER,
        segment_chunks: 32,
        ..PipelineConfig::default()
    }
}

fn hds_config() -> HiDeStoreConfig {
    HiDeStoreConfig {
        avg_chunk_size: CHUNK,
        container_capacity: CONTAINER,
        ..HiDeStoreConfig::default()
    }
}

fn kernel_versions(n: u32) -> Vec<Vec<u8>> {
    VersionStream::new(Profile::Kernel.spec().scaled(2 << 20, n), 42).all_versions()
}

/// Figure 8's core claim: HiDeStore matches exact deduplication while
/// rewriting schemes lose ratio.
#[test]
fn hidestore_dedup_ratio_matches_exact_and_beats_rewriting() {
    let versions = kernel_versions(10);

    let mut hds = HiDeStore::new(hds_config(), MemoryContainerStore::new());
    for v in &versions {
        hds.backup(v).unwrap();
    }
    let mut ddfs = BackupPipeline::new(
        pipeline_config(),
        DdfsIndex::new(),
        NoRewrite::new(),
        MemoryContainerStore::new(),
    );
    for v in &versions {
        ddfs.backup(v).unwrap();
    }
    let mut capped = BackupPipeline::new(
        pipeline_config(),
        SiloIndex::new(SiloConfig::default()),
        Capping::new(4),
        MemoryContainerStore::new(),
    );
    for v in &versions {
        capped.backup(v).unwrap();
    }

    let hds_ratio = hds.run_stats().dedup_ratio();
    let ddfs_ratio = ddfs.run_stats().dedup_ratio();
    let capped_ratio = capped.run_stats().dedup_ratio();
    assert!(
        (ddfs_ratio - hds_ratio).abs() < 0.01,
        "HiDeStore {hds_ratio:.4} must match DDFS {ddfs_ratio:.4}"
    );
    assert!(
        hds_ratio > capped_ratio,
        "HiDeStore {hds_ratio:.4} must beat SiLo+Capping {capped_ratio:.4}"
    );
    assert!(
        capped.rewriter().rewritten_bytes() > 0,
        "capping should have rewritten"
    );
}

/// Figure 11's core claim: after many versions, HiDeStore restores the
/// *newest* version faster (higher speed factor) than the no-rewrite
/// baseline, while the *oldest* version is where it sacrifices.
#[test]
fn hidestore_restores_newest_version_with_fewer_reads() {
    // Enough versions for real fragmentation, and an assembly area covering
    // the whole stream so the read count is exactly the number of distinct
    // containers the version's layout touches.
    let versions = kernel_versions(14);
    let newest = VersionId::new(versions.len() as u32);
    let area = versions.last().map(Vec::len).unwrap_or(0) + CONTAINER;

    let mut hds = HiDeStore::new(hds_config(), MemoryContainerStore::new());
    for v in &versions {
        hds.backup(v).unwrap();
    }
    hds.flatten_recipes();
    let hds_sf = hds
        .restore(newest, &mut Faa::new(area), &mut std::io::sink())
        .unwrap()
        .speed_factor();

    let mut baseline = BackupPipeline::new(
        pipeline_config(),
        DdfsIndex::new(),
        NoRewrite::new(),
        MemoryContainerStore::new(),
    );
    for v in &versions {
        baseline.backup(v).unwrap();
    }
    let base_sf = baseline
        .restore(newest, &mut Faa::new(area), &mut std::io::sink())
        .unwrap()
        .speed_factor();

    assert!(
        hds_sf > base_sf,
        "newest version: HiDeStore speed factor {hds_sf:.3} must beat baseline {base_sf:.3}"
    );
}

/// The baseline's fragmentation grows over versions (paper §2.3): the
/// newest version's speed factor decreases monotonically-ish over time.
#[test]
fn baseline_speed_factor_degrades_over_versions() {
    let versions = kernel_versions(10);
    let mut baseline = BackupPipeline::new(
        pipeline_config(),
        DdfsIndex::new(),
        NoRewrite::new(),
        MemoryContainerStore::new(),
    );
    for v in &versions {
        baseline.backup(v).unwrap();
    }
    let sf = |p: &mut BackupPipeline<_, _, _>, v: u32| {
        p.restore(
            VersionId::new(v),
            &mut Faa::new(FAA_AREA),
            &mut std::io::sink(),
        )
        .unwrap()
        .speed_factor()
    };
    let early = sf(&mut baseline, 2);
    let late = sf(&mut baseline, versions.len() as u32);
    assert!(
        late < early,
        "fragmentation must grow: V2 sf {early:.3} vs newest sf {late:.3}"
    );
}

/// Figure 3's observation: chunks absent from the current version rarely
/// recur — the tag count drops once and then stays flat.
#[test]
fn version_tag_decay_is_one_step() {
    let versions = kernel_versions(6);
    let mut chunker = ChunkerKind::Tttd.build(CHUNK);
    let mut tags: std::collections::HashMap<Fingerprint, u32> = std::collections::HashMap::new();
    let mut v1_counts = Vec::new();
    for (i, data) in versions.iter().enumerate() {
        for span in chunk_spans(chunker.as_mut(), data) {
            tags.insert(Fingerprint::of(&data[span]), i as u32 + 1);
        }
        v1_counts.push(tags.values().filter(|&&t| t == 1).count());
    }
    // Big drop from after-V1 to after-V2…
    assert!(
        v1_counts[1] * 2 < v1_counts[0],
        "V1 tag count {} -> {} is not a sharp drop",
        v1_counts[0],
        v1_counts[1]
    );
    // …then essentially flat (within 10%).
    let floor = v1_counts[1].max(1);
    for (i, &c) in v1_counts.iter().enumerate().skip(2) {
        assert!(
            c * 10 >= floor * 9 && c <= floor,
            "after V{}: V1 tag count {c} moved away from plateau {floor}",
            i + 1
        );
    }
}

/// Figure 9's claim: HiDeStore's index traffic is bounded by the previous
/// recipe and does not grow with the store, unlike DDFS under a scaled
/// cache.
#[test]
fn hidestore_lookups_flat_ddfs_lookups_grow() {
    let versions = kernel_versions(10);
    let mut hds = HiDeStore::new(hds_config(), MemoryContainerStore::new());
    for v in &versions {
        hds.backup(v).unwrap();
    }
    let hds_stats = hds.version_stats();
    let early = hds_stats[2].lookup_requests;
    let late = hds_stats[9].lookup_requests;
    assert!(
        late <= early * 2,
        "HiDeStore lookups must stay bounded: V3 {early} vs V10 {late}"
    );

    let mut ddfs = BackupPipeline::new(
        pipeline_config(),
        DdfsIndex::with_cache_containers(2),
        NoRewrite::new(),
        MemoryContainerStore::new(),
    );
    for v in &versions {
        ddfs.backup(v).unwrap();
    }
    let rows = ddfs.version_stats();
    let ddfs_late = rows[9].disk_lookups;
    assert!(
        ddfs_late > late,
        "late versions: DDFS lookups {ddfs_late} must exceed HiDeStore {late}"
    );
}

/// §5.5: HiDeStore deletion reclaims space without GC and leaves survivors
/// intact; a baseline must run mark-sweep to do the same.
#[test]
fn deletion_without_gc_vs_mark_sweep() {
    let versions = kernel_versions(9);

    let mut hds = HiDeStore::new(hds_config(), MemoryContainerStore::new());
    for v in &versions {
        hds.backup(v).unwrap();
    }
    let report = hds.delete_expired(VersionId::new(3)).unwrap();
    assert!(report.containers_dropped > 0);
    for v in 4..=9u32 {
        let mut out = Vec::new();
        hds.restore(VersionId::new(v), &mut Faa::new(FAA_AREA), &mut out)
            .unwrap();
        assert_eq!(out, versions[(v - 1) as usize]);
    }

    let mut ddfs = BackupPipeline::new(
        pipeline_config(),
        DdfsIndex::new(),
        NoRewrite::new(),
        MemoryContainerStore::new(),
    );
    for v in &versions {
        ddfs.backup(v).unwrap();
    }
    let mut recipes = std::mem::take(ddfs.recipes_mut());
    let expired: Vec<VersionId> = (1..=3).map(VersionId::new).collect();
    let mut next_id = 500_000;
    let gc_report =
        gc::mark_sweep(&expired, &mut recipes, ddfs.store_mut(), 0.4, &mut next_id).unwrap();
    *ddfs.recipes_mut() = recipes;
    // The GC had to scan every container; HiDeStore touched only the
    // tag-matched ones.
    assert!(gc_report.containers_scanned as usize >= ddfs.store().ids().len());
    for v in 4..=9u32 {
        let mut out = Vec::new();
        ddfs.restore(VersionId::new(v), &mut Faa::new(FAA_AREA), &mut out)
            .unwrap();
        assert_eq!(out, versions[(v - 1) as usize]);
    }
}

/// §5.3 at equal cache budget: after a fragmented multi-version history,
/// restoring the newest version from HiDeStore's physically-local layout
/// reads strictly fewer containers than from the DDFS baseline's
/// fragmented one — with the *same* restore scheme and cache size on both.
#[test]
fn hidestore_reads_fewer_containers_than_ddfs_at_equal_cache() {
    use hidestore::restore::ContainerLru;

    let versions = kernel_versions(12);
    let newest = VersionId::new(versions.len() as u32);

    let mut hds = HiDeStore::new(hds_config(), MemoryContainerStore::new());
    for v in &versions {
        hds.backup(v).unwrap();
    }
    hds.flatten_recipes();

    let mut ddfs = BackupPipeline::new(
        pipeline_config(),
        DdfsIndex::new(),
        NoRewrite::new(),
        MemoryContainerStore::new(),
    );
    for v in &versions {
        ddfs.backup(v).unwrap();
    }

    for capacity in [2usize, 8] {
        let hds_reads = hds
            .restore(
                newest,
                &mut ContainerLru::new(capacity),
                &mut std::io::sink(),
            )
            .unwrap()
            .container_reads;
        let ddfs_reads = ddfs
            .restore(
                newest,
                &mut ContainerLru::new(capacity),
                &mut std::io::sink(),
            )
            .unwrap()
            .container_reads;
        assert!(
            hds_reads < ddfs_reads,
            "cache {capacity}: HiDeStore {hds_reads} reads must be strictly \
             fewer than DDFS {ddfs_reads}"
        );
    }
}

/// Physical bytes a system keeps live: archival containers plus the active
/// pool (scheme-mode systems leave the pool empty).
fn live_bytes(hds: &HiDeStore<MemoryContainerStore>) -> u64 {
    hds.archival().total_live_bytes() + hds.pool().live_bytes()
}

/// RevDedup's headline claim (Ng & Lee): writing each backup's segments
/// near-sequentially makes the *newest* version at least as cheap to
/// restore as the DDFS baseline's fragmented layout — at the same restore
/// scheme and cache budget.
#[test]
fn revdedup_newest_reads_at_most_ddfs_at_equal_cache() {
    use hidestore::restore::ContainerLru;

    let versions = kernel_versions(12);
    let newest = VersionId::new(versions.len() as u32);

    let mut rev = HiDeStore::new(
        hds_config().with_scheme(DedupMode::RevDedup),
        MemoryContainerStore::new(),
    );
    for v in &versions {
        rev.backup(v).unwrap();
    }
    let mut ddfs = BackupPipeline::new(
        pipeline_config(),
        DdfsIndex::new(),
        NoRewrite::new(),
        MemoryContainerStore::new(),
    );
    for v in &versions {
        ddfs.backup(v).unwrap();
    }

    for capacity in [2usize, 8] {
        let rev_reads = rev
            .restore(
                newest,
                &mut ContainerLru::new(capacity),
                &mut std::io::sink(),
            )
            .unwrap()
            .container_reads;
        let ddfs_reads = ddfs
            .restore(
                newest,
                &mut ContainerLru::new(capacity),
                &mut std::io::sink(),
            )
            .unwrap()
            .container_reads;
        assert!(
            rev_reads <= ddfs_reads,
            "cache {capacity}: RevDedup newest-version reads {rev_reads} must \
             not exceed DDFS {ddfs_reads}"
        );
    }
}

/// The hybrid scheme's bargain: defer fine-grained dedup to the out-of-line
/// pass, then land within 5% of inline HiDeStore's physical footprint —
/// both are exact single-copy stores once the pass has run.
#[test]
fn hybrid_post_pass_ratio_within_five_percent_of_hidestore() {
    let versions = kernel_versions(10);
    let logical: u64 = versions.iter().map(|v| v.len() as u64).sum();

    let mut inline = HiDeStore::new(hds_config(), MemoryContainerStore::new());
    for v in &versions {
        inline.backup(v).unwrap();
    }
    let mut hybrid = HiDeStore::new(
        hds_config().with_scheme(DedupMode::Hybrid),
        MemoryContainerStore::new(),
    );
    for v in &versions {
        hybrid.backup(v).unwrap();
    }
    let before_pass = live_bytes(&hybrid);
    let report = hybrid.out_of_line_pass().unwrap();

    let inline_live = live_bytes(&inline);
    let hybrid_live = live_bytes(&hybrid);
    let inline_ratio = 1.0 - inline_live as f64 / logical as f64;
    let hybrid_ratio = 1.0 - hybrid_live as f64 / logical as f64;
    assert!(
        (inline_ratio - hybrid_ratio).abs() <= 0.05,
        "post-pass hybrid dedup ratio {hybrid_ratio:.4} must be within 5% of \
         inline HiDeStore {inline_ratio:.4} ({hybrid_live} vs {inline_live} live bytes)"
    );
    // The pass did real work: the inline phase had left duplicates behind.
    assert!(
        report.bytes_reclaimed > 0 && before_pass > hybrid_live,
        "out-of-line pass must reclaim: {report:?}"
    );

    // Every version still restores byte-exact afterwards.
    for (i, data) in versions.iter().enumerate() {
        let mut out = Vec::new();
        hybrid
            .restore(
                VersionId::new(i as u32 + 1),
                &mut Faa::new(FAA_AREA),
                &mut out,
            )
            .unwrap();
        assert_eq!(&out, data, "V{} after pass", i + 1);
    }
}

/// The cost ledger across schemes: HiDeStore's inline lookups stay flat
/// *and* it owes no out-of-line debt, while RevDedup buys its cheap ingest
/// (fewer, coarser lookups) by paying a real reverse-dedup pass later.
#[test]
fn revdedup_defers_cost_hidestore_does_not() {
    let versions = kernel_versions(8);

    let mut rev = HiDeStore::new(
        hds_config().with_scheme(DedupMode::RevDedup),
        MemoryContainerStore::new(),
    );
    let mut inline = HiDeStore::new(hds_config(), MemoryContainerStore::new());
    for v in &versions {
        rev.backup(v).unwrap();
        inline.backup(v).unwrap();
    }

    // RevDedup's inline lookups are segment-granular: far fewer probes than
    // chunks ingested (segments average 8 chunks), and flat across versions
    // — bounded by the stream, not the store.
    let rev_rows = rev.version_stats();
    let last = versions.len() - 1;
    assert!(
        rev_rows[last].lookup_requests * 4 < rev_rows[last].chunks,
        "segment lookups {} must be far coarser than {} chunks",
        rev_rows[last].lookup_requests,
        rev_rows[last].chunks
    );
    assert!(rev_rows[last].lookup_requests <= rev_rows[2].lookup_requests * 2);

    // The deferred bill: RevDedup's pass reclaims real bytes and rewrites
    // containers; inline HiDeStore has no such pass to run.
    let rev_before = live_bytes(&rev);
    let report = rev.out_of_line_pass().unwrap();
    assert!(
        report.bytes_reclaimed > 0 && report.rewritten_bytes > 0,
        "RevDedup must owe an out-of-line debt: {report:?}"
    );
    assert!(live_bytes(&rev) < rev_before);
    assert!(
        inline.out_of_line_pass().is_err(),
        "inline HiDeStore has no out-of-line pass"
    );
}

/// Restore correctness is scheme- and thread-count-independent: RevDedup
/// and hybrid repositories built at 1, 2, and 8 ingest threads all restore
/// every version byte-identical to the serial build.
#[test]
fn new_schemes_restore_byte_identical_across_thread_counts() {
    let versions = kernel_versions(6);
    for scheme in [DedupMode::RevDedup, DedupMode::Hybrid] {
        for threads in [1usize, 2, 8] {
            let mut config = hds_config().with_scheme(scheme);
            config.threads = threads;
            let mut hds = HiDeStore::new(config, MemoryContainerStore::new());
            for v in &versions {
                hds.backup(v).unwrap();
            }
            hds.out_of_line_pass().unwrap();
            for (i, data) in versions.iter().enumerate() {
                let mut out = Vec::new();
                hds.restore(
                    VersionId::new(i as u32 + 1),
                    &mut Faa::new(FAA_AREA),
                    &mut out,
                )
                .unwrap();
                assert_eq!(&out, data, "{scheme} threads {threads} V{}", i + 1);
            }
        }
    }
}

/// Growing the cache can only help: FAA's container reads are monotone
/// non-increasing in the assembly-area size, and ALACC's in its chunk-cache
/// budget, over the baseline's fragmented newest version.
#[test]
fn faa_and_alacc_reads_monotone_nonincreasing_with_capacity() {
    use hidestore::restore::Alacc;

    let versions = kernel_versions(10);
    let newest = VersionId::new(versions.len() as u32);
    let mut ddfs = BackupPipeline::new(
        pipeline_config(),
        DdfsIndex::new(),
        NoRewrite::new(),
        MemoryContainerStore::new(),
    );
    for v in &versions {
        ddfs.backup(v).unwrap();
    }

    let mut faa_reads = Vec::new();
    for factor in [1usize, 2, 4, 8, 16] {
        let reads = ddfs
            .restore(
                newest,
                &mut Faa::new(factor * CONTAINER),
                &mut std::io::sink(),
            )
            .unwrap()
            .container_reads;
        faa_reads.push((factor, reads));
    }
    for pair in faa_reads.windows(2) {
        assert!(
            pair[1].1 <= pair[0].1,
            "FAA reads must not grow with the area: {faa_reads:?}"
        );
    }
    assert!(
        faa_reads.last().unwrap().1 < faa_reads[0].1,
        "the sweep must show an actual improvement: {faa_reads:?}"
    );

    let mut alacc_reads = Vec::new();
    for factor in [1usize, 2, 4, 8, 16] {
        // Fixed split: the area stays put, only the chunk cache grows.
        let mut alacc = Alacc::new(CONTAINER, factor * CONTAINER).with_fixed_split();
        let reads = ddfs
            .restore(newest, &mut alacc, &mut std::io::sink())
            .unwrap()
            .container_reads;
        alacc_reads.push((factor, reads));
    }
    for pair in alacc_reads.windows(2) {
        assert!(
            pair[1].1 <= pair[0].1,
            "ALACC reads must not grow with the cache: {alacc_reads:?}"
        );
    }
    assert!(
        alacc_reads.last().unwrap().1 < alacc_reads[0].1,
        "the sweep must show an actual improvement: {alacc_reads:?}"
    );
}
