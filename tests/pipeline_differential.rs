//! Differential serial-equivalence suite for the staged concurrent backup
//! pipeline.
//!
//! Dedup decisions are order-dependent, so the concurrent pipeline is only
//! correct if it is *indistinguishable* from the serial one: for every
//! fingerprint index × rewrite policy combination and every thread count,
//! the two must produce byte-identical containers, identical recipes, and
//! identical version statistics. The same must hold for HiDeStore itself,
//! whose backup front end switches to the staged pipeline when configured
//! with threads — there the repositories must additionally pass a clean
//! `SystemAuditor` audit.
//!
//! `HDS_THREADS=<n>` narrows the sweep to one concurrent thread count so CI
//! can run the suite once per setting in release mode.

use hidestore::core::{HiDeStore, HiDeStoreConfig, HiDeStoreVersionStats};
use hidestore::dedup::{BackupPipeline, ConcurrencyConfig, PipelineConfig};
use hidestore::fsck::{Severity, SystemAuditor};
use hidestore::index::IndexKind;
use hidestore::restore::Faa;
use hidestore::rewriting::{Capping, Cbr, CflRewrite, Fbw, NoRewrite, RewritePolicy};
use hidestore::storage::{ContainerStore, MemoryContainerStore, VersionId};
use hidestore::workloads::{Profile, VersionStream};

const CHUNK: usize = 1024;
const CONTAINER: usize = 32 * 1024;

fn rewriters() -> Vec<(&'static str, Box<dyn RewritePolicy>)> {
    vec![
        ("none", Box::new(NoRewrite::new())),
        ("capping", Box::new(Capping::new(4))),
        ("cbr", Box::new(Cbr::default())),
        ("cfl", Box::new(CflRewrite::new(0.6, CONTAINER as u64))),
        (
            "fbw",
            Box::new(Fbw::new((4 * CONTAINER) as u64, 0.05, CONTAINER as u64)),
        ),
    ]
}

/// Concurrent thread counts under test: {1, 2, 8} by default, or exactly
/// the value of `HDS_THREADS` when set (how ci.sh sweeps the settings).
fn thread_counts() -> Vec<usize> {
    match std::env::var("HDS_THREADS") {
        Ok(v) => vec![v.trim().parse().expect("HDS_THREADS must be a number")],
        Err(_) => vec![1, 2, 8],
    }
}

fn pipeline_config(concurrency: ConcurrencyConfig) -> PipelineConfig {
    PipelineConfig {
        avg_chunk_size: CHUNK,
        container_capacity: CONTAINER,
        segment_chunks: 32,
        concurrency,
        ..PipelineConfig::default()
    }
}

type DynPipeline = BackupPipeline<
    Box<dyn hidestore::index::FingerprintIndex + Send>,
    Box<dyn RewritePolicy>,
    MemoryContainerStore,
>;

/// Asserts two pipeline repositories are indistinguishable: same version
/// stats, same cumulative stats (stage counters excluded — blocked counts
/// are scheduling-dependent), same container IDs and bytes, same recipes.
fn assert_pipelines_identical(serial: &mut DynPipeline, concurrent: &mut DynPipeline, tag: &str) {
    assert_eq!(
        serial.version_stats(),
        concurrent.version_stats(),
        "{tag}: version stats differ"
    );
    let mut a = serial.run_stats();
    let mut b = concurrent.run_stats();
    a.stages = Default::default();
    b.stages = Default::default();
    assert_eq!(a, b, "{tag}: run stats differ");

    let ids = serial.store().ids();
    assert_eq!(
        ids,
        concurrent.store().ids(),
        "{tag}: container sets differ"
    );
    for id in ids {
        assert_eq!(
            serial.store_mut().read(id).unwrap().encode(),
            concurrent.store_mut().read(id).unwrap().encode(),
            "{tag}: container {id} bytes differ"
        );
    }
    assert_eq!(
        serial.versions(),
        concurrent.versions(),
        "{tag}: version sets differ"
    );
    for v in serial.versions() {
        assert_eq!(
            serial.recipes().get(v).unwrap().entries(),
            concurrent.recipes().get(v).unwrap().entries(),
            "{tag}: recipe {v} differs"
        );
    }
}

/// Every scheme × rewrite policy × thread count: the staged pipeline's
/// repository must be byte-identical to the serial pipeline's.
#[test]
fn every_scheme_and_policy_is_thread_count_invariant() {
    let versions = VersionStream::new(Profile::Kernel.spec().scaled(300_000, 3), 19).all_versions();
    for index_kind in IndexKind::ALL {
        for (rewriter_name, rewriter) in rewriters() {
            let mut serial = BackupPipeline::new(
                pipeline_config(ConcurrencyConfig::serial()),
                index_kind.build(),
                rewriter,
                MemoryContainerStore::new(),
            );
            for v in &versions {
                serial.backup(v).unwrap();
            }
            for threads in thread_counts() {
                let tag = format!("{index_kind}+{rewriter_name}@{threads}");
                let (_, rewriter) = rewriters()
                    .into_iter()
                    .find(|(name, _)| *name == rewriter_name)
                    .unwrap();
                let mut concurrent = BackupPipeline::new(
                    pipeline_config(ConcurrencyConfig::threads(threads).with_queue_depth(2)),
                    index_kind.build(),
                    rewriter,
                    MemoryContainerStore::new(),
                );
                for v in &versions {
                    concurrent.backup(v).unwrap();
                }
                assert_pipelines_identical(&mut serial, &mut concurrent, &tag);
                // And the concurrent repository restores byte-exact.
                for (i, expect) in versions.iter().enumerate() {
                    let mut out = Vec::new();
                    concurrent
                        .restore(
                            VersionId::new(i as u32 + 1),
                            &mut Faa::new(1 << 18),
                            &mut out,
                        )
                        .unwrap_or_else(|e| panic!("{tag}: restore V{} failed: {e}", i + 1));
                    assert_eq!(&out, expect, "{tag}: V{} bytes differ", i + 1);
                }
            }
        }
    }
}

fn hds_config(threads: usize) -> HiDeStoreConfig {
    HiDeStoreConfig {
        avg_chunk_size: CHUNK,
        container_capacity: CONTAINER,
        ..HiDeStoreConfig::default()
    }
    .with_threads(threads)
    .with_queue_depth(2)
}

/// Durations are wall-clock measurements, not repository state; blank them
/// before differential comparison.
fn strip_times(stats: &[HiDeStoreVersionStats]) -> Vec<HiDeStoreVersionStats> {
    stats
        .iter()
        .map(|s| HiDeStoreVersionStats {
            recipe_update_time: Default::default(),
            chunk_move_time: Default::default(),
            ..*s
        })
        .collect()
}

/// HiDeStore itself (the fifth scheme): a threaded backup front end must
/// produce the identical repository, and both must audit clean.
#[test]
fn hidestore_is_thread_count_invariant_and_audits_clean() {
    let versions = VersionStream::new(Profile::Macos.spec().scaled(300_000, 4), 43).all_versions();
    let mut serial = HiDeStore::new(hds_config(1), MemoryContainerStore::new());
    for v in &versions {
        serial.backup(v).unwrap();
    }
    for threads in thread_counts() {
        let tag = format!("hidestore@{threads}");
        let mut concurrent = HiDeStore::new(hds_config(threads), MemoryContainerStore::new());
        for v in &versions {
            concurrent.backup(v).unwrap();
        }
        assert_eq!(
            strip_times(serial.version_stats()),
            strip_times(concurrent.version_stats()),
            "{tag}: version stats differ"
        );
        let ids = serial.archival().ids();
        assert_eq!(
            ids,
            concurrent.archival().ids(),
            "{tag}: archival container sets differ"
        );
        for id in ids {
            assert_eq!(
                serial.archival_mut().read(id).unwrap().encode(),
                concurrent.archival_mut().read(id).unwrap().encode(),
                "{tag}: archival container {id} bytes differ"
            );
        }
        assert_eq!(serial.versions(), concurrent.versions(), "{tag}");
        for v in serial.versions() {
            assert_eq!(
                serial.recipes().get(v).unwrap().entries(),
                concurrent.recipes().get(v).unwrap().entries(),
                "{tag}: recipe {v} differs"
            );
        }
        for (sys, which) in [(&mut serial, "serial"), (&mut concurrent, "concurrent")] {
            let audit = SystemAuditor::new().audit(sys);
            assert_eq!(
                audit.count(Severity::Error),
                0,
                "{tag}: {which} repository must audit clean:\n{:#?}",
                audit.findings
            );
        }
        for (i, expect) in versions.iter().enumerate() {
            let mut out = Vec::new();
            concurrent
                .restore(
                    VersionId::new(i as u32 + 1),
                    &mut Faa::new(1 << 18),
                    &mut out,
                )
                .unwrap_or_else(|e| panic!("{tag}: restore V{} failed: {e}", i + 1));
            assert_eq!(&out, expect, "{tag}: V{} bytes differ", i + 1);
        }
    }
}
