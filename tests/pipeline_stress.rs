//! Seeded concurrency stress for the staged backup pipeline.
//!
//! Random backup / delete / save sequences run through the concurrent
//! pipeline with queue depths of 1–2, the smallest legal settings — every
//! segment hand-off contends, so any missing wake-up or ordering bug in the
//! bounded queues shows up as a deadlock or a corrupted repository. Each
//! case runs under a watchdog thread: if the pipeline hangs, the test fails
//! with a timeout instead of hanging CI. After every save the repository
//! must reopen and pass a clean fsck audit.

use std::path::PathBuf;
use std::sync::mpsc;
use std::time::Duration;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use hidestore::core::{HiDeStore, HiDeStoreConfig};
use hidestore::dedup::{BackupPipeline, ConcurrencyConfig, PipelineConfig};
use hidestore::fsck::{Severity, SystemAuditor};
use hidestore::index::DdfsIndex;
use hidestore::restore::Faa;
use hidestore::rewriting::Capping;
use hidestore::storage::{MemoryContainerStore, VersionId};

/// A unique scratch directory, removed on drop.
struct Scratch(PathBuf);

impl Scratch {
    fn new(tag: &str) -> Self {
        let dir = std::env::temp_dir().join(format!("hds-stress-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        Scratch(dir)
    }
}

impl Drop for Scratch {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

/// Runs `body` on its own thread under a deadline. A deadlocked pipeline
/// trips the watchdog instead of hanging the test binary forever.
fn with_watchdog(tag: &str, timeout: Duration, body: impl FnOnce() + Send + 'static) {
    let (tx, rx) = mpsc::channel();
    let handle = std::thread::spawn(move || {
        body();
        let _ = tx.send(());
    });
    match rx.recv_timeout(timeout) {
        Ok(()) => handle
            .join()
            .unwrap_or_else(|e| std::panic::resume_unwind(e)),
        Err(_) => panic!("{tag}: watchdog fired after {timeout:?} — pipeline deadlocked"),
    }
}

fn random_bytes(rng: &mut StdRng, len: usize) -> Vec<u8> {
    let mut data = vec![0u8; len];
    rng.fill(&mut data[..]);
    data
}

/// Mutates a random window of the previous payload so successive versions
/// share most chunks (the realistic dedup regime).
fn mutate(rng: &mut StdRng, data: &mut Vec<u8>) {
    match rng.gen_range(0u32..3) {
        0 => {
            let at = rng.gen_range(0..data.len().max(1));
            let len = rng.gen_range(500usize..4000).min(data.len() - at);
            let patch = random_bytes(rng, len);
            data[at..at + len].copy_from_slice(&patch);
        }
        1 => {
            let len = rng.gen_range(500usize..4000);
            let extra = random_bytes(rng, len);
            data.extend_from_slice(&extra);
        }
        _ => {
            let keep = rng.gen_range(data.len() / 2..data.len()).max(1);
            data.truncate(keep);
        }
    }
}

/// Random backup / delete / save sequences against an on-disk repository
/// with the tightest queues, fsck-audited after every save.
#[test]
fn random_ops_under_backpressure_audit_clean() {
    for (case, &(threads, depth)) in [(2usize, 1usize), (4, 1), (8, 2)].iter().enumerate() {
        let tag = format!("stress-{threads}t-{depth}q");
        with_watchdog(&tag.clone(), Duration::from_secs(300), move || {
            let mut rng = StdRng::seed_from_u64(0xC0FFEE + case as u64);
            let scratch = Scratch::new(&tag);
            let config = HiDeStoreConfig {
                avg_chunk_size: 1024,
                container_capacity: 16 * 1024,
                ..HiDeStoreConfig::default()
            }
            .with_threads(threads)
            .with_queue_depth(depth);
            let (mut hds, _) = HiDeStore::open_repository_report(config, &scratch.0)
                .unwrap_or_else(|e| panic!("{tag}: open: {e}"));
            let mut data = random_bytes(&mut rng, 40_000);
            hds.backup(&data).unwrap();
            let mut newest = 1u32;
            let mut oldest = 1u32;
            for round in 0..12 {
                match rng.gen_range(0u32..4) {
                    // Backup a mutated version (weighted: half the ops).
                    0 | 1 => {
                        mutate(&mut rng, &mut data);
                        hds.backup(&data).unwrap();
                        newest += 1;
                    }
                    // Expire a random prefix when history allows.
                    2 => {
                        if oldest < newest {
                            let up_to = rng.gen_range(oldest..newest);
                            hds.delete_expired(VersionId::new(up_to)).unwrap();
                            oldest = up_to + 1;
                        }
                    }
                    // Save, reopen, audit.
                    _ => {
                        hds.save_repository(&scratch.0).unwrap();
                        let (mut reopened, _) =
                            HiDeStore::open_repository_report(config, &scratch.0)
                                .unwrap_or_else(|e| panic!("{tag} round {round}: reopen: {e}"));
                        let audit = SystemAuditor::new().audit(&mut reopened);
                        assert_eq!(
                            audit.count(Severity::Error),
                            0,
                            "{tag} round {round}: fsck after save:\n{:#?}",
                            audit.findings
                        );
                        hds = reopened;
                    }
                }
            }
            // Final save + audit + byte-exact restore of the newest version.
            hds.save_repository(&scratch.0).unwrap();
            let audit = SystemAuditor::new().audit(&mut hds);
            assert_eq!(audit.count(Severity::Error), 0, "{tag}: final fsck");
            let mut out = Vec::new();
            hds.restore(VersionId::new(newest), &mut Faa::new(1 << 18), &mut out)
                .unwrap();
            assert_eq!(out, data, "{tag}: newest version must restore");
        });
    }
}

/// Depth-1 queues on the raw `BackupPipeline`: every stage hand-off blocks,
/// and the resulting repository must still match a serial run byte-for-byte.
#[test]
fn tightest_queues_still_serial_equivalent() {
    with_watchdog("depth1-differential", Duration::from_secs(300), || {
        let mut rng = StdRng::seed_from_u64(0xBEEF);
        let config = |concurrency| PipelineConfig {
            avg_chunk_size: 1024,
            container_capacity: 32 * 1024,
            segment_chunks: 8,
            concurrency,
            ..PipelineConfig::default()
        };
        let mut serial = BackupPipeline::new(
            config(ConcurrencyConfig::serial()),
            DdfsIndex::new(),
            Capping::new(4),
            MemoryContainerStore::new(),
        );
        let mut concurrent = BackupPipeline::new(
            config(ConcurrencyConfig::threads(8).with_queue_depth(1)),
            DdfsIndex::new(),
            Capping::new(4),
            MemoryContainerStore::new(),
        );
        let mut data = random_bytes(&mut rng, 60_000);
        for _ in 0..8 {
            let s1 = serial.backup(&data).unwrap();
            let s2 = concurrent.backup(&data).unwrap();
            assert_eq!(s1, s2, "per-version stats must be identical");
            mutate(&mut rng, &mut data);
        }
        use hidestore::storage::ContainerStore;
        assert_eq!(serial.store().ids(), concurrent.store().ids());
        for id in serial.store().ids() {
            assert_eq!(
                serial.store_mut().read(id).unwrap().encode(),
                concurrent.store_mut().read(id).unwrap().encode(),
                "container {id} differs under depth-1 queues"
            );
        }
        // The tight queues must actually have exercised backpressure.
        let stages = concurrent.run_stats().stages;
        assert!(
            stages.chunk.blocked_full + stages.hash.blocked_full + stages.hash.blocked_empty > 0,
            "depth-1 queues ran without any wait: {stages:?}"
        );
    });
}
