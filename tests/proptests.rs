//! Property-based tests over the core invariants of the whole stack.

use proptest::prelude::*;

use hidestore::chunking::{chunk_spans, ChunkerKind};
use hidestore::core::{HiDeStore, HiDeStoreConfig};
use hidestore::dedup::{BackupPipeline, PipelineConfig};
use hidestore::hash::{Fingerprint, Sha1};
use hidestore::index::DdfsIndex;
use hidestore::restore::Faa;
use hidestore::rewriting::NoRewrite;
use hidestore::storage::{
    Cid, Container, ContainerId, MemoryContainerStore, Recipe, RecipeEntry, VersionId,
};

/// An arbitrary sequence of version edits applied to an initial buffer.
#[derive(Debug, Clone)]
enum Edit {
    Overwrite { at: usize, data: Vec<u8> },
    Insert { at: usize, data: Vec<u8> },
    Delete { at: usize, len: usize },
    Append { data: Vec<u8> },
}

fn edit_strategy() -> impl Strategy<Value = Edit> {
    prop_oneof![
        (0usize..50_000, proptest::collection::vec(any::<u8>(), 1..3000))
            .prop_map(|(at, data)| Edit::Overwrite { at, data }),
        (0usize..50_000, proptest::collection::vec(any::<u8>(), 1..2000))
            .prop_map(|(at, data)| Edit::Insert { at, data }),
        (0usize..50_000, 1usize..2000).prop_map(|(at, len)| Edit::Delete { at, len }),
        proptest::collection::vec(any::<u8>(), 1..3000).prop_map(|data| Edit::Append { data }),
    ]
}

fn apply(mut base: Vec<u8>, edit: &Edit) -> Vec<u8> {
    match edit {
        Edit::Overwrite { at, data } => {
            let at = at % base.len().max(1);
            let end = (at + data.len()).min(base.len());
            if at < base.len() {
                base[at..end].copy_from_slice(&data[..end - at]);
            }
            base
        }
        Edit::Insert { at, data } => {
            let at = at % (base.len() + 1);
            let tail = base.split_off(at);
            base.extend_from_slice(data);
            base.extend_from_slice(&tail);
            base
        }
        Edit::Delete { at, len } => {
            if base.is_empty() {
                return base;
            }
            let at = at % base.len();
            let end = (at + len).min(base.len());
            // Never delete everything: keep at least one byte.
            if end - at < base.len() {
                base.drain(at..end);
            }
            base
        }
        Edit::Append { data } => {
            base.extend_from_slice(data);
            base
        }
    }
}

fn version_history(seed_len: usize, edits: &[Edit]) -> Vec<Vec<u8>> {
    let mut current: Vec<u8> =
        (0..seed_len).map(|i| (i as u64).wrapping_mul(0x9E37_79B9).to_le_bytes()[0]).collect();
    let mut versions = vec![current.clone()];
    for e in edits {
        current = apply(current, e);
        versions.push(current.clone());
    }
    versions
}

fn hds_config() -> HiDeStoreConfig {
    HiDeStoreConfig {
        avg_chunk_size: 512,
        container_capacity: 16 * 1024,
        ..HiDeStoreConfig::default()
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// restore(backup(x)) == x for HiDeStore over arbitrary edit histories.
    #[test]
    fn hidestore_round_trips_arbitrary_histories(
        seed_len in 2_000usize..30_000,
        edits in proptest::collection::vec(edit_strategy(), 1..6),
    ) {
        let versions = version_history(seed_len, &edits);
        let mut hds = HiDeStore::new(hds_config(), MemoryContainerStore::new());
        for v in &versions {
            hds.backup(v).unwrap();
        }
        for (i, expect) in versions.iter().enumerate() {
            let mut out = Vec::new();
            hds.restore(VersionId::new(i as u32 + 1), &mut Faa::new(1 << 18), &mut out).unwrap();
            prop_assert_eq!(&out, expect, "version {}", i + 1);
        }
    }

    /// Flattening never changes restored bytes.
    #[test]
    fn flatten_preserves_restores(
        seed_len in 2_000usize..20_000,
        edits in proptest::collection::vec(edit_strategy(), 1..5),
    ) {
        let versions = version_history(seed_len, &edits);
        let mut hds = HiDeStore::new(hds_config(), MemoryContainerStore::new());
        for v in &versions {
            hds.backup(v).unwrap();
        }
        let mut before = Vec::new();
        for i in 0..versions.len() {
            let mut out = Vec::new();
            hds.restore(VersionId::new(i as u32 + 1), &mut Faa::new(1 << 18), &mut out).unwrap();
            before.push(out);
        }
        hds.flatten_recipes();
        for (i, expect) in before.iter().enumerate() {
            let mut out = Vec::new();
            hds.restore(VersionId::new(i as u32 + 1), &mut Faa::new(1 << 18), &mut out).unwrap();
            prop_assert_eq!(&out, expect, "version {}", i + 1);
        }
    }

    /// Deleting an expired prefix never corrupts the survivors.
    #[test]
    fn deletion_preserves_survivors(
        seed_len in 2_000usize..20_000,
        edits in proptest::collection::vec(edit_strategy(), 3..7),
        expire_frac in 0.1f64..0.8,
    ) {
        let versions = version_history(seed_len, &edits);
        let mut hds = HiDeStore::new(hds_config(), MemoryContainerStore::new());
        for v in &versions {
            hds.backup(v).unwrap();
        }
        let up_to = ((versions.len() as f64 * expire_frac) as u32).clamp(1, versions.len() as u32 - 1);
        hds.delete_expired(VersionId::new(up_to)).unwrap();
        for v in up_to + 1..=versions.len() as u32 {
            let mut out = Vec::new();
            hds.restore(VersionId::new(v), &mut Faa::new(1 << 18), &mut out).unwrap();
            prop_assert_eq!(&out, &versions[(v - 1) as usize], "survivor V{}", v);
        }
    }

    /// The baseline pipeline round-trips arbitrary histories too.
    #[test]
    fn pipeline_round_trips_arbitrary_histories(
        seed_len in 2_000usize..20_000,
        edits in proptest::collection::vec(edit_strategy(), 1..5),
    ) {
        let versions = version_history(seed_len, &edits);
        let mut p = BackupPipeline::new(
            PipelineConfig {
                avg_chunk_size: 512,
                container_capacity: 16 * 1024,
                segment_chunks: 16,
                ..PipelineConfig::default()
            },
            DdfsIndex::new(),
            NoRewrite::new(),
            MemoryContainerStore::new(),
        );
        for v in &versions {
            p.backup(v).unwrap();
        }
        for (i, expect) in versions.iter().enumerate() {
            let mut out = Vec::new();
            p.restore(VersionId::new(i as u32 + 1), &mut Faa::new(1 << 18), &mut out).unwrap();
            prop_assert_eq!(&out, expect, "version {}", i + 1);
        }
    }

    /// Chunkers cover the stream exactly and respect their bounds on
    /// arbitrary data.
    #[test]
    fn chunkers_cover_arbitrary_data(
        data in proptest::collection::vec(any::<u8>(), 1..60_000),
        kind_idx in 0usize..5,
    ) {
        let kind = ChunkerKind::ALL[kind_idx];
        let mut chunker = kind.build(1024);
        let spans = chunk_spans(chunker.as_mut(), &data);
        prop_assert_eq!(spans.first().map(|s| s.start), Some(0));
        prop_assert_eq!(spans.last().map(|s| s.end), Some(data.len()));
        for w in spans.windows(2) {
            prop_assert_eq!(w[0].end, w[1].start);
        }
        for s in &spans {
            prop_assert!(s.len() <= chunker.max_size());
        }
    }

    /// SHA-1 incremental hashing equals one-shot hashing for arbitrary
    /// splits.
    #[test]
    fn sha1_incremental_equals_oneshot(
        data in proptest::collection::vec(any::<u8>(), 0..5_000),
        split_points in proptest::collection::vec(any::<proptest::sample::Index>(), 0..5),
    ) {
        let expect = Sha1::hash(&data);
        let mut splits: Vec<usize> =
            split_points.iter().map(|ix| ix.index(data.len() + 1)).collect();
        splits.sort_unstable();
        let mut h = Sha1::new();
        let mut prev = 0;
        for s in splits {
            h.update(&data[prev..s]);
            prev = s;
        }
        h.update(&data[prev..]);
        prop_assert_eq!(h.finalize(), expect);
    }

    /// Containers round-trip arbitrary chunk sets through encode/decode.
    #[test]
    fn container_encode_decode_arbitrary(
        chunks in proptest::collection::vec(proptest::collection::vec(any::<u8>(), 1..500), 1..20),
    ) {
        let mut c = Container::new(ContainerId::new(1), 1 << 20);
        let mut kept = Vec::new();
        for (i, data) in chunks.iter().enumerate() {
            let fp = Fingerprint::synthetic(i as u64);
            if c.try_add(fp, data) {
                kept.push((fp, data.clone()));
            }
        }
        let decoded = Container::decode(&c.encode()).unwrap();
        prop_assert_eq!(decoded.chunk_count(), kept.len());
        for (fp, data) in kept {
            prop_assert_eq!(decoded.get(&fp), Some(&data[..]));
        }
    }

    /// Recipes round-trip arbitrary entries through encode/decode.
    #[test]
    fn recipe_encode_decode_arbitrary(
        entries in proptest::collection::vec((any::<u64>(), any::<u32>(), any::<i32>()), 0..100),
        version in 1u32..10_000,
    ) {
        let mut r = Recipe::new(VersionId::new(version));
        for &(fp, size, cid) in &entries {
            r.push(RecipeEntry::new(Fingerprint::synthetic(fp), size, Cid::from_raw(cid)));
        }
        let decoded = Recipe::decode(&r.encode()).unwrap();
        prop_assert_eq!(decoded, r);
    }

    /// HiDeStore's dedup ratio never falls below zero and two identical
    /// consecutive versions always dedup the second fully.
    #[test]
    fn identical_versions_fully_deduplicated(
        seed_len in 2_000usize..20_000,
    ) {
        let versions = version_history(seed_len, &[]);
        let data = &versions[0];
        let mut hds = HiDeStore::new(hds_config(), MemoryContainerStore::new());
        hds.backup(data).unwrap();
        let s2 = hds.backup(data).unwrap();
        prop_assert_eq!(s2.stored_bytes, 0);
        prop_assert_eq!(s2.cold_chunks, 0);
    }
}

// ---- Additional properties over the streaming and maintenance paths ----

use hidestore::chunking::{StreamChunker, TttdChunker};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Streaming chunking produces the same boundaries as whole-stream
    /// chunking for arbitrary data and arbitrary push sizes.
    #[test]
    fn stream_chunker_equals_whole_stream(
        data in proptest::collection::vec(any::<u8>(), 1..80_000),
        push in 1usize..10_000,
    ) {
        let mut whole = TttdChunker::new(1024);
        let expect: Vec<usize> =
            chunk_spans(&mut whole, &data).iter().map(|s| s.len()).collect();
        let mut got = Vec::new();
        let mut stream = StreamChunker::new(TttdChunker::new(1024));
        for piece in data.chunks(push) {
            stream.push(piece, |c| got.push(c.len()));
        }
        stream.finish(|c| got.push(c.len()));
        prop_assert_eq!(got, expect);
    }

    /// Archival re-clustering never changes restored bytes, for arbitrary
    /// version histories.
    #[test]
    fn recluster_preserves_bytes(
        seed_len in 4_000usize..20_000,
        edits in proptest::collection::vec(edit_strategy(), 2..6),
    ) {
        let versions = version_history(seed_len, &edits);
        let mut hds = HiDeStore::new(
            HiDeStoreConfig {
                avg_chunk_size: 512,
                container_capacity: 8 * 1024,
                ..HiDeStoreConfig::default()
            },
            MemoryContainerStore::new(),
        );
        for v in &versions {
            hds.backup(v).unwrap();
        }
        hds.recluster_archival().unwrap();
        for (i, expect) in versions.iter().enumerate() {
            let mut out = Vec::new();
            hds.restore(VersionId::new(i as u32 + 1), &mut Faa::new(1 << 18), &mut out).unwrap();
            prop_assert_eq!(&out, expect, "version {}", i + 1);
        }
    }

    /// Cid sign encoding round-trips through raw i32 for all values.
    #[test]
    fn cid_raw_round_trip(raw in any::<i32>()) {
        let cid = Cid::from_raw(raw);
        prop_assert_eq!(cid.raw(), raw);
        match raw {
            0 => prop_assert!(cid.is_active()),
            r if r > 0 => prop_assert_eq!(cid.as_archival().map(|c| c.get() as i32), Some(r)),
            r => prop_assert_eq!(cid.as_chained().map(|v| -(v.get() as i32)), Some(r)),
        }
    }

    /// backup_reader equals backup for arbitrary histories and read sizes.
    #[test]
    fn reader_equals_slice_backup(
        seed_len in 2_000usize..30_000,
        edit in edit_strategy(),
    ) {
        let versions = version_history(seed_len, &[edit]);
        let mut a = HiDeStore::new(hds_config(), MemoryContainerStore::new());
        let mut b = HiDeStore::new(hds_config(), MemoryContainerStore::new());
        for v in &versions {
            let sa = a.backup(v).unwrap();
            let sb = b.backup_reader(&v[..]).unwrap();
            prop_assert_eq!(sa.chunks, sb.chunks);
            prop_assert_eq!(sa.stored_bytes, sb.stored_bytes);
        }
    }
}
