//! Property-based tests over the core invariants of the whole stack.
//!
//! Offline-friendly harness: instead of an external property-testing
//! framework, each property runs over a fixed number of cases driven by the
//! vendored deterministic [`StdRng`] — same seed, same inputs, every run.
//! On failure the panic message names the case seed so the input can be
//! reproduced exactly.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use hidestore::chunking::{chunk_spans, ChunkerKind, StreamChunker, TttdChunker};
use hidestore::core::{HiDeStore, HiDeStoreConfig};
use hidestore::dedup::{BackupPipeline, PipelineConfig};
use hidestore::fsck::SystemAuditor;
use hidestore::hash::{Fingerprint, Sha1};
use hidestore::index::DdfsIndex;
use hidestore::restore::Faa;
use hidestore::rewriting::NoRewrite;
use hidestore::storage::{
    Cid, Container, ContainerId, MemoryContainerStore, Recipe, RecipeEntry, VersionId,
};

/// Runs `body` once per case with a per-case deterministic RNG. The case
/// seed appears in any panic message via the wrapping assertion context.
fn cases(n: u64, base_seed: u64, body: impl Fn(&mut StdRng)) {
    for case in 0..n {
        let seed = base_seed.wrapping_mul(1_000_003).wrapping_add(case);
        let mut rng = StdRng::seed_from_u64(seed);
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| body(&mut rng)));
        if let Err(panic) = result {
            eprintln!("property failed for case seed {seed} (case {case}/{n})");
            std::panic::resume_unwind(panic);
        }
    }
}

fn random_bytes(rng: &mut StdRng, len: usize) -> Vec<u8> {
    let mut data = vec![0u8; len];
    rng.fill(&mut data[..]);
    data
}

/// An arbitrary version edit applied to the previous version's buffer.
#[derive(Debug, Clone)]
enum Edit {
    Overwrite { at: usize, data: Vec<u8> },
    Insert { at: usize, data: Vec<u8> },
    Delete { at: usize, len: usize },
    Append { data: Vec<u8> },
}

fn random_edit(rng: &mut StdRng) -> Edit {
    match rng.gen_range(0usize..4) {
        0 => {
            let at = rng.gen_range(0usize..50_000);
            let len = rng.gen_range(1usize..3000);
            Edit::Overwrite {
                at,
                data: random_bytes(rng, len),
            }
        }
        1 => {
            let at = rng.gen_range(0usize..50_000);
            let len = rng.gen_range(1usize..2000);
            Edit::Insert {
                at,
                data: random_bytes(rng, len),
            }
        }
        2 => Edit::Delete {
            at: rng.gen_range(0usize..50_000),
            len: rng.gen_range(1usize..2000),
        },
        _ => {
            let len = rng.gen_range(1usize..3000);
            Edit::Append {
                data: random_bytes(rng, len),
            }
        }
    }
}

fn random_edits(rng: &mut StdRng, lo: usize, hi: usize) -> Vec<Edit> {
    let n = rng.gen_range(lo..hi);
    (0..n).map(|_| random_edit(rng)).collect()
}

fn apply(mut base: Vec<u8>, edit: &Edit) -> Vec<u8> {
    match edit {
        Edit::Overwrite { at, data } => {
            let at = at % base.len().max(1);
            let end = (at + data.len()).min(base.len());
            if at < base.len() {
                base[at..end].copy_from_slice(&data[..end - at]);
            }
            base
        }
        Edit::Insert { at, data } => {
            let at = at % (base.len() + 1);
            let tail = base.split_off(at);
            base.extend_from_slice(data);
            base.extend_from_slice(&tail);
            base
        }
        Edit::Delete { at, len } => {
            if base.is_empty() {
                return base;
            }
            let at = at % base.len();
            let end = (at + len).min(base.len());
            // Never delete everything: keep at least one byte.
            if end - at < base.len() {
                base.drain(at..end);
            }
            base
        }
        Edit::Append { data } => {
            base.extend_from_slice(data);
            base
        }
    }
}

fn version_history(seed_len: usize, edits: &[Edit]) -> Vec<Vec<u8>> {
    let mut current: Vec<u8> = (0..seed_len)
        .map(|i| (i as u64).wrapping_mul(0x9E37_79B9).to_le_bytes()[0])
        .collect();
    let mut versions = vec![current.clone()];
    for e in edits {
        current = apply(current, e);
        versions.push(current.clone());
    }
    versions
}

fn hds_config() -> HiDeStoreConfig {
    HiDeStoreConfig {
        avg_chunk_size: 512,
        container_capacity: 16 * 1024,
        ..HiDeStoreConfig::default()
    }
}

/// restore(backup(x)) == x for HiDeStore over arbitrary edit histories.
#[test]
fn hidestore_round_trips_arbitrary_histories() {
    cases(10, 0x01, |rng| {
        let seed_len = rng.gen_range(2_000usize..30_000);
        let edits = random_edits(rng, 1, 6);
        let versions = version_history(seed_len, &edits);
        let mut hds = HiDeStore::new(hds_config(), MemoryContainerStore::new());
        for v in &versions {
            hds.backup(v).unwrap();
        }
        for (i, expect) in versions.iter().enumerate() {
            let mut out = Vec::new();
            hds.restore(
                VersionId::new(i as u32 + 1),
                &mut Faa::new(1 << 18),
                &mut out,
            )
            .unwrap();
            assert_eq!(&out, expect, "version {}", i + 1);
        }
    });
}

/// Flattening never changes restored bytes.
#[test]
fn flatten_preserves_restores() {
    cases(8, 0x02, |rng| {
        let seed_len = rng.gen_range(2_000usize..20_000);
        let edits = random_edits(rng, 1, 5);
        let versions = version_history(seed_len, &edits);
        let mut hds = HiDeStore::new(hds_config(), MemoryContainerStore::new());
        for v in &versions {
            hds.backup(v).unwrap();
        }
        let mut before = Vec::new();
        for i in 0..versions.len() {
            let mut out = Vec::new();
            hds.restore(
                VersionId::new(i as u32 + 1),
                &mut Faa::new(1 << 18),
                &mut out,
            )
            .unwrap();
            before.push(out);
        }
        hds.flatten_recipes();
        for (i, expect) in before.iter().enumerate() {
            let mut out = Vec::new();
            hds.restore(
                VersionId::new(i as u32 + 1),
                &mut Faa::new(1 << 18),
                &mut out,
            )
            .unwrap();
            assert_eq!(&out, expect, "version {}", i + 1);
        }
    });
}

/// Deleting an expired prefix never corrupts the survivors.
#[test]
fn deletion_preserves_survivors() {
    cases(8, 0x03, |rng| {
        let seed_len = rng.gen_range(2_000usize..20_000);
        let edits = random_edits(rng, 3, 7);
        let versions = version_history(seed_len, &edits);
        let mut hds = HiDeStore::new(hds_config(), MemoryContainerStore::new());
        for v in &versions {
            hds.backup(v).unwrap();
        }
        let up_to = rng.gen_range(1u32..versions.len() as u32);
        hds.delete_expired(VersionId::new(up_to)).unwrap();
        for v in up_to + 1..=versions.len() as u32 {
            let mut out = Vec::new();
            hds.restore(VersionId::new(v), &mut Faa::new(1 << 18), &mut out)
                .unwrap();
            assert_eq!(&out, &versions[(v - 1) as usize], "survivor V{v}");
        }
    });
}

/// The baseline pipeline round-trips arbitrary histories too.
#[test]
fn pipeline_round_trips_arbitrary_histories() {
    cases(8, 0x04, |rng| {
        let seed_len = rng.gen_range(2_000usize..20_000);
        let edits = random_edits(rng, 1, 5);
        let versions = version_history(seed_len, &edits);
        let mut p = BackupPipeline::new(
            PipelineConfig {
                avg_chunk_size: 512,
                container_capacity: 16 * 1024,
                segment_chunks: 16,
                ..PipelineConfig::default()
            },
            DdfsIndex::new(),
            NoRewrite::new(),
            MemoryContainerStore::new(),
        );
        for v in &versions {
            p.backup(v).unwrap();
        }
        for (i, expect) in versions.iter().enumerate() {
            let mut out = Vec::new();
            p.restore(
                VersionId::new(i as u32 + 1),
                &mut Faa::new(1 << 18),
                &mut out,
            )
            .unwrap();
            assert_eq!(&out, expect, "version {}", i + 1);
        }
    });
}

/// Chunkers cover the stream exactly and respect their bounds on arbitrary
/// data.
#[test]
fn chunkers_cover_arbitrary_data() {
    cases(20, 0x05, |rng| {
        let len = rng.gen_range(1usize..60_000);
        let data = random_bytes(rng, len);
        let kind = ChunkerKind::ALL[rng.gen_range(0usize..ChunkerKind::ALL.len())];
        let mut chunker = kind.build(1024);
        let spans = chunk_spans(chunker.as_mut(), &data);
        assert_eq!(spans.first().map(|s| s.start), Some(0));
        assert_eq!(spans.last().map(|s| s.end), Some(data.len()));
        for w in spans.windows(2) {
            assert_eq!(w[0].end, w[1].start);
        }
        for s in &spans {
            assert!(s.len() <= chunker.max_size());
        }
    });
}

/// SHA-1 incremental hashing equals one-shot hashing for arbitrary splits.
#[test]
fn sha1_incremental_equals_oneshot() {
    cases(30, 0x06, |rng| {
        let len = rng.gen_range(0usize..5_000);
        let data = random_bytes(rng, len);
        let expect = Sha1::hash(&data);
        let n_splits = rng.gen_range(0usize..5);
        let mut splits: Vec<usize> = (0..n_splits)
            .map(|_| rng.gen_range(0usize..=data.len()))
            .collect();
        splits.sort_unstable();
        let mut h = Sha1::new();
        let mut prev = 0;
        for s in splits {
            h.update(&data[prev..s]);
            prev = s;
        }
        h.update(&data[prev..]);
        assert_eq!(h.finalize(), expect);
    });
}

/// Containers round-trip arbitrary chunk sets through encode/decode.
#[test]
fn container_encode_decode_arbitrary() {
    cases(30, 0x07, |rng| {
        let n_chunks = rng.gen_range(1usize..20);
        let chunks: Vec<Vec<u8>> = (0..n_chunks)
            .map(|_| {
                let len = rng.gen_range(1usize..500);
                random_bytes(rng, len)
            })
            .collect();
        let mut c = Container::new(ContainerId::new(1), 1 << 20);
        let mut kept = Vec::new();
        for (i, data) in chunks.iter().enumerate() {
            let fp = Fingerprint::synthetic(i as u64);
            if c.try_add(fp, data) {
                kept.push((fp, data.clone()));
            }
        }
        let decoded = Container::decode(&c.encode()).unwrap();
        assert_eq!(decoded.chunk_count(), kept.len());
        for (fp, data) in kept {
            assert_eq!(decoded.get(&fp), Some(&data[..]));
        }
    });
}

/// Recipes round-trip arbitrary entries through encode/decode.
#[test]
fn recipe_encode_decode_arbitrary() {
    cases(30, 0x08, |rng| {
        let version = rng.gen_range(1u32..10_000);
        let mut r = Recipe::new(VersionId::new(version));
        for _ in 0..rng.gen_range(0usize..100) {
            r.push(RecipeEntry::new(
                Fingerprint::synthetic(rng.gen_range(0u64..u64::MAX)),
                rng.gen_range(0u32..u32::MAX),
                Cid::from_raw(rng.gen_range(0u64..u64::MAX) as u32 as i32),
            ));
        }
        let decoded = Recipe::decode(&r.encode()).unwrap();
        assert_eq!(decoded, r);
    });
}

/// Two identical consecutive versions always dedup the second fully.
#[test]
fn identical_versions_fully_deduplicated() {
    cases(10, 0x09, |rng| {
        let seed_len = rng.gen_range(2_000usize..20_000);
        let versions = version_history(seed_len, &[]);
        let data = &versions[0];
        let mut hds = HiDeStore::new(hds_config(), MemoryContainerStore::new());
        hds.backup(data).unwrap();
        let s2 = hds.backup(data).unwrap();
        assert_eq!(s2.stored_bytes, 0);
        assert_eq!(s2.cold_chunks, 0);
    });
}

// ---- Additional properties over the streaming and maintenance paths ----

/// Streaming chunking produces the same boundaries as whole-stream chunking
/// for arbitrary data and arbitrary push sizes.
#[test]
fn stream_chunker_equals_whole_stream() {
    cases(12, 0x0A, |rng| {
        let len = rng.gen_range(1usize..80_000);
        let data = random_bytes(rng, len);
        let push = rng.gen_range(1usize..10_000);
        let mut whole = TttdChunker::new(1024);
        let expect: Vec<usize> = chunk_spans(&mut whole, &data)
            .iter()
            .map(|s| s.len())
            .collect();
        let mut got = Vec::new();
        let mut stream = StreamChunker::new(TttdChunker::new(1024));
        for piece in data.chunks(push) {
            stream.push(piece, |c| got.push(c.len()));
        }
        stream.finish(|c| got.push(c.len()));
        assert_eq!(got, expect);
    });
}

/// Archival re-clustering never changes restored bytes, for arbitrary
/// version histories.
#[test]
fn recluster_preserves_bytes() {
    cases(8, 0x0B, |rng| {
        let seed_len = rng.gen_range(4_000usize..20_000);
        let edits = random_edits(rng, 2, 6);
        let versions = version_history(seed_len, &edits);
        let mut hds = HiDeStore::new(
            HiDeStoreConfig {
                avg_chunk_size: 512,
                container_capacity: 8 * 1024,
                ..HiDeStoreConfig::default()
            },
            MemoryContainerStore::new(),
        );
        for v in &versions {
            hds.backup(v).unwrap();
        }
        hds.recluster_archival().unwrap();
        for (i, expect) in versions.iter().enumerate() {
            let mut out = Vec::new();
            hds.restore(
                VersionId::new(i as u32 + 1),
                &mut Faa::new(1 << 18),
                &mut out,
            )
            .unwrap();
            assert_eq!(&out, expect, "version {}", i + 1);
        }
    });
}

/// Cid sign encoding round-trips through raw i32 for all values.
#[test]
fn cid_raw_round_trip() {
    cases(200, 0x0C, |rng| {
        let raw = rng.gen_range(0u64..=u64::MAX) as u32 as i32;
        let cid = Cid::from_raw(raw);
        assert_eq!(cid.raw(), raw);
        match raw {
            0 => assert!(cid.is_active()),
            r if r > 0 => assert_eq!(cid.as_archival().map(|c| c.get() as i32), Some(r)),
            r => assert_eq!(cid.as_chained().map(|v| -(v.get() as i32)), Some(r)),
        }
    });
    // The boundary values, explicitly.
    for raw in [0, 1, -1, i32::MAX, i32::MIN + 1] {
        assert_eq!(Cid::from_raw(raw).raw(), raw);
    }
}

/// backup_reader equals backup for arbitrary histories and read sizes.
#[test]
fn reader_equals_slice_backup() {
    cases(8, 0x0D, |rng| {
        let seed_len = rng.gen_range(2_000usize..30_000);
        let edit = random_edit(rng);
        let versions = version_history(seed_len, &[edit]);
        let mut a = HiDeStore::new(hds_config(), MemoryContainerStore::new());
        let mut b = HiDeStore::new(hds_config(), MemoryContainerStore::new());
        for v in &versions {
            let sa = a.backup(v).unwrap();
            let sb = b.backup_reader(&v[..]).unwrap();
            assert_eq!(sa.chunks, sb.chunks);
            assert_eq!(sa.stored_bytes, sb.stored_bytes);
        }
    });
}

/// After an arbitrary sequence of backup / flatten / delete_expired
/// operations, the cross-layer auditor finds nothing: every maintenance
/// path preserves every invariant.
#[test]
fn random_operation_sequences_audit_clean() {
    cases(8, 0x0E, |rng| {
        let seed_len = rng.gen_range(2_000usize..20_000);
        let mut current = version_history(seed_len, &[]).remove(0);
        let mut hds = HiDeStore::new(hds_config(), MemoryContainerStore::new());
        hds.backup(&current).unwrap();
        let mut newest = 1u32;
        let mut oldest = 1u32;
        for _ in 0..rng.gen_range(3usize..10) {
            match rng.gen_range(0usize..4) {
                // Backup a mutated next version (weighted: half the ops).
                0 | 1 => {
                    current = apply(current, &random_edit(rng));
                    hds.backup(&current).unwrap();
                    newest += 1;
                }
                // Flatten recipe chains (Algorithm 1).
                2 => {
                    hds.flatten_recipes();
                }
                // Expire a prefix of the history, when one exists.
                _ => {
                    if oldest < newest {
                        let up_to = rng.gen_range(oldest..newest);
                        hds.delete_expired(VersionId::new(up_to)).unwrap();
                        oldest = up_to + 1;
                    }
                }
            }
            let report = SystemAuditor::new().audit(&mut hds);
            assert!(
                report.is_clean(),
                "auditor found violations after random ops (newest V{newest}):\n{:#?}",
                report.findings
            );
        }
        // Everything still restores byte-exact at the end.
        let mut out = Vec::new();
        hds.restore(VersionId::new(newest), &mut Faa::new(1 << 18), &mut out)
            .unwrap();
        assert_eq!(out, current);
    });
}

/// Random interleavings of backup / out-of-line pass / delete_expired under
/// the out-of-line schemes (revdedup, hybrid): every surviving version
/// restores byte-exact after every operation and the auditor never reports
/// an error, no matter where the reverse-deduplication pass lands in the
/// sequence.
#[test]
fn out_of_line_schemes_survive_random_interleavings() {
    use hidestore::core::DedupMode;
    use hidestore::fsck::Severity;

    cases(5, 0x10, |rng| {
        for scheme in [DedupMode::RevDedup, DedupMode::Hybrid] {
            let seed_len = rng.gen_range(2_000usize..20_000);
            let mut current = version_history(seed_len, &[]).remove(0);
            let mut hds = HiDeStore::new(
                hds_config().with_scheme(scheme),
                MemoryContainerStore::new(),
            );
            hds.backup(&current).unwrap();
            let mut originals = std::collections::BTreeMap::new();
            originals.insert(1u32, current.clone());
            let mut newest = 1u32;
            for step in 0..rng.gen_range(4usize..9) {
                match rng.gen_range(0usize..4) {
                    // Backup a mutated next version (weighted: half the ops).
                    0 | 1 => {
                        current = apply(current, &random_edit(rng));
                        hds.backup(&current).unwrap();
                        newest += 1;
                        originals.insert(newest, current.clone());
                    }
                    // Reverse-deduplicate older versions against the newest.
                    2 => {
                        hds.out_of_line_pass()
                            .unwrap_or_else(|e| panic!("{scheme}: pass failed: {e}"));
                    }
                    // Expire a random prefix, when one exists.
                    _ => {
                        let oldest = *originals.keys().next().unwrap();
                        if oldest < newest {
                            let up_to = rng.gen_range(oldest..newest);
                            hds.delete_expired(VersionId::new(up_to)).unwrap();
                            originals.retain(|&v, _| v > up_to);
                        }
                    }
                }
                let report = SystemAuditor::new().audit(&mut hds);
                assert_eq!(
                    report.count(Severity::Error),
                    0,
                    "{scheme}: audit errors after step {step} (newest V{newest}):\n{:#?}",
                    report.findings
                );
                // One random survivor restores exactly after every operation.
                let pick = rng.gen_range(0usize..originals.len());
                let (&v, expect) = originals.iter().nth(pick).unwrap();
                let mut out = Vec::new();
                hds.restore(VersionId::new(v), &mut Faa::new(1 << 18), &mut out)
                    .unwrap_or_else(|e| panic!("{scheme}: restore V{v} failed: {e}"));
                assert_eq!(&out, expect, "{scheme}: V{v} differs after step {step}");
            }
            // Epilogue: every survivor restores exactly one more time.
            for (&v, expect) in &originals {
                let mut out = Vec::new();
                hds.restore(VersionId::new(v), &mut Faa::new(1 << 18), &mut out)
                    .unwrap();
                assert_eq!(&out, expect, "{scheme}: final V{v} differs");
            }
        }
    });
}

/// Random backup / delete / save / restore sequences over an on-disk
/// repository: every surviving version restores byte-exact through a
/// randomly drawn restore scheme, engine thread count, and queue depth, and
/// the repository audits clean after every save.
#[test]
fn random_lifecycles_restore_exactly_under_random_concurrency() {
    use hidestore::restore::{
        Alacc, BeladyCache, ChunkLru, ContainerLru, RestoreCache, RestoreConcurrency,
    };

    fn random_scheme(rng: &mut StdRng) -> Box<dyn RestoreCache> {
        match rng.gen_range(0usize..5) {
            0 => Box::new(ContainerLru::new(rng.gen_range(1usize..8))),
            1 => Box::new(ChunkLru::new(rng.gen_range(600usize..32_000))),
            2 => Box::new(Faa::new(rng.gen_range(600usize..32_000))),
            3 => {
                let half = rng.gen_range(600usize..16_000);
                Box::new(Alacc::new(half, half))
            }
            _ => Box::new(BeladyCache::new(rng.gen_range(1usize..8))),
        }
    }

    fn random_conc(rng: &mut StdRng) -> RestoreConcurrency {
        RestoreConcurrency::threads(rng.gen_range(1usize..9))
            .with_queue_depth(rng.gen_range(1usize..5))
            .with_readahead(rng.gen_range(1usize..9))
    }

    cases(6, 0x0F, |rng| {
        let dir = std::env::temp_dir().join(format!(
            "hds-proptest-lifecycle-{}-{}",
            std::process::id(),
            rng.gen_range(0u64..u64::MAX)
        ));
        let _ = std::fs::remove_dir_all(&dir);
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let seed_len = rng.gen_range(2_000usize..20_000);
            let mut current = version_history(seed_len, &[]).remove(0);
            let mut hds = HiDeStore::open_repository(hds_config(), &dir).unwrap();
            hds.backup(&current).unwrap();
            // Surviving version -> original bytes.
            let mut originals = std::collections::BTreeMap::new();
            originals.insert(1u32, current.clone());
            let mut newest = 1u32;
            for _ in 0..rng.gen_range(4usize..9) {
                match rng.gen_range(0usize..4) {
                    // Backup a mutated next version (weighted).
                    0 | 1 => {
                        current = apply(current, &random_edit(rng));
                        hds.backup(&current).unwrap();
                        newest += 1;
                        originals.insert(newest, current.clone());
                    }
                    // Save, audit, reopen.
                    2 => {
                        hds.save_repository(&dir).unwrap();
                        let report = SystemAuditor::new().audit(&mut hds);
                        assert!(
                            report.is_clean(),
                            "audit after save (newest V{newest}):\n{:#?}",
                            report.findings
                        );
                        hds = HiDeStore::open_repository(hds_config(), &dir).unwrap();
                    }
                    // Expire a random prefix, when one exists.
                    _ => {
                        let oldest = *originals.keys().next().unwrap();
                        if oldest < newest {
                            let up_to = rng.gen_range(oldest..newest);
                            hds.delete_expired(VersionId::new(up_to)).unwrap();
                            originals.retain(|&v, _| v > up_to);
                        }
                    }
                }
                // One random surviving version restores exactly, through a
                // random scheme at random engine concurrency.
                let pick = rng.gen_range(0usize..originals.len());
                let (&v, expect) = originals.iter().nth(pick).unwrap();
                let mut scheme = random_scheme(rng);
                let conc = random_conc(rng);
                let mut out = Vec::new();
                hds.restore_with(VersionId::new(v), scheme.as_mut(), &mut out, &conc)
                    .unwrap();
                assert_eq!(&out, expect, "V{v} under {conc:?}");
            }
            // Epilogue: every survivor restores exactly one more time.
            for (&v, expect) in &originals {
                let mut scheme = random_scheme(rng);
                let conc = random_conc(rng);
                let mut out = Vec::new();
                hds.restore_with(VersionId::new(v), scheme.as_mut(), &mut out, &conc)
                    .unwrap();
                assert_eq!(&out, expect, "final V{v} under {conc:?}");
            }
        }));
        let _ = std::fs::remove_dir_all(&dir);
        if let Err(panic) = result {
            std::panic::resume_unwind(panic);
        }
    });
}
