//! Differential serial-equivalence suite for the staged concurrent restore
//! engine.
//!
//! The engine's contract is that concurrency is *invisible* to everything
//! but wall-clock time: for every restore scheme, cache capacity, and thread
//! count, the staged path must restore byte-identical data with identical
//! `container_reads` and cache hit/miss accounting to the serial path. The
//! suite checks that over a fresh (2-version) repository and over a heavily
//! fragmented one (20 mutated versions, recipes flattened), restoring both
//! the most-relocated oldest version and the newest.
//!
//! `HDS_THREADS=<n>` narrows the sweep to one concurrent thread count so CI
//! can run the suite once per setting in release mode.

use std::path::{Path, PathBuf};

use hidestore::core::{HiDeStore, HiDeStoreConfig, HiDeStoreError, QuarantinedArtifact};
use hidestore::restore::{
    Alacc, BeladyCache, ChunkLru, ContainerLru, Faa, RestoreCache, RestoreConcurrency,
    RestoreReport,
};
use hidestore::storage::{ContainerStore, FileContainerStore, MemoryContainerStore, VersionId};
use hidestore::workloads::{Profile, VersionStream};

const CHUNK: usize = 1024;
const CONTAINER: usize = 32 * 1024;

fn hds_config() -> HiDeStoreConfig {
    HiDeStoreConfig {
        avg_chunk_size: CHUNK,
        container_capacity: CONTAINER,
        ..HiDeStoreConfig::default()
    }
}

/// Concurrent thread counts under test: {1, 2, 8} by default, or exactly
/// the value of `HDS_THREADS` when set (how ci.sh sweeps the settings).
fn thread_counts() -> Vec<usize> {
    match std::env::var("HDS_THREADS") {
        Ok(v) => vec![v.trim().parse().expect("HDS_THREADS must be a number")],
        Err(_) => vec![1, 2, 8],
    }
}

/// Capacity sweep: every scheme at a degenerate single-slot cache, a
/// two-slot cache, and a cache big enough to hold the working set.
/// (`slots` parameterizes container-granular schemes, `bytes` the
/// chunk/area-granular ones.)
const CAPACITIES: [(&str, usize, usize); 3] = [
    ("cap1", 1, CHUNK + 1),
    ("cap2", 2, 2 * CHUNK),
    ("large", 64, 1 << 20),
];

fn make_scheme(kind: &str, slots: usize, bytes: usize) -> Box<dyn RestoreCache> {
    match kind {
        "container-lru" => Box::new(ContainerLru::new(slots)),
        "chunk-lru" => Box::new(ChunkLru::new(bytes)),
        "faa" => Box::new(Faa::new(bytes)),
        "alacc" => Box::new(Alacc::new(bytes.div_ceil(2), bytes.div_ceil(2))),
        "belady" => Box::new(BeladyCache::new(slots)),
        other => unreachable!("unknown scheme {other}"),
    }
}

const SCHEMES: [&str; 5] = ["container-lru", "chunk-lru", "faa", "alacc", "belady"];

fn strip_stage(report: &RestoreReport) -> RestoreReport {
    RestoreReport {
        stage: Default::default(),
        ..*report
    }
}

/// Builds the repo, then asserts every scheme × capacity × thread count
/// restores `versions_to_check` byte-identically to the serial run with
/// identical read and hit/miss accounting.
fn assert_repo_thread_invariant(
    repo_tag: &str,
    hds: &mut HiDeStore<MemoryContainerStore>,
    originals: &[Vec<u8>],
    versions_to_check: &[u32],
) {
    for &v in versions_to_check {
        let expect = &originals[(v - 1) as usize];
        for scheme in SCHEMES {
            for (cap_tag, slots, bytes) in CAPACITIES {
                let mut serial_scheme = make_scheme(scheme, slots, bytes);
                let mut serial_out = Vec::new();
                let serial = hds
                    .restore_with(
                        VersionId::new(v),
                        serial_scheme.as_mut(),
                        &mut serial_out,
                        &RestoreConcurrency::serial(),
                    )
                    .expect("serial restore of retained version");
                assert_eq!(
                    &serial_out, expect,
                    "{repo_tag}/{scheme}/{cap_tag}: serial V{v} bytes differ from original"
                );
                for threads in thread_counts() {
                    let tag = format!("{repo_tag}/{scheme}/{cap_tag}@{threads} V{v}");
                    let mut staged_scheme = make_scheme(scheme, slots, bytes);
                    let mut out = Vec::new();
                    let conc = RestoreConcurrency::threads(threads).with_queue_depth(2);
                    let staged = hds
                        .restore_with(VersionId::new(v), staged_scheme.as_mut(), &mut out, &conc)
                        .unwrap_or_else(|e| panic!("{tag}: staged restore failed: {e}"));
                    assert_eq!(out, serial_out, "{tag}: bytes differ");
                    assert_eq!(
                        strip_stage(&serial),
                        strip_stage(&staged),
                        "{tag}: reads / hit-miss accounting differs"
                    );
                }
            }
        }
    }
}

/// Fresh repository: two lightly-mutated versions, nothing flattened.
#[test]
fn fresh_repository_is_thread_count_invariant() {
    let originals = VersionStream::new(Profile::Kernel.spec().scaled(200_000, 2), 7).all_versions();
    let mut hds = HiDeStore::new(hds_config(), MemoryContainerStore::new());
    for v in &originals {
        hds.backup(v).unwrap();
    }
    let newest = originals.len() as u32;
    assert_repo_thread_invariant("fresh", &mut hds, &originals, &[1, newest]);
}

/// Heavily fragmented repository: 20 mutated versions, recipes flattened —
/// old versions read through many relocated archival containers.
#[test]
fn fragmented_repository_is_thread_count_invariant() {
    let originals =
        VersionStream::new(Profile::Macos.spec().scaled(150_000, 20), 29).all_versions();
    let mut hds = HiDeStore::new(hds_config(), MemoryContainerStore::new());
    for v in &originals {
        hds.backup(v).unwrap();
    }
    hds.flatten_recipes();
    let newest = originals.len() as u32;
    assert_repo_thread_invariant("fragmented", &mut hds, &originals, &[1, newest / 2, newest]);
}

// ---------------------------------------------------------------------------
// Edge-case regressions.
// ---------------------------------------------------------------------------

/// A zero-byte backup has an empty restore plan; it must restore to zero
/// bytes at every thread count, not hang an idle prefetcher.
#[test]
fn empty_version_restores_at_every_thread_count() {
    let mut hds = HiDeStore::new(hds_config(), MemoryContainerStore::new());
    hds.backup(&[]).unwrap();
    for threads in thread_counts() {
        for scheme in SCHEMES {
            let mut cache = make_scheme(scheme, 1, CHUNK + 1);
            let mut out = Vec::new();
            let report = hds
                .restore_with(
                    VersionId::new(1),
                    cache.as_mut(),
                    &mut out,
                    &RestoreConcurrency::threads(threads),
                )
                .unwrap_or_else(|e| panic!("{scheme}@{threads}: {e}"));
            assert!(out.is_empty(), "{scheme}@{threads}");
            assert_eq!(report.bytes_restored, 0, "{scheme}@{threads}");
            assert_eq!(report.container_reads, 0, "{scheme}@{threads}");
        }
    }
}

/// A version of a single chunk exercises the one-entry plan / one-container
/// transition sequence path.
#[test]
fn single_chunk_version_restores_at_every_thread_count() {
    let mut hds = HiDeStore::new(hds_config(), MemoryContainerStore::new());
    let data = vec![0xA5u8; 64]; // far below the minimum chunk size
    hds.backup(&data).unwrap();
    for threads in thread_counts() {
        for scheme in SCHEMES {
            let mut cache = make_scheme(scheme, 1, CHUNK + 1);
            let mut out = Vec::new();
            let report = hds
                .restore_with(
                    VersionId::new(1),
                    cache.as_mut(),
                    &mut out,
                    &RestoreConcurrency::threads(threads),
                )
                .unwrap_or_else(|e| panic!("{scheme}@{threads}: {e}"));
            assert_eq!(out, data, "{scheme}@{threads}");
            assert_eq!(report.container_reads, 1, "{scheme}@{threads}");
        }
    }
}

/// Degenerate single-slot caches at high thread counts: the prefetch window
/// runs far ahead of a cache that evicts on every transition; accounting
/// must still match serial exactly (covered broadly by the matrix, pinned
/// here against regression with a deliberately thrashing plan).
#[test]
fn capacity_one_caches_thrash_identically_across_threads() {
    let originals =
        VersionStream::new(Profile::Kernel.spec().scaled(120_000, 6), 13).all_versions();
    let mut hds = HiDeStore::new(hds_config(), MemoryContainerStore::new());
    for v in &originals {
        hds.backup(v).unwrap();
    }
    hds.flatten_recipes();
    for scheme in ["container-lru", "chunk-lru"] {
        let mut serial_scheme = make_scheme(scheme, 1, CHUNK + 1);
        let mut serial_out = Vec::new();
        let serial = hds
            .restore_with(
                VersionId::new(1),
                serial_scheme.as_mut(),
                &mut serial_out,
                &RestoreConcurrency::serial(),
            )
            .unwrap();
        // A capacity-1 cache over a fragmented old version really thrashes.
        assert!(
            serial.container_reads > hds.archival().ids().len() as u64 / 2,
            "{scheme}: expected a thrashing plan, got {} reads",
            serial.container_reads
        );
        for threads in thread_counts() {
            let mut staged_scheme = make_scheme(scheme, 1, CHUNK + 1);
            let mut out = Vec::new();
            let staged = hds
                .restore_with(
                    VersionId::new(1),
                    staged_scheme.as_mut(),
                    &mut out,
                    &RestoreConcurrency::threads(threads).with_queue_depth(2),
                )
                .unwrap();
            assert_eq!(out, serial_out, "{scheme}@{threads}");
            assert_eq!(
                strip_stage(&serial),
                strip_stage(&staged),
                "{scheme}@{threads}"
            );
        }
    }
}

/// A unique scratch directory, removed on drop.
struct Scratch(PathBuf);

impl Scratch {
    fn new(tag: &str) -> Self {
        let dir = std::env::temp_dir().join(format!(
            "hds-restore-differential-{tag}-{}",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        Scratch(dir)
    }
}

impl Drop for Scratch {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

fn build_churned_repo(dir: &Path) {
    let mut hds = HiDeStore::open_repository(hds_config(), dir).expect("open repository");
    let versions = VersionStream::new(Profile::Kernel.spec().scaled(120_000, 5), 31).all_versions();
    for v in &versions {
        hds.backup(v).expect("backup");
    }
    hds.save_repository(dir).expect("save repository");
}

/// A plan referencing a quarantined archival container must surface the
/// typed `PartialRestore` — raised before the engine spawns any prefetcher,
/// so it cannot hang regardless of the configured thread count.
#[test]
fn quarantined_dependency_fails_typed_not_hung_with_staged_engine() {
    let scratch = Scratch::new("quarantine");
    build_churned_repo(&scratch.0);

    // Truncate one archival container on disk; the degraded reopen moves it
    // to quarantine/.
    let mut files: Vec<PathBuf> = std::fs::read_dir(scratch.0.join("archival"))
        .expect("archival dir")
        .filter_map(Result::ok)
        .map(|e| e.path())
        .filter(|p| p.extension().is_some_and(|x| x == "ctr"))
        .collect();
    files.sort();
    let victim = files.into_iter().next().expect("an archival container");
    let bytes = std::fs::read(&victim).expect("read container");
    std::fs::write(&victim, &bytes[..bytes.len() / 2]).expect("truncate container");

    let mut hds: HiDeStore<FileContainerStore> =
        HiDeStore::open_repository(hds_config(), &scratch.0).expect("degraded reopen");
    assert_eq!(hds.quarantine().len(), 1, "{:?}", hds.quarantine());

    let mut partial = 0;
    for v in hds.versions() {
        for threads in thread_counts() {
            let mut out = Vec::new();
            match hds.restore_with(
                v,
                &mut Faa::new(1 << 18),
                &mut out,
                &RestoreConcurrency::threads(threads).with_queue_depth(2),
            ) {
                Ok(_) => {}
                Err(HiDeStoreError::PartialRestore {
                    version,
                    quarantined,
                }) => {
                    assert_eq!(version, v);
                    assert!(
                        quarantined
                            .iter()
                            .any(|a| matches!(a, QuarantinedArtifact::ArchivalContainer(_))),
                        "the lost container must be named: {quarantined:?}"
                    );
                    partial += 1;
                }
                Err(other) => panic!("V{v}@{threads}: expected PartialRestore, got: {other}"),
            }
        }
    }
    assert!(partial > 0, "some version depended on the lost container");
}
