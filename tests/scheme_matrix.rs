//! The full cross-product: every fingerprint index × every rewriting policy
//! must ingest and restore a versioned workload byte-exactly. This is the
//! configuration net that catches composition bugs between phases.

use hidestore::dedup::{BackupPipeline, PipelineConfig};
use hidestore::index::{FingerprintIndex, IndexKind};
use hidestore::restore::Faa;
use hidestore::rewriting::{Capping, Cbr, CflRewrite, Fbw, NoRewrite, RewritePolicy, SegAlign};
use hidestore::storage::{MemoryContainerStore, VersionId};
use hidestore::workloads::{Profile, VersionStream};

const CHUNK: usize = 1024;
const CONTAINER: usize = 32 * 1024;

fn rewriters() -> Vec<(&'static str, Box<dyn RewritePolicy>)> {
    vec![
        ("none", Box::new(NoRewrite::new())),
        ("capping", Box::new(Capping::new(4))),
        ("cbr", Box::new(Cbr::default())),
        ("cfl", Box::new(CflRewrite::new(0.6, CONTAINER as u64))),
        (
            "fbw",
            Box::new(Fbw::new((4 * CONTAINER) as u64, 0.05, CONTAINER as u64)),
        ),
        ("seg-align", Box::new(SegAlign::new())),
    ]
}

#[test]
fn every_index_rewriter_combination_round_trips() {
    let versions = VersionStream::new(Profile::Kernel.spec().scaled(600_000, 4), 19).all_versions();
    for index_kind in IndexKind::ALL {
        for (rewriter_name, rewriter) in rewriters() {
            let tag = format!("{index_kind}+{rewriter_name}");
            let mut p = BackupPipeline::new(
                PipelineConfig {
                    avg_chunk_size: CHUNK,
                    container_capacity: CONTAINER,
                    segment_chunks: 32,
                    ..PipelineConfig::default()
                },
                index_kind.build(),
                rewriter,
                MemoryContainerStore::new(),
            );
            for v in &versions {
                p.backup(v)
                    .unwrap_or_else(|e| panic!("{tag}: backup failed: {e}"));
            }
            for (i, expect) in versions.iter().enumerate() {
                let mut out = Vec::new();
                p.restore(
                    VersionId::new(i as u32 + 1),
                    &mut Faa::new(1 << 18),
                    &mut out,
                )
                .unwrap_or_else(|e| panic!("{tag}: restore V{} failed: {e}", i + 1));
                assert_eq!(&out, expect, "{tag}: V{} bytes differ", i + 1);
            }
            // Sanity on the run's accounting.
            let run = p.run_stats();
            assert_eq!(run.versions, versions.len() as u32, "{tag}");
            assert!(run.dedup_ratio() > 0.0, "{tag}: no dedup at all?");
            assert!(
                run.stored_bytes <= run.logical_bytes,
                "{tag}: stored more than logical"
            );
        }
    }
}

/// The dedup-scheme × restore-cache sweep on full repositories: every
/// [`hidestore::core::DedupMode`] must ingest, persist, pass the auditor
/// after *every* save and after every out-of-line pass, and restore
/// byte-exactly under every cache scheme.
#[test]
fn every_dedup_mode_and_cache_scheme_round_trips_audit_clean() {
    use hidestore::core::{DedupMode, HiDeStore, HiDeStoreConfig};
    use hidestore::fsck::{Severity, SystemAuditor};
    use hidestore::restore::{Alacc, ContainerLru, RestoreCache};
    use hidestore::storage::FileContainerStore;

    let versions = VersionStream::new(Profile::Macos.spec().scaled(400_000, 4), 37).all_versions();
    type CacheFactory = fn() -> Box<dyn RestoreCache>;
    let caches: Vec<(&str, CacheFactory)> = vec![
        ("faa", || Box::new(Faa::new(1 << 18))),
        ("lru", || Box::new(ContainerLru::new(8))),
        ("alacc", || Box::new(Alacc::new(1 << 16, 1 << 18))),
    ];

    for scheme in DedupMode::ALL {
        let dir =
            std::env::temp_dir().join(format!("hds-scheme-matrix-{scheme}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let config = HiDeStoreConfig {
            avg_chunk_size: CHUNK,
            container_capacity: CONTAINER,
            ..HiDeStoreConfig::default()
        }
        .with_scheme(scheme);

        let audit_clean = |hds: &mut HiDeStore<FileContainerStore>, ctx: &str| {
            let report = SystemAuditor::new().audit(hds);
            assert_eq!(
                report.count(Severity::Error),
                0,
                "{ctx}: audit errors:\n{:#?}",
                report.findings
            );
        };

        let mut hds = HiDeStore::open_repository(config, &dir).unwrap();
        for (i, v) in versions.iter().enumerate() {
            hds.backup(v).unwrap();
            hds.save_repository(&dir).unwrap();
            audit_clean(&mut hds, &format!("{scheme}: after save {}", i + 1));
        }
        if scheme.is_out_of_line() {
            let report = hds.out_of_line_pass().unwrap();
            hds.save_repository(&dir).unwrap();
            audit_clean(&mut hds, &format!("{scheme}: after pass {report:?}"));
        }
        for (cache_name, make_cache) in &caches {
            for (i, expect) in versions.iter().enumerate() {
                let mut out = Vec::new();
                let mut cache = make_cache();
                hds.restore(VersionId::new(i as u32 + 1), cache.as_mut(), &mut out)
                    .unwrap_or_else(|e| {
                        panic!("{scheme}+{cache_name}: restore V{} failed: {e}", i + 1)
                    });
                assert_eq!(&out, expect, "{scheme}+{cache_name}: V{} differs", i + 1);
            }
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }
}

#[test]
fn rewriting_trades_space_for_locality_across_indexes() {
    // For each index, the no-rewrite run must store no more than the
    // rewriting runs (rewriting only ever adds bytes).
    let versions = VersionStream::new(Profile::Gcc.spec().scaled(600_000, 4), 23).all_versions();
    for index_kind in IndexKind::ALL {
        let stored = |rewriter: Box<dyn RewritePolicy>| {
            let mut p = BackupPipeline::new(
                PipelineConfig {
                    avg_chunk_size: CHUNK,
                    container_capacity: CONTAINER,
                    segment_chunks: 32,
                    ..PipelineConfig::default()
                },
                index_kind.build(),
                rewriter,
                MemoryContainerStore::new(),
            );
            for v in &versions {
                p.backup(v).unwrap();
            }
            p.run_stats().stored_bytes
        };
        let baseline = stored(Box::new(NoRewrite::new()));
        let capped = stored(Box::new(Capping::new(2)));
        assert!(
            capped >= baseline,
            "{index_kind}: capping stored {capped} < baseline {baseline}"
        );
    }
}

#[test]
fn index_exactness_ordering_holds() {
    // DDFS (exact) must never catch fewer duplicates than the near-exact
    // schemes on the same stream.
    let versions =
        VersionStream::new(Profile::Fslhomes.spec().scaled(600_000, 5), 29).all_versions();
    let stored = |kind: IndexKind| {
        let mut p = BackupPipeline::new(
            PipelineConfig {
                avg_chunk_size: CHUNK,
                container_capacity: CONTAINER,
                segment_chunks: 32,
                ..PipelineConfig::default()
            },
            kind.build(),
            NoRewrite::new(),
            MemoryContainerStore::new(),
        );
        for v in &versions {
            p.backup(v).unwrap();
        }
        p.run_stats().stored_bytes
    };
    let ddfs = stored(IndexKind::Ddfs);
    for kind in [
        IndexKind::Sparse,
        IndexKind::Silo,
        IndexKind::ExtremeBinning,
    ] {
        assert!(
            stored(kind) >= ddfs,
            "{kind} stored less than exact deduplication"
        );
    }
}

#[test]
fn index_memory_ordering_holds() {
    // Index-table footprints: DDFS (per chunk) > sparse (per hook) and
    // silo/extreme-binning (per segment/bin).
    let versions = VersionStream::new(Profile::Kernel.spec().scaled(800_000, 3), 31).all_versions();
    let bytes = |kind: IndexKind| {
        let mut p = BackupPipeline::new(
            PipelineConfig {
                avg_chunk_size: CHUNK,
                container_capacity: CONTAINER,
                segment_chunks: 32,
                ..PipelineConfig::default()
            },
            kind.build(),
            NoRewrite::new(),
            MemoryContainerStore::new(),
        );
        for v in &versions {
            p.backup(v).unwrap();
        }
        p.index().index_table_bytes()
    };
    let ddfs = bytes(IndexKind::Ddfs);
    for kind in [
        IndexKind::Sparse,
        IndexKind::Silo,
        IndexKind::ExtremeBinning,
    ] {
        let b = bytes(kind);
        assert!(b < ddfs, "{kind}: {b} >= ddfs {ddfs}");
    }
}
