//! Chaos matrix for the fault-tolerant remote stack: deterministic wire
//! faults injected at every operation index of a backup + restore workload,
//! driven by the retrying/resuming [`RetryClient`].
//!
//! The discipline mirrors the crash matrix of `tests/crash_matrix.rs`: a
//! counting run enumerates the wire operations of the fault-free workload,
//! then the workload replays once per site with that site armed — cutting,
//! tearing, black-holing, or delaying the connection — on the client side
//! and again on the server side. Every run must converge to a terminal
//! state byte-identical to the fault-free run: the restored payloads match,
//! exactly the expected versions exist (the idempotency token means a
//! retried backup never commits twice), the repository is fsck-clean with
//! no leaked `.tmp` files, no parked session survives, and the daemon still
//! drains under a watchdog.
//!
//! The multi-tenant matrix repeats the discipline against a tenant root:
//! tenant A's client is armed at every operation index while tenant B runs
//! a clean concurrent workload — B's repository must come out untouched no
//! matter where A's connection dies.

use std::fs;
use std::path::{Path, PathBuf};
use std::time::{Duration, Instant};

use hidestore::core::{HiDeStore, HiDeStoreConfig};
use hidestore::fsck::SystemAuditor;
use hidestore::netfault::{NetFault, NetPlan};
use hidestore::proto::{ErrorCode, TenantId};
use hidestore::server::{
    serve, ClientError, RemoteClient, RetryClient, RetryPolicy, ServerConfig, ServerHandle,
};
use hidestore::tenant::TENANTS_SUBDIR;

const PAYLOAD_A: usize = 40_000;
const PAYLOAD_B: usize = 26_000;

fn temp(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("hidestore-chaos-{tag}-{}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    fs::create_dir_all(&dir).unwrap();
    dir
}

fn noise(len: usize, seed: u64) -> Vec<u8> {
    let mut state = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
    (0..len)
        .map(|_| {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state >> 32) as u8
        })
        .collect()
}

fn assert_no_tmp_files(dir: &Path) {
    let mut stack = vec![dir.to_path_buf()];
    while let Some(d) = stack.pop() {
        for entry in fs::read_dir(&d).unwrap().filter_map(Result::ok) {
            let path = entry.path();
            if path.is_dir() {
                stack.push(path);
            } else if path.extension().is_some_and(|e| e == "tmp") {
                panic!("leaked temp file: {}", path.display());
            }
        }
    }
}

fn assert_fsck_clean(dir: &Path) {
    let config = HiDeStoreConfig::load_from(dir).unwrap();
    let mut system = HiDeStore::open_repository(config, dir).unwrap();
    let report = SystemAuditor::new().audit(&mut system);
    assert!(report.is_clean(), "{report}");
}

/// Joins the handle under a watchdog: a graceful shutdown that cannot
/// drain within the deadline means a leaked/stuck thread.
fn shutdown_with_watchdog(handle: ServerHandle) -> hidestore::server::StatsSnapshot {
    handle.request_shutdown();
    let (tx, rx) = std::sync::mpsc::channel();
    std::thread::spawn(move || {
        let _ = tx.send(handle.join());
    });
    rx.recv_timeout(Duration::from_secs(30))
        .expect("server threads must join after graceful shutdown")
}

/// Tight backoffs so a full per-site sweep stays fast; the budget is still
/// generous enough that every single-shot fault converges.
fn fast_policy() -> RetryPolicy {
    RetryPolicy::default()
        .with_delays(Duration::from_millis(1), Duration::from_millis(10))
        .with_budget(Duration::from_secs(30), 10)
        .with_seed(11)
}

fn start(dir: &Path, fault: Option<NetPlan>) -> ServerHandle {
    HiDeStoreConfig::small_for_tests().save_to(dir).unwrap();
    serve(
        dir,
        ServerConfig {
            quiet: true,
            // Short socket deadlines so a worker stuck on a half-dead peer
            // recovers well inside the shutdown watchdog.
            read_timeout: Some(Duration::from_secs(5)),
            write_timeout: Some(Duration::from_secs(5)),
            fault,
            ..ServerConfig::default()
        },
    )
    .unwrap()
}

/// The reference workload: two backups, both restored back, and a listing.
/// Returns the restored bytes so callers can compare against the payloads.
fn run_workload(addr: std::net::SocketAddr, client_fault: Option<NetPlan>) -> (Vec<u8>, Vec<u8>) {
    let a = noise(PAYLOAD_A, 1);
    let b = noise(PAYLOAD_B, 2);
    let mut client = RetryClient::new(addr.to_string(), fast_policy());
    if let Some(plan) = client_fault {
        client = client.with_fault(plan);
    }
    let s1 = client.backup(&a).unwrap();
    assert_eq!(s1.version, 1, "first backup commits exactly once");
    let s2 = client.backup(&b).unwrap();
    assert_eq!(s2.version, 2, "second backup commits exactly once");
    let (ra, _) = client.restore(1).unwrap();
    let (rb, _) = client.restore(2).unwrap();
    let list = client.list().unwrap();
    assert_eq!(
        list.versions.len(),
        2,
        "retried backups must never duplicate a commit: {list:?}"
    );
    (ra, rb)
}

/// One chaos run: fresh repository + daemon, the workload under the given
/// fault plans, then the full terminal-state audit.
fn run_and_audit(tag: &str, server_fault: Option<NetPlan>, client_fault: Option<NetPlan>) {
    let dir = temp(tag);
    let handle = start(&dir, server_fault);
    let (ra, rb) = run_workload(handle.addr(), client_fault);
    assert_eq!(
        ra,
        noise(PAYLOAD_A, 1),
        "restored V1 must be byte-identical"
    );
    assert_eq!(
        rb,
        noise(PAYLOAD_B, 2),
        "restored V2 must be byte-identical"
    );
    assert_eq!(handle.open_sessions(), 0, "no leaked resumable sessions");
    shutdown_with_watchdog(handle);
    assert_no_tmp_files(&dir);
    assert_fsck_clean(&dir);
    fs::remove_dir_all(&dir).unwrap();
}

/// The fault flavor for a site, cycling through all four so every kind is
/// exercised at many positions.
fn fault_for(site: u64) -> NetFault {
    match site % 4 {
        0 => NetFault::Cut,
        1 => NetFault::Short,
        2 => NetFault::BlackHole,
        _ => NetFault::Delay(Duration::from_millis(10)),
    }
}

#[test]
fn chaos_matrix_client_side() {
    // Enumerate the wire operations of the fault-free workload as the
    // client observes them.
    let counting = NetPlan::counting();
    run_and_audit("cli-count", None, Some(counting.clone()));
    let total = counting.ops();
    assert!(
        total > 20,
        "workload too small to be interesting: {total} ops"
    );

    // Replay once per site with that operation armed. Sites the replay
    // never reaches (TCP segmentation makes exact counts vary run to run)
    // simply pass as clean runs.
    for site in 0..total {
        run_and_audit(
            "cli-armed",
            None,
            Some(NetPlan::armed(site, fault_for(site))),
        );
    }
}

#[test]
fn chaos_matrix_server_side() {
    let counting = NetPlan::counting();
    run_and_audit("srv-count", Some(counting.clone()), None);
    let total = counting.ops();
    assert!(
        total > 20,
        "workload too small to be interesting: {total} ops"
    );

    for site in 0..total {
        run_and_audit(
            "srv-armed",
            Some(NetPlan::armed(site, fault_for(site))),
            None,
        );
    }
}

/// One multi-tenant chaos run: a fresh tenant root, tenant B's clean
/// workload racing tenant A's faulted one. A must converge through its
/// retries; B must be completely untouched — its restores byte-identical,
/// exactly its own versions retained, and its repository fsck-clean.
fn run_tenant_chaos(tag: &str, client_fault: Option<NetPlan>) {
    let dir = temp(tag);
    HiDeStoreConfig::small_for_tests().save_to(&dir).unwrap();
    let handle = serve(
        &dir,
        ServerConfig {
            quiet: true,
            tenants_root: true,
            read_timeout: Some(Duration::from_secs(5)),
            write_timeout: Some(Duration::from_secs(5)),
            ..ServerConfig::default()
        },
    )
    .unwrap();
    let addr = handle.addr();

    std::thread::scope(|scope| {
        // Tenant B: clean, unfaulted workload racing A's chaos.
        let b = scope.spawn(move || {
            let b1 = noise(33_000, 21);
            let b2 = noise(27_000, 22);
            let mut client = RemoteClient::connect(addr)
                .unwrap()
                .with_tenant(TenantId::new("bee").unwrap())
                .unwrap();
            assert_eq!(client.backup_bytes(&b1).unwrap().version, 1);
            assert_eq!(client.backup_bytes(&b2).unwrap().version, 2);
            let mut out = Vec::new();
            client.restore_to(1, &mut out).unwrap();
            assert_eq!(out, b1, "tenant B's V1 must be untouched by A's faults");
            out.clear();
            client.restore_to(2, &mut out).unwrap();
            assert_eq!(out, b2, "tenant B's V2 must be untouched by A's faults");
            let list = client.list().unwrap();
            assert_eq!(list.versions.len(), 2, "no bleed into B's version space");
        });

        // Tenant A: the faulted workload, ridden by the retry loop.
        let a1 = noise(PAYLOAD_A, 1);
        let mut client = RetryClient::new(addr.to_string(), fast_policy())
            .with_tenant(TenantId::new("aye").unwrap());
        if let Some(plan) = client_fault {
            client = client.with_fault(plan);
        }
        let s1 = client.backup(&a1).unwrap();
        assert_eq!(s1.version, 1, "A's backup commits exactly once");
        let (ra, _) = client.restore(1).unwrap();
        assert_eq!(ra, a1, "A's restore must converge byte-identically");

        b.join().unwrap();
    });

    assert_eq!(handle.open_sessions(), 0, "no leaked resumable sessions");
    shutdown_with_watchdog(handle);
    assert_no_tmp_files(&dir);
    assert_fsck_clean(&dir.join(TENANTS_SUBDIR).join("aye"));
    assert_fsck_clean(&dir.join(TENANTS_SUBDIR).join("bee"));
    fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn chaos_matrix_tenant_faults_do_not_cross_tenants() {
    // Enumerate tenant A's wire operations fault-free (B races alongside,
    // but only A's client is counted/armed).
    let counting = NetPlan::counting();
    run_tenant_chaos("ten-count", Some(counting.clone()));
    let total = counting.ops();
    assert!(
        total > 10,
        "workload too small to be interesting: {total} ops"
    );

    // Replay once per site with that operation armed on tenant A's side.
    for site in 0..total {
        run_tenant_chaos("ten-armed", Some(NetPlan::armed(site, fault_for(site))));
    }
}

#[test]
fn resumed_restore_retransfers_only_the_tail() {
    let dir = temp("resume-tail");
    let handle = start(&dir, None);
    let addr = handle.addr();
    // Several DATA frames so a mid-stream cut leaves a meaningful prefix.
    let payload = noise(600_000, 9);
    let mut seeder = RetryClient::new(addr.to_string(), fast_policy());
    seeder.backup(&payload).unwrap();

    // Count the wire operations of one clean restore.
    let counting = NetPlan::counting();
    let mut counter =
        RetryClient::new(addr.to_string(), fast_policy()).with_fault(counting.clone());
    let (bytes, _) = counter.restore(1).unwrap();
    assert_eq!(bytes, payload);
    let total = counting.ops();

    // Walk the cut site forward until one lands mid-stream: the client then
    // holds a non-empty prefix and must resume — re-transferring only the
    // bytes after the acknowledged boundary, verified by the client's own
    // transfer counters.
    let mut exercised = false;
    for site in 0..total {
        let plan = NetPlan::armed(site, NetFault::Cut);
        let mut client = RetryClient::new(addr.to_string(), fast_policy()).with_fault(plan);
        let (bytes, summary) = client.restore(1).unwrap();
        assert_eq!(bytes, payload, "restore must converge byte-identically");
        assert_eq!(summary.bytes_restored, payload.len() as u64);
        let resumes = &client.counters().resumes;
        if let Some(ev) = resumes.iter().find(|e| e.offset > 0) {
            assert_eq!(resumes.len(), 1, "one fault, one resume: {resumes:?}");
            assert_eq!(ev.total, payload.len() as u64);
            assert_eq!(
                ev.transferred,
                ev.total - ev.offset,
                "the resumed leg must move only the tail: {ev:?}"
            );
            exercised = true;
            break;
        }
    }
    assert!(exercised, "no cut site interrupted the restore mid-stream");

    let stats = shutdown_with_watchdog(handle);
    assert!(
        stats.sessions_resumed >= 1,
        "server counted the resume: {stats}"
    );
    assert_no_tmp_files(&dir);
    assert_fsck_clean(&dir);
    fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn retrying_client_rides_through_a_server_restart() {
    let dir = temp("restart");
    HiDeStoreConfig::small_for_tests().save_to(&dir).unwrap();
    let quiet = || ServerConfig {
        quiet: true,
        ..ServerConfig::default()
    };
    let payload = noise(80_000, 5);
    let handle = serve(&dir, quiet()).unwrap();
    let addr = handle.addr();
    {
        let mut client = RetryClient::new(addr.to_string(), fast_policy());
        client.backup(&payload).unwrap();
    }
    // Stop the daemon completely; every served connection above was closed
    // client-first, so the port is immediately rebindable.
    shutdown_with_watchdog(handle);

    // Restart on the SAME address after a visible down-window.
    let dir2 = dir.clone();
    let restarter = std::thread::spawn(move || {
        std::thread::sleep(Duration::from_millis(300));
        let deadline = Instant::now() + Duration::from_secs(10);
        loop {
            match serve(
                &dir2,
                ServerConfig {
                    bind: addr.to_string(),
                    ..quiet()
                },
            ) {
                Ok(handle) => return handle,
                Err(e) => {
                    assert!(Instant::now() < deadline, "could not rebind {addr}: {e}");
                    std::thread::sleep(Duration::from_millis(50));
                }
            }
        }
    });

    // Every attempt during the down-window is refused at connect; the
    // retry loop alone must carry the operation across the restart.
    let mut client = RetryClient::new(
        addr.to_string(),
        RetryPolicy::default()
            .with_delays(Duration::from_millis(10), Duration::from_millis(50))
            .with_budget(Duration::from_secs(20), 100)
            .with_seed(3),
    );
    let (bytes, _) = client.restore(1).unwrap();
    assert_eq!(bytes, payload, "state survives the restart");
    assert!(
        client.counters().retries > 0,
        "the down-window must have forced at least one retry: {:?}",
        client.counters()
    );

    let handle2 = restarter.join().unwrap();
    shutdown_with_watchdog(handle2);
    fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn saturated_queue_sheds_load_with_retryable_busy() {
    let dir = temp("busy");
    HiDeStoreConfig::small_for_tests().save_to(&dir).unwrap();
    let handle = serve(
        &dir,
        ServerConfig {
            quiet: true,
            workers: 1,
            queue_depth: 1,
            // Idle squatters below would otherwise pin the worker for the
            // full default deadline.
            read_timeout: Some(Duration::from_secs(2)),
            busy_retry_after_ms: 77,
            ..ServerConfig::default()
        },
    )
    .unwrap();
    let addr = handle.addr();

    // Squat the single worker and the single queue slot with idle
    // connections that never send a byte.
    let squatter_a = std::net::TcpStream::connect(addr).unwrap();
    std::thread::sleep(Duration::from_millis(200)); // worker picks up a
    let squatter_b = std::net::TcpStream::connect(addr).unwrap();
    std::thread::sleep(Duration::from_millis(200)); // b parks in the queue

    // The next connection must be shed with a typed, retryable `busy`
    // carrying the configured backoff hint — not queued, not dropped.
    let err = match RemoteClient::connect(addr) {
        Ok(_) => panic!("a saturated daemon must shed, not admit"),
        Err(e) => e,
    };
    match err {
        ClientError::Remote(e) => {
            assert_eq!(e.code, ErrorCode::Busy);
            assert!(e.code.is_retryable(), "busy must be retryable");
            assert_eq!(e.retry_after_ms, 77, "the shed carries the hint: {e:?}");
        }
        other => panic!("expected Remote(Busy), got {other}"),
    }

    // Once the squatters leave (their sockets close, the worker times out
    // or sees EOF), normal service resumes.
    drop(squatter_a);
    drop(squatter_b);
    let mut client = RetryClient::new(
        addr.to_string(),
        fast_policy().with_delays(Duration::from_millis(5), Duration::from_millis(50)),
    );
    client.ping().unwrap();

    let stats = shutdown_with_watchdog(handle);
    assert!(stats.busy_rejected >= 1, "the shed was counted: {stats}");
    assert_no_tmp_files(&dir);
    fs::remove_dir_all(&dir).unwrap();
}
