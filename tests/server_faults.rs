//! Fault matrix for `hds-served`: disconnects and torn frames at every
//! frame boundary, during both backup and restore.
//!
//! For each cut point the daemon must (a) stay alive and keep answering
//! well-formed clients, (b) commit nothing from the aborted request, (c)
//! leave the repository `hds-fsck`-clean with no leaked `.tmp` files, and
//! (d) still shut down gracefully with every thread joined — watched by a
//! timeout so a stuck worker fails the test instead of hanging it.

use std::fs;
use std::io::{Read, Write};
use std::net::TcpStream;
use std::path::{Path, PathBuf};
use std::time::Duration;

use hidestore::core::{HiDeStore, HiDeStoreConfig};
use hidestore::fsck::SystemAuditor;
use hidestore::proto::{encode_frame, FrameKind, Hello, Request};
use hidestore::server::{serve, ClientError, RemoteClient, ServerConfig, ServerHandle};

fn temp(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("hidestore-faults-{tag}-{}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    fs::create_dir_all(&dir).unwrap();
    dir
}

fn noise(len: usize, seed: u64) -> Vec<u8> {
    let mut state = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
    (0..len)
        .map(|_| {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state >> 32) as u8
        })
        .collect()
}

/// The full byte stream of one backup session, plus the frame boundaries
/// (cumulative offsets after each complete frame).
fn backup_session(payload: &[u8]) -> (Vec<u8>, Vec<usize>) {
    let mut bytes = Vec::new();
    let mut boundaries = vec![0];
    let mut push = |frame: Vec<u8>, bytes: &mut Vec<u8>| {
        bytes.extend_from_slice(&frame);
        boundaries.push(bytes.len());
    };
    push(
        encode_frame(FrameKind::Hello, &Hello::current().encode()),
        &mut bytes,
    );
    push(
        encode_frame(FrameKind::Request, &Request::Backup.encode()),
        &mut bytes,
    );
    for chunk in payload.chunks(48 * 1024) {
        push(encode_frame(FrameKind::Data, chunk), &mut bytes);
    }
    push(encode_frame(FrameKind::End, &[]), &mut bytes);
    (bytes, boundaries)
}

/// Sends exactly `prefix` to the daemon, drains whatever it answers, then
/// cuts the connection.
fn send_and_cut(addr: std::net::SocketAddr, prefix: &[u8]) {
    let mut stream = TcpStream::connect(addr).unwrap();
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    if stream.write_all(prefix).is_err() {
        return; // daemon already rejected the torn stream — that's fine
    }
    let _ = stream.shutdown(std::net::Shutdown::Write);
    // Drain so an in-flight reply never blocks the worker on a full socket.
    let mut sink = [0u8; 4096];
    while matches!(stream.read(&mut sink), Ok(n) if n > 0) {}
}

/// The daemon still serves well-formed clients after a fault.
fn assert_alive(addr: std::net::SocketAddr) {
    let mut conn = RemoteClient::connect(addr).expect("daemon must survive the fault");
    conn.ping().expect("daemon must still answer");
}

fn assert_no_tmp_files(dir: &Path) {
    let mut stack = vec![dir.to_path_buf()];
    while let Some(d) = stack.pop() {
        for entry in fs::read_dir(&d).unwrap().filter_map(Result::ok) {
            let path = entry.path();
            if path.is_dir() {
                stack.push(path);
            } else if path.extension().is_some_and(|e| e == "tmp") {
                panic!("leaked temp file: {}", path.display());
            }
        }
    }
}

fn assert_fsck_clean(dir: &Path) {
    let config = HiDeStoreConfig::load_from(dir).unwrap();
    let mut system = HiDeStore::open_repository(config, dir).unwrap();
    let report = SystemAuditor::new().audit(&mut system);
    assert!(report.is_clean(), "{report}");
}

/// Joins the handle under a watchdog: a graceful shutdown that cannot
/// drain within the deadline means a leaked/stuck thread.
fn shutdown_with_watchdog(handle: ServerHandle) -> hidestore::server::StatsSnapshot {
    handle.request_shutdown();
    let (tx, rx) = std::sync::mpsc::channel();
    std::thread::spawn(move || {
        let _ = tx.send(handle.join());
    });
    rx.recv_timeout(Duration::from_secs(30))
        .expect("server threads must join after graceful shutdown")
}

fn start(dir: &Path) -> ServerHandle {
    HiDeStoreConfig::small_for_tests().save_to(dir).unwrap();
    serve(
        dir,
        ServerConfig {
            quiet: true,
            ..ServerConfig::default()
        },
    )
    .unwrap()
}

#[test]
fn backup_fault_matrix() {
    let dir = temp("backup");
    let handle = start(&dir);
    let addr = handle.addr();

    // Seed one good version so the repository is non-trivial.
    let seed_payload = noise(150_000, 1);
    let mut conn = RemoteClient::connect(addr).unwrap();
    conn.backup_bytes(&seed_payload).unwrap();
    drop(conn);

    let payload = noise(130_000, 2);
    let (bytes, boundaries) = backup_session(&payload);

    // Cut at every frame boundary, and torn mid-frame just after each
    // boundary (inside the next frame's header and inside its payload).
    let mut cuts: Vec<usize> = Vec::new();
    for &b in &boundaries {
        for extra in [0usize, 1, 5, 40] {
            let cut = b + extra;
            if cut < bytes.len() {
                cuts.push(cut);
            }
        }
    }
    for &cut in &cuts {
        send_and_cut(addr, &bytes[..cut]);
        assert_alive(addr);
    }

    // A corrupted (bit-flipped) frame mid-session must also abort cleanly.
    let mut corrupted = bytes.clone();
    let mid = boundaries[2] + 9; // inside the first DATA frame
    corrupted[mid] ^= 0x40;
    send_and_cut(addr, &corrupted);
    assert_alive(addr);

    // None of the aborted sessions may have committed a version.
    let mut conn = RemoteClient::connect(addr).unwrap();
    let list = conn.list().unwrap();
    assert_eq!(
        list.versions.len(),
        1,
        "torn backups must not commit: {list:?}"
    );
    // And the daemon still accepts a full backup afterwards.
    let summary = conn.backup_bytes(&payload).unwrap();
    assert_eq!(summary.version, 2);
    let mut out = Vec::new();
    conn.restore_to(2, &mut out).unwrap();
    assert_eq!(out, payload);
    drop(conn);

    let stats = shutdown_with_watchdog(handle);
    assert!(stats.requests_failed > 0, "faults were counted: {stats}");
    assert_eq!(stats.rolled_back, 0, "no fault reached the repository");
    assert_no_tmp_files(&dir);
    assert_fsck_clean(&dir);
    fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn restore_fault_matrix() {
    let dir = temp("restore");
    let handle = start(&dir);
    let addr = handle.addr();

    let payload = noise(400_000, 3);
    let mut conn = RemoteClient::connect(addr).unwrap();
    conn.backup_bytes(&payload).unwrap();
    drop(conn);

    // The client side of a restore session, cut after each of its frames
    // (nothing, HELLO only, HELLO+REQUEST) — and for the full session,
    // cut while the daemon is mid-stream by reading only k bytes.
    let mut session = Vec::new();
    session.extend_from_slice(&encode_frame(FrameKind::Hello, &Hello::current().encode()));
    let hello_end = session.len();
    session.extend_from_slice(&encode_frame(
        FrameKind::Request,
        &Request::Restore { version: 1 }.encode(),
    ));
    for cut in [0, 3, hello_end, hello_end + 4, session.len()] {
        send_and_cut(addr, &session[..cut]);
        assert_alive(addr);
    }

    // Mid-stream client death: read 1 byte, 1 KiB, ~half the stream, then
    // vanish. The daemon's write fails or is discarded; either way it must
    // keep serving and mutate nothing.
    for read_bytes in [1usize, 1024, 200_000] {
        let mut stream = TcpStream::connect(addr).unwrap();
        stream
            .set_read_timeout(Some(Duration::from_secs(10)))
            .unwrap();
        stream.write_all(&session).unwrap();
        let mut got = 0usize;
        let mut buf = [0u8; 4096];
        while got < read_bytes {
            match stream.read(&mut buf) {
                Ok(0) | Err(_) => break,
                Ok(n) => got += n,
            }
        }
        drop(stream);
        assert_alive(addr);
    }

    // The full stream still round-trips, and a client-side error path
    // leaves no .tmp behind on the client's side either.
    let mut conn = RemoteClient::connect(addr).unwrap();
    let mut out = Vec::new();
    conn.restore_to(1, &mut out).unwrap();
    assert_eq!(out, payload);
    let client_out = dir.join("client-out.bin");
    let err = conn.restore_to_path(99, &client_out).unwrap_err();
    assert!(matches!(err, ClientError::Remote(_)), "{err}");
    assert!(!client_out.exists());
    conn.restore_to_path(1, &client_out).unwrap();
    assert_eq!(fs::read(&client_out).unwrap(), payload);
    fs::remove_file(&client_out).unwrap();
    drop(conn);

    let stats = shutdown_with_watchdog(handle);
    assert_eq!(stats.rolled_back, 0, "restores never mutate: {stats}");
    assert_no_tmp_files(&dir);
    assert_fsck_clean(&dir);
    fs::remove_dir_all(&dir).unwrap();
}
