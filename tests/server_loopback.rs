//! Loopback differential test for `hds-served`.
//!
//! N concurrent clients each stream their own evolving version sequence
//! into one daemon. Afterwards the repository must be `SystemAuditor`-clean,
//! every client must get its exact bytes back over the wire, and — the
//! differential half — a *local* repository fed the same payloads in the
//! globally committed order must agree with the served repository on every
//! version's restored bytes. The daemon serializes writers, so whatever
//! interleaving the clients raced into is equivalent to SOME serial order;
//! the assigned version numbers tell us which one.

use std::collections::BTreeMap;
use std::fs;
use std::path::PathBuf;
use std::sync::Mutex;

use hidestore::core::{HiDeStore, HiDeStoreConfig};
use hidestore::fsck::SystemAuditor;
use hidestore::server::{serve, RemoteClient, ServerConfig};

fn temp(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("hidestore-loopback-{tag}-{}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    fs::create_dir_all(&dir).unwrap();
    dir
}

fn noise(len: usize, seed: u64) -> Vec<u8> {
    let mut state = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
    (0..len)
        .map(|_| {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state >> 32) as u8
        })
        .collect()
}

/// Client `c`'s generation `g`: a base stream mutated in place, so versions
/// within a client dedup against each other but not across clients.
fn payload(client: u64, generation: u64) -> Vec<u8> {
    let mut data = noise(180_000 + client as usize * 7_000, 1000 + client);
    let span = 30_000;
    let start = (generation as usize * 41_000) % (data.len() - span);
    data[start..start + span].copy_from_slice(&noise(span, 5000 + client * 10 + generation));
    data
}

#[test]
fn concurrent_clients_differential_against_local_path() {
    const CLIENTS: u64 = 4;
    const GENERATIONS: u64 = 3;

    let dir = temp("diff");
    let config = HiDeStoreConfig::small_for_tests();
    config.save_to(&dir).unwrap();
    let handle = serve(
        &dir,
        ServerConfig {
            quiet: true,
            ..ServerConfig::default()
        },
    )
    .unwrap();
    let addr = handle.addr();

    // Phase 1: clients race their backups; each records which version id
    // the daemon assigned to which payload.
    let assigned: Mutex<BTreeMap<u32, (u64, u64)>> = Mutex::new(BTreeMap::new());
    std::thread::scope(|scope| {
        for client in 0..CLIENTS {
            let assigned = &assigned;
            scope.spawn(move || {
                let mut conn = RemoteClient::connect(addr).unwrap();
                for generation in 0..GENERATIONS {
                    let data = payload(client, generation);
                    let summary = conn.backup_bytes(&data).unwrap();
                    assert_eq!(summary.logical_bytes, data.len() as u64);
                    let prev = assigned
                        .lock()
                        .unwrap()
                        .insert(summary.version, (client, generation));
                    assert_eq!(prev, None, "daemon assigned a version id twice");
                }
            });
        }
    });
    let assigned = assigned.into_inner().unwrap();
    assert_eq!(assigned.len(), (CLIENTS * GENERATIONS) as usize);
    assert_eq!(
        assigned.keys().copied().collect::<Vec<_>>(),
        (1..=(CLIENTS * GENERATIONS) as u32).collect::<Vec<_>>(),
        "version ids must be dense"
    );

    // Phase 2: every client restores every one of its versions over the
    // wire, concurrently, and must get its exact payload back.
    std::thread::scope(|scope| {
        for client in 0..CLIENTS {
            let assigned = &assigned;
            scope.spawn(move || {
                let mut conn = RemoteClient::connect(addr).unwrap();
                for (&version, &(owner, generation)) in assigned {
                    if owner != client {
                        continue;
                    }
                    let mut out = Vec::new();
                    conn.restore_to(version, &mut out).unwrap();
                    assert_eq!(
                        out,
                        payload(owner, generation),
                        "client {client} V{version} round-trip"
                    );
                }
            });
        }
    });

    let stats = handle.shutdown_and_join();
    assert_eq!(stats.requests_failed, 0, "{stats}");
    assert_eq!(stats.rolled_back, 0, "{stats}");

    // Phase 3: the served repository is audit-clean...
    let served_config = HiDeStoreConfig::load_from(&dir).unwrap();
    let mut served = HiDeStore::open_repository(served_config, &dir).unwrap();
    let report = SystemAuditor::new().audit(&mut served);
    assert!(report.is_clean(), "{report}");

    // ...and differentially equal to a local repository fed the same
    // payloads in the committed order: same per-version restored bytes.
    let local_dir = temp("diff-local");
    let mut local =
        HiDeStore::open_repository(HiDeStoreConfig::small_for_tests(), &local_dir).unwrap();
    for (&version, &(client, generation)) in &assigned {
        let stats = local.backup(&payload(client, generation)).unwrap();
        assert_eq!(stats.version.get(), version);
    }
    for &version in assigned.keys() {
        let v = hidestore::storage::VersionId::new(version);
        let mut from_served = Vec::new();
        let mut from_local = Vec::new();
        let faa = || hidestore::restore::Faa::new(1 << 20);
        served.restore(v, &mut faa(), &mut from_served).unwrap();
        local.restore(v, &mut faa(), &mut from_local).unwrap();
        assert_eq!(
            from_served, from_local,
            "V{version} differs from local path"
        );
    }

    fs::remove_dir_all(&dir).unwrap();
    fs::remove_dir_all(&local_dir).unwrap();
}
