//! Cross-tenant isolation suite for the multi-tenant daemon.
//!
//! The core claim under test: tenants served from one root are *invisible*
//! to each other. Racing N tenants' interleaved workloads (backups,
//! restores, a prune) through one daemon must leave every tenant's
//! repository byte-identical to the repository a serial, single-tenant run
//! produces — same files, same bytes — with fsck clean per tenant, version
//! ids counted per tenant, and per-tenant server counters accounting each
//! tenant's own traffic exactly.
//!
//! The suite also pins the compatibility and refusal edges: a protocol-v2
//! client (no tenant envelope) lands on the `default` tenant and the same
//! bytes are reachable by a v3 client addressing `default` explicitly;
//! tenant envelopes are refused on a v2 connection; an unknown tenant is a
//! typed `NotFound` that creates nothing on disk; and a quota refusal is a
//! typed, *non-retryable* error that `RetryClient` does not retry.

use std::collections::BTreeMap;
use std::fs;
use std::net::TcpStream;
use std::path::{Path, PathBuf};
use std::time::Duration;

use hidestore::core::{HiDeStore, HiDeStoreConfig};
use hidestore::fsck::SystemAuditor;
use hidestore::proto::{
    read_frame, write_frame, ErrorCode, FrameKind, Hello, Limits, ListResponse, Request, Response,
    TenantId, WireError,
};
use hidestore::server::{
    serve, ClientError, RemoteClient, RetryClient, RetryPolicy, ServerConfig, ServerHandle,
};
use hidestore::tenant::{TenantQuota, TENANTS_SUBDIR};

const TENANTS: usize = 4;

fn temp(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("hidestore-tenant-{tag}-{}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    fs::create_dir_all(&dir).unwrap();
    dir
}

fn noise(len: usize, seed: u64) -> Vec<u8> {
    let mut state = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
    (0..len)
        .map(|_| {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state >> 32) as u8
        })
        .collect()
}

fn tenant(name: &str) -> TenantId {
    TenantId::new(name).unwrap()
}

fn assert_fsck_clean(dir: &Path) {
    let config = HiDeStoreConfig::load_from(dir).unwrap();
    let mut system = HiDeStore::open_repository(config, dir).unwrap();
    let report = SystemAuditor::new().audit(&mut system);
    assert!(report.is_clean(), "{}: {report}", dir.display());
}

/// Joins the handle under a watchdog: a graceful shutdown that cannot
/// drain within the deadline means a leaked/stuck thread.
fn shutdown_with_watchdog(handle: ServerHandle) -> hidestore::server::StatsSnapshot {
    handle.request_shutdown();
    let (tx, rx) = std::sync::mpsc::channel();
    std::thread::spawn(move || {
        let _ = tx.send(handle.join());
    });
    rx.recv_timeout(Duration::from_secs(30))
        .expect("server threads must join after graceful shutdown")
}

/// Starts a multi-tenant daemon over a fresh root. `max_live` below the
/// tenant count forces LRU eviction churn *during* the race, so the
/// isolation claim is tested across evict/reopen cycles too.
fn start_root(root: &Path, max_live: usize) -> ServerHandle {
    HiDeStoreConfig::small_for_tests().save_to(root).unwrap();
    serve(
        root,
        ServerConfig {
            quiet: true,
            tenants_root: true,
            max_live_tenants: max_live,
            read_timeout: Some(Duration::from_secs(10)),
            write_timeout: Some(Duration::from_secs(10)),
            ..ServerConfig::default()
        },
    )
    .unwrap()
}

/// The i-th tenant's payloads. Lengths differ per tenant so byte-in/out
/// totals are unique fingerprints — any cross-tenant accounting bleed
/// shows up as a wrong sum.
fn payloads(i: usize) -> [Vec<u8>; 3] {
    let i = i as u64;
    [
        noise(30_000 + 1_000 * i as usize, 10 * i + 1),
        noise(22_000 + 500 * i as usize, 10 * i + 2),
        noise(34_000 + 700 * i as usize, 10 * i + 3),
    ]
}

/// One tenant's reference workload: two backups, both restored and
/// verified, a prune down to the newest, a third backup, its restore, and
/// a final listing. Returns the listing for cross-run comparison.
fn run_workload(addr: std::net::SocketAddr, id: &TenantId, i: usize) -> ListResponse {
    let [p1, p2, p3] = payloads(i);
    let mut client = RemoteClient::connect(addr)
        .unwrap()
        .with_tenant(id.clone())
        .unwrap();
    assert_eq!(client.backup_bytes(&p1).unwrap().version, 1, "{id}");
    assert_eq!(client.backup_bytes(&p2).unwrap().version, 2, "{id}");
    let mut out = Vec::new();
    client.restore_to(1, &mut out).unwrap();
    assert_eq!(out, p1, "{id}: V1 bytes");
    out.clear();
    client.restore_to(2, &mut out).unwrap();
    assert_eq!(out, p2, "{id}: V2 bytes");
    client.prune(1).unwrap();
    // Version ids keep counting per tenant after the prune.
    assert_eq!(client.backup_bytes(&p3).unwrap().version, 3, "{id}");
    out.clear();
    client.restore_to(3, &mut out).unwrap();
    assert_eq!(out, p3, "{id}: V3 bytes");
    client.list().unwrap()
}

/// Recursively collects `dir`'s files as relative-path → contents.
fn tree(dir: &Path) -> BTreeMap<PathBuf, Vec<u8>> {
    let mut out = BTreeMap::new();
    let mut stack = vec![dir.to_path_buf()];
    while let Some(d) = stack.pop() {
        for entry in fs::read_dir(&d).unwrap().filter_map(Result::ok) {
            let path = entry.path();
            if path.is_dir() {
                stack.push(path);
            } else {
                let rel = path.strip_prefix(dir).unwrap().to_path_buf();
                out.insert(rel, fs::read(&path).unwrap());
            }
        }
    }
    out
}

fn assert_trees_identical(a: &Path, b: &Path) {
    let ta = tree(a);
    let tb = tree(b);
    let names_a: Vec<_> = ta.keys().collect();
    let names_b: Vec<_> = tb.keys().collect();
    assert_eq!(
        names_a,
        names_b,
        "file sets diverge between {} and {}",
        a.display(),
        b.display()
    );
    for (rel, bytes) in &ta {
        assert_eq!(
            bytes,
            &tb[rel],
            "{} differs between {} and {}",
            rel.display(),
            a.display(),
            b.display()
        );
    }
}

/// The tentpole assertion: N tenants raced through one daemon end in
/// repositories byte-identical to serial single-tenant runs, fsck-clean,
/// with per-tenant version spaces and exact per-tenant counters.
///
/// Both runs keep every handle resident (`max_live` = N): physical file
/// names shift with *where* a handle's save/reopen cycle lands in the op
/// stream, so byte-identity is only meaningful when neither run evicts.
/// Isolation under eviction churn is covered separately below.
#[test]
fn raced_tenants_converge_to_serial_state() {
    // Reference: each tenant's workload run serially, one at a time.
    let serial = temp("serial");
    let handle = start_root(&serial, TENANTS);
    let addr = handle.addr();
    let mut serial_lists = Vec::new();
    for i in 0..TENANTS {
        serial_lists.push(run_workload(addr, &tenant(&format!("t{i}")), i));
    }
    shutdown_with_watchdog(handle);

    // Raced: the same workloads, all tenants concurrently.
    let raced = temp("raced");
    let handle = start_root(&raced, TENANTS);
    let addr = handle.addr();
    let raced_lists: Vec<ListResponse> = std::thread::scope(|scope| {
        let threads: Vec<_> = (0..TENANTS)
            .map(|i| scope.spawn(move || run_workload(addr, &tenant(&format!("t{i}")), i)))
            .collect();
        threads.into_iter().map(|t| t.join().unwrap()).collect()
    });

    // Per-tenant counters account each tenant's own traffic exactly: the
    // byte totals are per-tenant-unique, so any bleed breaks a sum. The
    // ok-counter is bumped after the response is written, so a client can
    // observe its reply just before the worker's increment lands — poll
    // briefly until all rows settle at the expected request count.
    let deadline = std::time::Instant::now() + Duration::from_secs(5);
    let stats = loop {
        let stats = handle.tenant_stats();
        if stats.len() == TENANTS && stats.iter().all(|(_, s)| s.requests_ok >= 8) {
            break stats;
        }
        assert!(
            std::time::Instant::now() < deadline,
            "per-tenant counters never settled: {stats:?}"
        );
        std::thread::sleep(Duration::from_millis(5));
    };
    for (id, snap) in &stats {
        let i: usize = id.as_str()[1..].parse().unwrap();
        let total: u64 = payloads(i).iter().map(|p| p.len() as u64).sum();
        assert_eq!(snap.bytes_in, total, "{id}: backup bytes");
        assert_eq!(snap.bytes_out, total, "{id}: restore bytes");
        // 3 backups + 3 restores + 1 prune + 1 list, nothing failed.
        assert_eq!(snap.requests_ok, 8, "{id}");
        assert_eq!(snap.requests_failed, 0, "{id}");
        assert_eq!(snap.rolled_back, 0, "{id}");
    }
    assert_eq!(handle.open_sessions(), 0, "no leaked sessions");
    shutdown_with_watchdog(handle);

    for i in 0..TENANTS {
        let name = format!("t{i}");
        // The listings agree between runs and hold exactly this tenant's
        // post-prune versions — version ids are counted per tenant.
        assert_eq!(serial_lists[i], raced_lists[i], "{name}: listing");
        let versions: Vec<u32> = raced_lists[i].versions.iter().map(|v| v.version).collect();
        assert_eq!(versions, [2, 3], "{name}: version space");

        let serial_dir = serial.join(TENANTS_SUBDIR).join(&name);
        let raced_dir = raced.join(TENANTS_SUBDIR).join(&name);
        assert_trees_identical(&serial_dir, &raced_dir);
        assert_fsck_clean(&raced_dir);
    }

    fs::remove_dir_all(&serial).unwrap();
    fs::remove_dir_all(&raced).unwrap();
}

/// Isolation must survive maximum LRU pressure: a single live slot forces
/// an evict/reopen cycle on nearly every request while N tenants race.
/// Physical layout legitimately varies with eviction timing, so this test
/// pins the *logical* state: every in-workload restore byte-matches (the
/// workload asserts it), listings hold exactly the per-tenant versions,
/// per-tenant counters account exactly, and every tenant is fsck-clean.
#[test]
fn eviction_churn_preserves_isolation() {
    let root = temp("churn");
    let handle = start_root(&root, 1);
    let addr = handle.addr();
    let lists: Vec<ListResponse> = std::thread::scope(|scope| {
        let threads: Vec<_> = (0..TENANTS)
            .map(|i| scope.spawn(move || run_workload(addr, &tenant(&format!("t{i}")), i)))
            .collect();
        threads.into_iter().map(|t| t.join().unwrap()).collect()
    });
    for (i, list) in lists.iter().enumerate() {
        let versions: Vec<u32> = list.versions.iter().map(|v| v.version).collect();
        assert_eq!(versions, [2, 3], "t{i}: version space");
        let [_, p2, p3] = payloads(i);
        let bytes: Vec<u64> = list.versions.iter().map(|v| v.bytes).collect();
        assert_eq!(bytes, [p2.len() as u64, p3.len() as u64], "t{i}: sizes");
    }
    assert_eq!(handle.open_sessions(), 0, "no leaked sessions");
    shutdown_with_watchdog(handle);
    for i in 0..TENANTS {
        assert_fsck_clean(&root.join(TENANTS_SUBDIR).join(format!("t{i}")));
    }
    fs::remove_dir_all(&root).unwrap();
}

/// A protocol-v2 client speaks bare (un-enveloped) requests and must land
/// on the `default` tenant — the same repository a v3 client sees when it
/// addresses `default` explicitly. Tenant envelopes are refused on the v2
/// connection with a typed error, not a hangup.
#[test]
fn v2_client_lands_on_the_default_tenant() {
    let root = temp("v2compat");
    let handle = start_root(&root, 4);
    let addr = handle.addr();
    let payload = noise(48_000, 77);
    let limits = Limits::default();

    // A hand-rolled v2 handshake: offer [1, 2], expect the v3 server to
    // meet us at 2.
    let mut stream = TcpStream::connect(addr).unwrap();
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    let offer = Hello {
        min_version: 1,
        max_version: 2,
    };
    write_frame(&mut stream, FrameKind::Hello, &offer.encode()).unwrap();
    let frame = read_frame(&mut stream, &limits).unwrap();
    assert_eq!(frame.kind, FrameKind::Hello);
    let theirs = Hello::decode(&frame.payload).unwrap();
    assert_eq!(offer.negotiate(&theirs), Some(2), "server speaks v2");

    // Bare backup: request, data, end, summary.
    write_frame(&mut stream, FrameKind::Request, &Request::Backup.encode()).unwrap();
    write_frame(&mut stream, FrameKind::Data, &payload).unwrap();
    write_frame(&mut stream, FrameKind::End, &[]).unwrap();
    let frame = read_frame(&mut stream, &limits).unwrap();
    assert_eq!(frame.kind, FrameKind::Response, "{frame:?}");
    match Response::decode(&frame.payload).unwrap() {
        Response::BackupDone(summary) => assert_eq!(summary.version, 1),
        other => panic!("expected BackupDone, got {other:?}"),
    }

    // A tenant envelope on the v2 connection is refused typed, in-stream.
    write_frame(
        &mut stream,
        FrameKind::Request,
        &Request::List.encode_with_tenant(&tenant("alice")),
    )
    .unwrap();
    let frame = read_frame(&mut stream, &limits).unwrap();
    assert_eq!(frame.kind, FrameKind::Error, "{frame:?}");
    let err = WireError::decode(&frame.payload).unwrap();
    assert_eq!(err.code, ErrorCode::Unsupported, "{err:?}");

    // The connection survives the refusal: a bare list still answers.
    write_frame(&mut stream, FrameKind::Request, &Request::List.encode()).unwrap();
    let frame = read_frame(&mut stream, &limits).unwrap();
    assert_eq!(frame.kind, FrameKind::Response, "{frame:?}");
    drop(stream);

    // A v3 client addressing `default` explicitly reads the v2 backup.
    let mut v3 = RemoteClient::connect(addr)
        .unwrap()
        .with_tenant(tenant("default"))
        .unwrap();
    let mut out = Vec::new();
    v3.restore_to(1, &mut out).unwrap();
    assert_eq!(out, payload, "v2 and v3 reach the same repository");
    let list = v3.tenant_list().unwrap();
    let names: Vec<&str> = list.tenants.iter().map(|t| t.tenant.as_str()).collect();
    assert_eq!(
        names,
        ["default"],
        "the bare client created no other tenant"
    );
    drop(v3);

    shutdown_with_watchdog(handle);
    assert_fsck_clean(&root.join(TENANTS_SUBDIR).join("default"));
    fs::remove_dir_all(&root).unwrap();
}

/// With auto-creation off, an unknown tenant is a typed `NotFound` that
/// `RetryClient` does not retry — and nothing appears on disk.
#[test]
fn unknown_tenant_is_refused_without_side_effects() {
    let root = temp("stranger");
    HiDeStoreConfig::small_for_tests().save_to(&root).unwrap();
    let handle = serve(
        &root,
        ServerConfig {
            quiet: true,
            tenants_root: true,
            auto_create_tenants: false,
            ..ServerConfig::default()
        },
    )
    .unwrap();

    let mut client = RetryClient::new(handle.addr().to_string(), RetryPolicy::default())
        .with_tenant(tenant("stranger"));
    match client.backup(&noise(10_000, 1)).unwrap_err() {
        ClientError::Remote(e) => {
            assert_eq!(e.code, ErrorCode::NotFound, "{e:?}");
            assert!(!e.code.is_retryable());
        }
        other => panic!("expected Remote(NotFound), got {other}"),
    }
    assert_eq!(
        client.counters().attempts,
        1,
        "a permanent refusal must not be retried: {:?}",
        client.counters()
    );
    assert!(
        !root.join(TENANTS_SUBDIR).join("stranger").exists(),
        "a refused tenant must leave no directory behind"
    );
    drop(client);
    shutdown_with_watchdog(handle);
    fs::remove_dir_all(&root).unwrap();
}

/// A quota refusal is permanent: typed `QuotaExceeded`, no retry burned,
/// no rollback (the check runs before any mutation), and the tenant's
/// repository stays clean and readable.
#[test]
fn quota_refusal_is_permanent_and_clean() {
    let root = temp("quota");
    HiDeStoreConfig::small_for_tests().save_to(&root).unwrap();
    let handle = serve(
        &root,
        ServerConfig {
            quiet: true,
            tenants_root: true,
            default_quota: TenantQuota {
                max_bytes: 0,
                max_versions: 1,
            },
            ..ServerConfig::default()
        },
    )
    .unwrap();

    let payload = noise(20_000, 3);
    let mut client = RetryClient::new(handle.addr().to_string(), RetryPolicy::default())
        .with_tenant(tenant("alice"));
    client.backup(&payload).unwrap();
    match client.backup(&noise(5_000, 4)).unwrap_err() {
        ClientError::Remote(e) => {
            assert_eq!(e.code, ErrorCode::QuotaExceeded, "{e:?}");
            assert!(!e.code.is_retryable(), "quota refusals repeat identically");
        }
        other => panic!("expected Remote(QuotaExceeded), got {other}"),
    }
    assert_eq!(
        client.counters().attempts,
        2,
        "one attempt per backup, no retries: {:?}",
        client.counters()
    );
    // The refused mutation left the committed state fully readable.
    let (bytes, _) = client.restore(1).unwrap();
    assert_eq!(bytes, payload);
    drop(client);

    assert_eq!(handle.rollbacks(), 0, "refusal is not a rollback");
    let stats = handle.tenant_stats();
    let (_, alice) = stats
        .iter()
        .find(|(id, _)| id.as_str() == "alice")
        .expect("alice has a stats row");
    assert_eq!(alice.quota_refused, 1);
    shutdown_with_watchdog(handle);
    assert_fsck_clean(&root.join(TENANTS_SUBDIR).join("alice"));
    fs::remove_dir_all(&root).unwrap();
}
