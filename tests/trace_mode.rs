//! Integration tests for trace-driven backup: the long-horizon behaviour the
//! paper's scalability claims rest on, runnable in seconds because no
//! content is generated or hashed.

use hidestore::core::{HiDeStore, HiDeStoreConfig};
use hidestore::dedup::{BackupPipeline, PipelineConfig};
use hidestore::hash::Fingerprint;
use hidestore::index::DdfsIndex;
use hidestore::restore::Faa;
use hidestore::rewriting::NoRewrite;
use hidestore::storage::{MemoryContainerStore, VersionId};
use hidestore::workloads::{TraceSpec, TraceStream};

fn trace_versions(n: u32, churn: f64) -> Vec<Vec<(Fingerprint, u32)>> {
    let spec = TraceSpec {
        initial_chunks: 2048,
        mean_chunk_size: 1024,
        churn,
        growth: 0.002,
        flap: 0.0,
    };
    TraceStream::new(spec, 31)
        .versions(n)
        .into_iter()
        .map(|v| {
            v.into_iter()
                .map(|c| (Fingerprint::synthetic(c.id), c.size))
                .collect()
        })
        .collect()
}

fn hds_config() -> HiDeStoreConfig {
    HiDeStoreConfig {
        avg_chunk_size: 1024,
        container_capacity: 64 * 1024,
        ..HiDeStoreConfig::default()
    }
}

/// 60 versions: HiDeStore's lookup cost stays flat while DDFS's grows —
/// the paper's scalability argument, checked end to end.
#[test]
fn long_horizon_lookups_flat_vs_growing() {
    let versions = trace_versions(60, 0.03);

    let mut hds = HiDeStore::new(hds_config(), MemoryContainerStore::new());
    for v in &versions {
        hds.backup_trace(v).unwrap();
    }
    let stats = hds.version_stats();
    let early: u64 = stats[5..10].iter().map(|s| s.lookup_requests).sum();
    let late: u64 = stats[55..60].iter().map(|s| s.lookup_requests).sum();
    assert!(
        late <= early + early / 2,
        "HiDeStore lookups grew: {early} -> {late}"
    );

    let mut ddfs = BackupPipeline::new(
        PipelineConfig {
            avg_chunk_size: 1024,
            container_capacity: 64 * 1024,
            segment_chunks: 64,
            ..PipelineConfig::default()
        },
        DdfsIndex::with_cache_containers(4),
        NoRewrite::new(),
        MemoryContainerStore::new(),
    );
    for v in &versions {
        ddfs.backup_trace(v).unwrap();
    }
    let rows = ddfs.version_stats();
    let ddfs_early: u64 = rows[5..10].iter().map(|s| s.disk_lookups).sum();
    let ddfs_late: u64 = rows[55..60].iter().map(|s| s.disk_lookups).sum();
    assert!(
        ddfs_late > ddfs_early * 2,
        "DDFS lookups should grow with fragmentation: {ddfs_early} -> {ddfs_late}"
    );
}

/// At a long horizon the newest version restores far better under HiDeStore
/// than under the no-rewrite baseline.
#[test]
fn long_horizon_newest_version_speed_gap() {
    let versions = trace_versions(50, 0.04);

    let mut hds = HiDeStore::new(hds_config(), MemoryContainerStore::new());
    for v in &versions {
        hds.backup_trace(v).unwrap();
    }
    let newest = VersionId::new(versions.len() as u32);
    let hds_sf = hds
        .restore(newest, &mut Faa::new(1 << 20), &mut std::io::sink())
        .unwrap()
        .speed_factor();

    let mut ddfs = BackupPipeline::new(
        PipelineConfig {
            avg_chunk_size: 1024,
            container_capacity: 64 * 1024,
            segment_chunks: 64,
            ..PipelineConfig::default()
        },
        DdfsIndex::new(),
        NoRewrite::new(),
        MemoryContainerStore::new(),
    );
    for v in &versions {
        ddfs.backup_trace(v).unwrap();
    }
    let base_sf = ddfs
        .restore(newest, &mut Faa::new(1 << 20), &mut std::io::sink())
        .unwrap()
        .speed_factor();
    assert!(
        hds_sf > base_sf * 2.0,
        "at 50 versions the gap must be large: hidestore {hds_sf:.3} vs baseline {base_sf:.3}"
    );
}

/// Dedup ratios agree between HiDeStore and exact dedup on the same trace.
#[test]
fn trace_dedup_parity_with_exact() {
    let versions = trace_versions(30, 0.05);
    let mut hds = HiDeStore::new(hds_config(), MemoryContainerStore::new());
    let mut ddfs = BackupPipeline::new(
        PipelineConfig {
            avg_chunk_size: 1024,
            container_capacity: 64 * 1024,
            segment_chunks: 64,
            ..PipelineConfig::default()
        },
        DdfsIndex::new(),
        NoRewrite::new(),
        MemoryContainerStore::new(),
    );
    for v in &versions {
        hds.backup_trace(v).unwrap();
        ddfs.backup_trace(v).unwrap();
    }
    let gap = (hds.run_stats().dedup_ratio() - ddfs.run_stats().dedup_ratio()).abs();
    assert!(gap < 1e-6, "trace-mode dedup must be identical, gap {gap}");
}

/// Deletion on a long trace horizon: expire half the versions, survivors
/// restore, containers dropped in bulk.
#[test]
fn long_horizon_deletion() {
    let versions = trace_versions(40, 0.05);
    let mut hds = HiDeStore::new(hds_config(), MemoryContainerStore::new());
    for v in &versions {
        hds.backup_trace(v).unwrap();
    }
    let report = hds.delete_expired(VersionId::new(20)).unwrap();
    assert!(report.containers_dropped > 0);
    assert_eq!(hds.versions().len(), 20);
    for v in [21u32, 30, 40] {
        let mut out = Vec::new();
        hds.restore(VersionId::new(v), &mut Faa::new(1 << 20), &mut out)
            .unwrap();
        assert!(!out.is_empty());
    }
}
