//! Tree backup/restore round trips against real on-disk trees.
//!
//! Covers: byte- and metadata-identical round trips (permission bits,
//! mtimes, symlink targets, empty files and directories, odd-but-valid
//! names), seeded random trees, exclude pruning, provably-partial subtree
//! restore (`container_reads` proportionality), error resilience on both
//! the backup side (unreadable source) and the restore side (failing
//! destination writes), and type errors for non-tree versions.

use std::io;
use std::path::{Path, PathBuf};

use hidestore::core::{HiDeStore, HiDeStoreConfig};
use hidestore::failpoint::{RealVfs, Vfs, VfsEntryKind};
use hidestore::storage::{MemoryContainerStore, VersionId};
use hidestore::tree::{
    backup_tree, restore_tree, ExcludeSet, TreeBackupOptions, TreeError, TreeRestoreOptions,
};

/// A unique scratch directory, removed on drop.
struct Scratch(PathBuf);

impl Scratch {
    fn new(tag: &str) -> Self {
        let dir = std::env::temp_dir().join(format!("hds-tree-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        Scratch(dir)
    }

    fn path(&self, name: &str) -> PathBuf {
        self.0.join(name)
    }
}

impl Drop for Scratch {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

fn small_system() -> HiDeStore<MemoryContainerStore> {
    HiDeStore::new(
        HiDeStoreConfig {
            avg_chunk_size: 1024,
            container_capacity: 16 * 1024,
            ..HiDeStoreConfig::default()
        },
        MemoryContainerStore::new(),
    )
}

fn noise(len: usize, seed: u64) -> Vec<u8> {
    let mut state = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
    (0..len)
        .map(|_| {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state >> 32) as u8
        })
        .collect()
}

/// Recursively compares two trees: same entries, kinds, bytes, symlink
/// targets, permission bits, and mtimes (symlinks compare target only).
fn assert_trees_equal(a: &Path, b: &Path) {
    let vfs = RealVfs;
    let ma = vfs.symlink_metadata(a).unwrap();
    let mb = vfs.symlink_metadata(b).unwrap();
    assert_eq!(ma.kind, mb.kind, "kind mismatch: {}", a.display());
    match ma.kind {
        VfsEntryKind::Symlink => {
            assert_eq!(
                vfs.read_link(a).unwrap(),
                vfs.read_link(b).unwrap(),
                "symlink target mismatch: {}",
                a.display()
            );
            return;
        }
        VfsEntryKind::File => {
            assert_eq!(
                vfs.read(a).unwrap(),
                vfs.read(b).unwrap(),
                "content mismatch: {}",
                a.display()
            );
        }
        VfsEntryKind::Dir => {}
        VfsEntryKind::Other => panic!("unexpected kind at {}", a.display()),
    }
    assert_eq!(ma.mode, mb.mode, "mode mismatch: {}", a.display());
    assert_eq!(
        (ma.mtime_secs, ma.mtime_nanos),
        (mb.mtime_secs, mb.mtime_nanos),
        "mtime mismatch: {}",
        a.display()
    );
    if ma.kind == VfsEntryKind::Dir {
        let ca = vfs.read_dir(a).unwrap();
        let cb = vfs.read_dir(b).unwrap();
        let na: Vec<_> = ca.iter().filter_map(|p| p.file_name()).collect();
        let nb: Vec<_> = cb.iter().filter_map(|p| p.file_name()).collect();
        assert_eq!(na, nb, "children mismatch: {}", a.display());
        for (pa, pb) in ca.iter().zip(cb.iter()) {
            assert_trees_equal(pa, pb);
        }
    }
}

fn write_file(path: &Path, data: &[u8]) {
    std::fs::create_dir_all(path.parent().unwrap()).unwrap();
    std::fs::write(path, data).unwrap();
}

/// Pins every entry of a tree to deterministic modes and mtimes so the
/// metadata round trip is exact and meaningful. Directories are stamped
/// children-first so the stamping itself does not dirty parent mtimes.
fn stamp_metadata(root: &Path) {
    let vfs = RealVfs;
    fn walk(vfs: &RealVfs, path: &Path, depth: u64, dirs: &mut Vec<PathBuf>) {
        let meta = vfs.symlink_metadata(path).unwrap();
        match meta.kind {
            VfsEntryKind::Dir => {
                for child in vfs.read_dir(path).unwrap() {
                    walk(vfs, &child, depth + 1, dirs);
                }
                dirs.push(path.to_path_buf());
            }
            VfsEntryKind::File => {
                let mode = if meta.len.is_multiple_of(2) {
                    0o640
                } else {
                    0o755
                };
                vfs.set_mode(path, mode).unwrap();
                vfs.set_mtime(
                    path,
                    1_600_000_000 + depth as i64,
                    123_000_000 + meta.len as u32,
                )
                .unwrap();
            }
            _ => {}
        }
    }
    let mut dirs = Vec::new();
    walk(&vfs, root, 0, &mut dirs);
    for (i, dir) in dirs.iter().enumerate() {
        vfs.set_mode(dir, 0o750).unwrap();
        vfs.set_mtime(dir, 1_500_000_000 + i as i64, 42).unwrap();
    }
}

/// Builds a fixed tree exercising every supported entry shape.
fn build_fixture(root: &Path) {
    write_file(&root.join("README"), b"top-level file\n");
    write_file(&root.join("src/main.rs"), &noise(5000, 1));
    write_file(&root.join("src/lib.rs"), &noise(3000, 2));
    write_file(&root.join("src/empty.rs"), b"");
    write_file(&root.join("a b/odd name.txt"), b"spaces are fine");
    write_file(&root.join("a b/\u{e9}tude"), b"unicode name");
    // Sibling ordering trap: '+' < '/' bytewise, but the walk descends.
    write_file(&root.join("a/inner"), b"child of a");
    write_file(&root.join("a+x"), b"sibling after a's subtree");
    std::fs::create_dir_all(root.join("empty-dir")).unwrap();
    #[cfg(unix)]
    {
        std::os::unix::fs::symlink("src/main.rs", root.join("link-rel")).unwrap();
        std::os::unix::fs::symlink("/nonexistent/target", root.join("link-dangling")).unwrap();
    }
    stamp_metadata(root);
}

#[test]
fn fixture_tree_round_trips_bytes_and_metadata() {
    let scratch = Scratch::new("fixture");
    let src = scratch.path("src");
    build_fixture(&src);

    let mut system = small_system();
    let vfs = RealVfs;
    let report = backup_tree(&mut system, &vfs, &src, &TreeBackupOptions::default()).unwrap();
    assert!(report.is_complete(), "skipped: {:?}", report.skipped);
    assert_eq!(report.files, 8);
    assert!(report.dirs >= 5); // root, src, "a b", a, empty-dir
    #[cfg(unix)]
    assert_eq!(report.symlinks, 2);

    let dest = scratch.path("dest");
    let restored = restore_tree(
        &mut system,
        &vfs,
        report.stats.version,
        &dest,
        &TreeRestoreOptions::default(),
    )
    .unwrap();
    assert!(restored.is_complete(), "skipped: {:?}", restored.skipped);
    assert_eq!(restored.files, report.files);
    assert_eq!(restored.dirs, report.dirs);
    assert_eq!(restored.symlinks, report.symlinks);
    assert_eq!(restored.bytes_restored, report.content_bytes);
    assert_trees_equal(&src, &dest);
}

/// Seeded random trees: nested dirs, empty files/dirs, symlinks, odd names.
fn build_random_tree(root: &Path, seed: u64) {
    let names = [
        "alpha",
        "b",
        "c.txt",
        "d e",
        "UPPER",
        "z-9",
        "_u",
        "...",
        "x+y",
        "\u{3b1}\u{3b2}",
    ];
    let mut state = seed | 1;
    let mut next = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        state
    };
    fn populate(dir: &Path, depth: u32, names: &[&str], next: &mut impl FnMut() -> u64) {
        std::fs::create_dir_all(dir).unwrap();
        let children = 1 + (next() % 4) as usize;
        for i in 0..children {
            let name = format!("{}{i}", names[(next() % names.len() as u64) as usize]);
            let path = dir.join(&name);
            match next() % 5 {
                0 if depth < 3 => populate(&path, depth + 1, names, next),
                1 => std::fs::create_dir_all(&path).unwrap(), // empty dir
                2 => write_file(&path, b""),                  // empty file
                #[cfg(unix)]
                3 => std::os::unix::fs::symlink("../somewhere", &path).unwrap(),
                _ => {
                    let len = (next() % 8192) as usize;
                    let body = noise(len, next());
                    write_file(&path, &body);
                }
            }
        }
    }
    populate(root, 0, &names, &mut next);
    stamp_metadata(root);
}

#[test]
fn seeded_random_trees_round_trip() {
    for seed in [7, 99, 1234, 777_777] {
        let scratch = Scratch::new(&format!("rand{seed}"));
        let src = scratch.path("src");
        build_random_tree(&src, seed);

        let mut system = small_system();
        let vfs = RealVfs;
        let report = backup_tree(&mut system, &vfs, &src, &TreeBackupOptions::default()).unwrap();
        assert!(report.is_complete(), "seed {seed}: {:?}", report.skipped);

        let dest = scratch.path("dest");
        let restored = restore_tree(
            &mut system,
            &vfs,
            report.stats.version,
            &dest,
            &TreeRestoreOptions::default(),
        )
        .unwrap();
        assert!(
            restored.is_complete(),
            "seed {seed}: {:?}",
            restored.skipped
        );
        assert_trees_equal(&src, &dest);
    }
}

#[test]
fn subtree_restore_reads_fewer_containers_and_lands_at_dest() {
    let scratch = Scratch::new("subtree");
    let src = scratch.path("src");
    // A lot of incompressible data outside the subtree of interest.
    for i in 0..40 {
        write_file(&src.join(format!("big/file{i:02}")), &noise(4096, 1000 + i));
    }
    write_file(&src.join("small/needle.txt"), b"just this one\n");
    stamp_metadata(&src);

    let mut system = small_system();
    let vfs = RealVfs;
    let report = backup_tree(&mut system, &vfs, &src, &TreeBackupOptions::default()).unwrap();
    assert!(report.is_complete());
    let version = report.stats.version;

    let full_dest = scratch.path("full");
    let full = restore_tree(
        &mut system,
        &vfs,
        version,
        &full_dest,
        &TreeRestoreOptions::default(),
    )
    .unwrap();
    assert!(full.is_complete());
    assert_trees_equal(&src, &full_dest);

    let sub_dest = scratch.path("sub");
    let sub = restore_tree(
        &mut system,
        &vfs,
        version,
        &sub_dest,
        &TreeRestoreOptions {
            subtree: Some("/small".to_string()),
            ..TreeRestoreOptions::default()
        },
    )
    .unwrap();
    assert!(sub.is_complete());
    assert_eq!(sub.files, 1);
    assert_trees_equal(&src.join("small"), &sub_dest);
    assert!(
        sub.container_reads < full.container_reads,
        "subtree restore should be partial: {} < {}",
        sub.container_reads,
        full.container_reads
    );

    // A single-file subtree lands the file directly at the destination.
    let file_dest = scratch.path("one-file");
    let one = restore_tree(
        &mut system,
        &vfs,
        version,
        &file_dest,
        &TreeRestoreOptions {
            subtree: Some("/small/needle.txt".to_string()),
            ..TreeRestoreOptions::default()
        },
    )
    .unwrap();
    assert!(one.is_complete());
    assert_eq!(one.files, 1);
    assert_eq!(std::fs::read(&file_dest).unwrap(), b"just this one\n");
}

#[test]
fn excludes_prune_files_and_subtrees() {
    let scratch = Scratch::new("exclude");
    let src = scratch.path("src");
    write_file(&src.join("keep.txt"), b"keep");
    write_file(&src.join("debug.log"), b"drop");
    write_file(&src.join("deep/also.log"), b"drop");
    write_file(&src.join("target/artifact.bin"), &noise(2048, 5));
    write_file(&src.join("deep/keep2.txt"), b"keep too");

    let mut system = small_system();
    let vfs = RealVfs;
    let options = TreeBackupOptions {
        excludes: ExcludeSet::new(["*.log", "/target"]).unwrap(),
    };
    let report = backup_tree(&mut system, &vfs, &src, &options).unwrap();
    assert!(report.is_complete());
    assert_eq!(report.excluded, 3); // two logs + the target dir (whole subtree)
    assert_eq!(report.files, 2);

    let dest = scratch.path("dest");
    restore_tree(
        &mut system,
        &vfs,
        report.stats.version,
        &dest,
        &TreeRestoreOptions::default(),
    )
    .unwrap();
    assert!(dest.join("keep.txt").exists());
    assert!(dest.join("deep/keep2.txt").exists());
    assert!(!dest.join("debug.log").exists());
    assert!(!dest.join("deep/also.log").exists());
    assert!(!dest.join("target").exists());
}

/// A [`Vfs`] that fails reads or writes on paths containing a marker —
/// the test stand-in for an unreadable file or a full/broken destination
/// (root can read anything, so permission bits cannot model this).
#[derive(Clone, Debug)]
struct DenyVfs {
    inner: RealVfs,
    marker: &'static str,
    deny_reads: bool,
    deny_writes: bool,
}

impl DenyVfs {
    fn denied(&self, path: &Path) -> bool {
        path.to_string_lossy().contains(self.marker)
    }

    fn fail<T>(&self) -> io::Result<T> {
        Err(io::Error::other("injected failure"))
    }
}

impl Vfs for DenyVfs {
    fn read(&self, path: &Path) -> io::Result<Vec<u8>> {
        if self.deny_reads && self.denied(path) {
            return self.fail();
        }
        self.inner.read(path)
    }
    fn write(&self, path: &Path, data: &[u8]) -> io::Result<()> {
        if self.deny_writes && self.denied(path) {
            return self.fail();
        }
        self.inner.write(path, data)
    }
    fn sync_file(&self, path: &Path) -> io::Result<()> {
        self.inner.sync_file(path)
    }
    fn rename(&self, from: &Path, to: &Path) -> io::Result<()> {
        self.inner.rename(from, to)
    }
    fn sync_dir(&self, path: &Path) -> io::Result<()> {
        self.inner.sync_dir(path)
    }
    fn remove_file(&self, path: &Path) -> io::Result<()> {
        self.inner.remove_file(path)
    }
    fn create_dir_all(&self, path: &Path) -> io::Result<()> {
        self.inner.create_dir_all(path)
    }
    fn read_dir(&self, path: &Path) -> io::Result<Vec<PathBuf>> {
        self.inner.read_dir(path)
    }
    fn remove_dir_all(&self, path: &Path) -> io::Result<()> {
        self.inner.remove_dir_all(path)
    }
    fn exists(&self, path: &Path) -> bool {
        self.inner.exists(path)
    }
    fn symlink_metadata(&self, path: &Path) -> io::Result<hidestore::failpoint::VfsMetadata> {
        self.inner.symlink_metadata(path)
    }
    fn read_link(&self, path: &Path) -> io::Result<PathBuf> {
        self.inner.read_link(path)
    }
    fn symlink(&self, target: &Path, link: &Path) -> io::Result<()> {
        self.inner.symlink(target, link)
    }
    fn set_mode(&self, path: &Path, mode: u32) -> io::Result<()> {
        self.inner.set_mode(path, mode)
    }
    fn set_mtime(&self, path: &Path, secs: i64, nanos: u32) -> io::Result<()> {
        self.inner.set_mtime(path, secs, nanos)
    }
}

#[test]
fn unreadable_source_file_is_skipped_not_fatal() {
    let scratch = Scratch::new("deny-read");
    let src = scratch.path("src");
    write_file(&src.join("good1.txt"), b"fine");
    write_file(&src.join("secret-unreadable.txt"), b"cannot read me");
    write_file(&src.join("good2.txt"), &noise(3000, 9));
    stamp_metadata(&src);

    let mut system = small_system();
    let deny = DenyVfs {
        inner: RealVfs,
        marker: "secret-unreadable",
        deny_reads: true,
        deny_writes: false,
    };
    let report = backup_tree(&mut system, &deny, &src, &TreeBackupOptions::default()).unwrap();
    assert!(!report.is_complete());
    assert_eq!(report.skipped.len(), 1);
    assert_eq!(report.skipped[0].apath, "/secret-unreadable.txt");
    assert_eq!(report.files, 2);

    // Every other file restores byte- and metadata-identical.
    let dest = scratch.path("dest");
    let restored = restore_tree(
        &mut system,
        &RealVfs,
        report.stats.version,
        &dest,
        &TreeRestoreOptions::default(),
    )
    .unwrap();
    assert!(restored.is_complete());
    assert!(!dest.join("secret-unreadable.txt").exists());
    assert_trees_equal(&src.join("good1.txt"), &dest.join("good1.txt"));
    assert_trees_equal(&src.join("good2.txt"), &dest.join("good2.txt"));
}

#[test]
fn failing_destination_write_is_skipped_not_fatal() {
    let scratch = Scratch::new("deny-write");
    let src = scratch.path("src");
    write_file(&src.join("ok-a.txt"), b"alpha");
    write_file(&src.join("cursed.txt"), b"will not land");
    write_file(&src.join("ok-b.txt"), &noise(2500, 11));
    stamp_metadata(&src);

    let mut system = small_system();
    let report = backup_tree(&mut system, &RealVfs, &src, &TreeBackupOptions::default()).unwrap();
    assert!(report.is_complete());

    let dest = scratch.path("dest");
    let deny = DenyVfs {
        inner: RealVfs,
        marker: "cursed",
        deny_reads: false,
        deny_writes: true,
    };
    let restored = restore_tree(
        &mut system,
        &deny,
        report.stats.version,
        &dest,
        &TreeRestoreOptions::default(),
    )
    .unwrap();
    assert!(!restored.is_complete());
    assert_eq!(restored.skipped.len(), 1);
    assert_eq!(restored.skipped[0].apath, "/cursed.txt");
    assert_eq!(restored.files, 2);
    assert!(!dest.join("cursed.txt").exists());
    assert!(!dest.join("cursed.txt.hds-tmp").exists(), "staging residue");
    assert_trees_equal(&src.join("ok-a.txt"), &dest.join("ok-a.txt"));
    assert_trees_equal(&src.join("ok-b.txt"), &dest.join("ok-b.txt"));
}

#[test]
fn non_tree_version_and_bad_subtree_are_typed_errors() {
    let scratch = Scratch::new("errors");
    let src = scratch.path("src");
    write_file(&src.join("f"), b"tree data");

    let mut system = small_system();
    let vfs = RealVfs;
    // A plain (non-tree) backup is rejected by restore_tree.
    system.backup(&noise(9000, 3)).unwrap();
    let err = restore_tree(
        &mut system,
        &vfs,
        VersionId::new(1),
        &scratch.path("d1"),
        &TreeRestoreOptions::default(),
    )
    .unwrap_err();
    assert!(matches!(err, TreeError::NotATreeBackup(_)), "{err}");

    let report = backup_tree(&mut system, &vfs, &src, &TreeBackupOptions::default()).unwrap();
    let err = restore_tree(
        &mut system,
        &vfs,
        report.stats.version,
        &scratch.path("d2"),
        &TreeRestoreOptions {
            subtree: Some("/no/such/entry".to_string()),
            ..TreeRestoreOptions::default()
        },
    )
    .unwrap_err();
    assert!(matches!(err, TreeError::SubtreeNotFound(_)), "{err}");

    // Backing up a file (not a directory) is rejected.
    let err = backup_tree(
        &mut system,
        &vfs,
        &src.join("f"),
        &TreeBackupOptions::default(),
    )
    .unwrap_err();
    assert!(matches!(err, TreeError::NotADirectory(_)), "{err}");
}
