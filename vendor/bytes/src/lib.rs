#![forbid(unsafe_code)]
#![warn(missing_docs)]

//! Vendored minimal stand-in for the `bytes` crate.
//!
//! The build environment has no network access and no registry mirror, so the
//! workspace vendors the tiny slice of the `bytes` API it actually uses:
//! [`Bytes`], an immutable reference-counted byte buffer whose clones share
//! one allocation. Anything beyond that (mutable buffers, split operations,
//! the `Buf` traits) is deliberately absent — add it here if a caller needs
//! it rather than reaching for the real crate.

use std::borrow::Borrow;
use std::fmt;
use std::hash::{Hash, Hasher};
use std::ops::Deref;
use std::sync::Arc;

/// A cheaply cloneable, immutable byte buffer.
///
/// Clones share the same backing allocation (reference counted), so pipeline
/// stages, containers and caches can hold the same chunk content without
/// copying — the property the workspace relies on.
#[derive(Clone)]
pub struct Bytes {
    data: Arc<[u8]>,
}

impl Bytes {
    /// Creates an empty buffer.
    pub fn new() -> Self {
        Bytes {
            data: Arc::from(&[][..]),
        }
    }

    /// Copies `data` into a new buffer.
    pub fn copy_from_slice(data: &[u8]) -> Self {
        Bytes {
            data: Arc::from(data),
        }
    }

    /// Length of the buffer in bytes.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Returns a new `Bytes` holding a copy of the `range` subslice.
    ///
    /// Unlike the real `bytes` crate this copies instead of sharing, which is
    /// fine for the workspace's test-scale use.
    pub fn slice(&self, range: std::ops::Range<usize>) -> Self {
        Bytes::copy_from_slice(&self.data[range])
    }
}

impl Default for Bytes {
    fn default() -> Self {
        Bytes::new()
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

impl Borrow<[u8]> for Bytes {
    fn borrow(&self) -> &[u8] {
        &self.data
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        Bytes { data: v.into() }
    }
}

impl From<&[u8]> for Bytes {
    fn from(v: &[u8]) -> Self {
        Bytes::copy_from_slice(v)
    }
}

impl<const N: usize> From<&[u8; N]> for Bytes {
    fn from(v: &[u8; N]) -> Self {
        Bytes::copy_from_slice(v)
    }
}

impl From<&str> for Bytes {
    fn from(v: &str) -> Self {
        Bytes::copy_from_slice(v.as_bytes())
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Self) -> bool {
        self.data[..] == other.data[..]
    }
}

impl Eq for Bytes {}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        self.data[..] == *other
    }
}

impl PartialEq<Vec<u8>> for Bytes {
    fn eq(&self, other: &Vec<u8>) -> bool {
        self.data[..] == other[..]
    }
}

impl PartialOrd for Bytes {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Bytes {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.data[..].cmp(&other.data[..])
    }
}

impl Hash for Bytes {
    fn hash<H: Hasher>(&self, state: &mut H) {
        self.data[..].hash(state);
    }
}

impl fmt::Debug for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Bytes(len={})", self.data.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clones_share_allocation() {
        let a = Bytes::copy_from_slice(b"hello");
        let b = a.clone();
        assert_eq!(a.as_ptr(), b.as_ptr());
        assert_eq!(a, b);
    }

    #[test]
    fn from_vec_and_slice() {
        let a: Bytes = vec![1u8, 2, 3].into();
        let b: Bytes = (&[1u8, 2, 3][..]).into();
        assert_eq!(a, b);
        assert_eq!(a.as_ref(), &[1, 2, 3]);
        assert_eq!(a.len(), 3);
        assert!(!a.is_empty());
    }

    #[test]
    fn slice_copies_subrange() {
        let a = Bytes::copy_from_slice(b"abcdef");
        assert_eq!(a.slice(2..4).as_ref(), b"cd");
    }
}
