#![forbid(unsafe_code)]
#![warn(missing_docs)]

//! Vendored minimal stand-in for the `criterion` benchmark harness.
//!
//! The build environment is fully offline, so this shim reproduces the small
//! part of criterion's API surface the workspace benches use — groups,
//! `bench_function` / `bench_with_input`, throughput annotation, and the
//! `criterion_group!` / `criterion_main!` macros — backed by a plain
//! mean-of-N-samples timer instead of criterion's statistical machinery.
//! Numbers printed here are indicative, not publication grade.

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Top-level benchmark driver; handed to every registered bench function.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 20 }
    }
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: self.sample_size,
            throughput: None,
            _criterion: self,
        }
    }

    /// Runs a single benchmark outside any group.
    pub fn bench_function<F>(&mut self, name: &str, routine: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(name, self.sample_size, None, routine);
        self
    }
}

/// Identifier for one parameterized benchmark within a group.
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// An id made of a function name and a parameter.
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// An id made of the parameter alone.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

/// Work-per-iteration annotation used to report rates.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Elements processed per iteration.
    Elements(u64),
}

/// A named collection of benchmarks sharing sample-size and throughput
/// settings.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Declares how much work one iteration performs.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Runs a benchmark in this group.
    pub fn bench_function<F>(&mut self, name: impl Display, routine: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(
            &format!("{}/{}", self.name, name),
            self.sample_size,
            self.throughput,
            routine,
        );
        self
    }

    /// Runs a benchmark with an explicit input value.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut routine: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        run_one(
            &format!("{}/{}", self.name, id.id),
            self.sample_size,
            self.throughput,
            |b| routine(b, input),
        );
        self
    }

    /// Ends the group (printing is per-benchmark, so this is a no-op).
    pub fn finish(&mut self) {}
}

/// Timer handed to each benchmark routine.
pub struct Bencher {
    samples: Vec<Duration>,
    sample_size: usize,
}

impl Bencher {
    /// Times `routine`, recording `sample_size` samples after one warm-up
    /// call.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        black_box(routine());
        for _ in 0..self.sample_size {
            let start = Instant::now();
            black_box(routine());
            self.samples.push(start.elapsed());
        }
    }
}

fn run_one<F>(label: &str, sample_size: usize, throughput: Option<Throughput>, mut routine: F)
where
    F: FnMut(&mut Bencher),
{
    let mut bencher = Bencher {
        samples: Vec::new(),
        sample_size,
    };
    routine(&mut bencher);
    if bencher.samples.is_empty() {
        println!("{label}: no samples recorded");
        return;
    }
    let total: Duration = bencher.samples.iter().sum();
    let mean = total / bencher.samples.len() as u32;
    let min = bencher.samples.iter().min().copied().unwrap_or_default();
    let max = bencher.samples.iter().max().copied().unwrap_or_default();
    let rate = throughput.map(|t| match t {
        Throughput::Bytes(bytes) => {
            let mib_s = bytes as f64 / mean.as_secs_f64() / (1024.0 * 1024.0);
            format!("  {mib_s:.1} MiB/s")
        }
        Throughput::Elements(n) => {
            let elem_s = n as f64 / mean.as_secs_f64();
            format!("  {elem_s:.0} elem/s")
        }
    });
    println!(
        "{label}: mean {mean:?} (min {min:?}, max {max:?}, n={}){}",
        bencher.samples.len(),
        rate.unwrap_or_default()
    );
}

/// Bundles bench functions into a group callable from [`criterion_main!`].
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name(criterion: &mut $crate::Criterion) {
            $($target(criterion);)+
        }
    };
}

/// Generates `main` running each registered group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            let mut criterion = $crate::Criterion::default();
            $($group(&mut criterion);)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_routine() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("g");
        group.sample_size(2).throughput(Throughput::Bytes(1024));
        let mut calls = 0u32;
        group.bench_function("count", |b| b.iter(|| calls += 1));
        group.finish();
        // one warm-up + two samples
        assert_eq!(calls, 3);
    }

    #[test]
    fn bench_with_input_passes_input() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("g");
        group.sample_size(1);
        group.bench_with_input(BenchmarkId::from_parameter("x"), &41, |b, &x| {
            b.iter(|| assert_eq!(x + 1, 42))
        });
    }
}
