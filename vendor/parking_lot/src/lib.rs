#![forbid(unsafe_code)]
#![warn(missing_docs)]

//! Vendored minimal stand-in for the `parking_lot` crate.
//!
//! The build environment is fully offline, so this shim provides the small
//! part of the `parking_lot` API the workspace uses — [`Mutex`] and
//! [`RwLock`] whose lock methods return guards directly (no poisoning
//! `Result`) — implemented on top of `std::sync`. Poisoned std locks are
//! recovered transparently, matching `parking_lot`'s no-poisoning semantics.

use std::fmt;

/// Guard type returned by [`Mutex::lock`].
pub type MutexGuard<'a, T> = std::sync::MutexGuard<'a, T>;
/// Guard type returned by [`RwLock::read`].
pub type RwLockReadGuard<'a, T> = std::sync::RwLockReadGuard<'a, T>;
/// Guard type returned by [`RwLock::write`].
pub type RwLockWriteGuard<'a, T> = std::sync::RwLockWriteGuard<'a, T>;

/// A mutual-exclusion lock whose [`lock`](Mutex::lock) returns the guard
/// directly instead of a poisoning `Result`.
#[derive(Default)]
pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

impl<T> Mutex<T> {
    /// Creates a mutex protecting `value`.
    pub fn new(value: T) -> Self {
        Mutex {
            inner: std::sync::Mutex::new(value),
        }
    }

    /// Consumes the mutex, returning the protected value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(|poison| poison.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until it is available. A lock poisoned by
    /// a panicking holder is recovered rather than propagated.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.inner
            .lock()
            .unwrap_or_else(|poison| poison.into_inner())
    }

    /// Attempts to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(guard) => Some(guard),
            Err(std::sync::TryLockError::Poisoned(poison)) => Some(poison.into_inner()),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Returns a mutable reference to the protected value (no locking needed
    /// with exclusive access).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner
            .get_mut()
            .unwrap_or_else(|poison| poison.into_inner())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.try_lock() {
            Some(guard) => f.debug_tuple("Mutex").field(&&*guard).finish(),
            None => f.write_str("Mutex(<locked>)"),
        }
    }
}

/// A reader-writer lock whose methods return guards directly instead of
/// poisoning `Result`s.
#[derive(Default)]
pub struct RwLock<T: ?Sized> {
    inner: std::sync::RwLock<T>,
}

impl<T> RwLock<T> {
    /// Creates a lock protecting `value`.
    pub fn new(value: T) -> Self {
        RwLock {
            inner: std::sync::RwLock::new(value),
        }
    }

    /// Consumes the lock, returning the protected value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(|poison| poison.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires shared read access, blocking until available.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.inner
            .read()
            .unwrap_or_else(|poison| poison.into_inner())
    }

    /// Acquires exclusive write access, blocking until available.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.inner
            .write()
            .unwrap_or_else(|poison| poison.into_inner())
    }

    /// Returns a mutable reference to the protected value.
    pub fn get_mut(&mut self) -> &mut T {
        self.inner
            .get_mut()
            .unwrap_or_else(|poison| poison.into_inner())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("RwLock(..)")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_basic() {
        let m = Mutex::new(5);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 6);
        assert_eq!(m.into_inner(), 6);
    }

    #[test]
    fn rwlock_basic() {
        let l = RwLock::new(vec![1]);
        l.write().push(2);
        assert_eq!(*l.read(), vec![1, 2]);
    }

    #[test]
    fn poisoned_mutex_recovers() {
        let m = std::sync::Arc::new(Mutex::new(0));
        let m2 = m.clone();
        let _ = std::thread::spawn(move || {
            let _guard = m2.lock();
            panic!("poison the lock");
        })
        .join();
        assert_eq!(*m.lock(), 0);
    }
}
