#![forbid(unsafe_code)]
#![warn(missing_docs)]

//! Vendored minimal stand-in for the `rand` crate.
//!
//! The build environment is fully offline, so the workspace vendors the slice
//! of the `rand 0.8` API its workload generators use: the [`Rng`] extension
//! trait (`gen_range`, `gen_bool`, `fill`), [`SeedableRng::seed_from_u64`],
//! and a deterministic [`rngs::StdRng`]. The generator is xoshiro256++
//! seeded through SplitMix64 — high quality for workload synthesis, **not**
//! cryptographically secure, and its streams differ from upstream `rand`'s
//! `StdRng` (callers only rely on determinism for a fixed seed, which holds).

/// Low-level uniform random source: everything else is derived from
/// [`next_u64`](RngCore::next_u64).
pub trait RngCore {
    /// Returns the next 64 uniformly distributed random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 uniformly distributed random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// A random source that can be deterministically seeded.
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed. Equal seeds yield equal
    /// streams.
    fn seed_from_u64(seed: u64) -> Self;
}

/// User-facing extension methods over any [`RngCore`].
pub trait Rng: RngCore {
    /// Samples a uniform value from `range` (`a..b` or `a..=b`).
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<R: SampleRange>(&mut self, range: R) -> R::Output
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p` (clamped to `[0, 1]`).
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        // 53 random bits make a uniform f64 in [0, 1).
        let unit = (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        unit < p
    }

    /// Fills `dest` with uniformly random bytes.
    fn fill(&mut self, dest: &mut [u8])
    where
        Self: Sized,
    {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }
}

impl<T: RngCore> Rng for T {}

/// A range that [`Rng::gen_range`] can sample from.
pub trait SampleRange {
    /// The element type produced by sampling.
    type Output;

    /// Draws one uniform sample from the range.
    fn sample_from<R: RngCore>(self, rng: &mut R) -> Self::Output;
}

/// Uniform sample from `[0, span)` by widening multiply; bias is below
/// 2^-32 for the sub-2^32 spans the workspace uses.
fn sample_below<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
    ((rng.next_u64() as u128 * span as u128) >> 64) as u64
}

macro_rules! impl_sample_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange for std::ops::Range<$t> {
            type Output = $t;
            fn sample_from<R: RngCore>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                self.start + sample_below(rng, span) as $t
            }
        }
        impl SampleRange for std::ops::RangeInclusive<$t> {
            type Output = $t;
            fn sample_from<R: RngCore>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let span = ((end as u64) - (start as u64)).wrapping_add(1);
                if span == 0 {
                    // Full u64 domain: every value is in range.
                    return rng.next_u64() as $t;
                }
                start + sample_below(rng, span) as $t
            }
        }
    )*};
}

impl_sample_range_int!(u8, u16, u32, u64, usize);

/// Concrete generator types.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic PRNG: xoshiro256++ seeded via
    /// SplitMix64.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion, the recommended seeding procedure for
            // xoshiro generators.
            let mut s = seed;
            let mut next = || {
                s = s.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = s;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            StdRng {
                state: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            // xoshiro256++ step.
            let [s0, s1, s2, s3] = self.state;
            let result = s0.wrapping_add(s3).rotate_left(23).wrapping_add(s0);
            let t = s1 << 17;
            let mut s = [s0, s1, s2, s3];
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            self.state = s;
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_equal_seeds() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0usize..1000), b.gen_range(0usize..1000));
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let x = rng.gen_range(10usize..20);
            assert!((10..20).contains(&x));
            let y = rng.gen_range(5u8..=9);
            assert!((5..=9).contains(&y));
        }
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(3);
        let hits = (0..100_000).filter(|_| rng.gen_bool(0.25)).count();
        let rate = hits as f64 / 100_000.0;
        assert!((rate - 0.25).abs() < 0.01, "rate {rate} far from 0.25");
    }

    #[test]
    fn fill_covers_all_bytes() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut buf = [0u8; 37];
        rng.fill(&mut buf[..]);
        // Overwhelmingly unlikely that 37 random bytes are all zero.
        assert!(buf.iter().any(|&b| b != 0));
    }

    #[test]
    fn seeds_differ() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let same = (0..64)
            .filter(|_| a.gen_range(0u64..u64::MAX) == b.gen_range(0u64..u64::MAX))
            .count();
        assert_eq!(same, 0);
    }
}
