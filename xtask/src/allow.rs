//! The two allowlists of deliberate exceptions, with stale-entry detection.
//!
//! * `xtask/lint-allow.txt` (the PR 1 format): `path :: line-substring`,
//!   consumed by `cargo xtask lint`.
//! * `xtask/analyze-allow.txt`: `rule :: path :: line-substring ::
//!   justification`, consumed by `cargo xtask analyze`. The justification is
//!   mandatory — an exception nobody can explain is not an exception.
//!
//! Both lists fail their task when an entry matches nothing, so neither can
//! rot as the code it once excused moves or disappears.

use std::fs;
use std::path::Path;

/// One deliberate exception: a file plus a required line substring.
#[derive(Debug)]
pub struct AllowEntry {
    /// Workspace-relative `/`-separated path.
    pub path: String,
    /// Substring the violating line must contain (empty = any line).
    pub pattern: String,
}

/// The lint allowlist (`path :: substring` entries).
#[derive(Debug)]
pub struct Allowlist {
    /// Entries in file order.
    pub entries: Vec<AllowEntry>,
}

impl Allowlist {
    /// Loads `path`; a missing file is an empty list.
    ///
    /// # Errors
    ///
    /// I/O errors reading an existing file.
    pub fn load(path: &Path) -> Result<Self, std::io::Error> {
        let text = if path.is_file() {
            fs::read_to_string(path)?
        } else {
            String::new()
        };
        let mut entries = Vec::new();
        for line in text.lines() {
            let line = line.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let (path, pattern) = match line.split_once("::") {
                Some((p, pat)) => (p.trim().to_string(), pat.trim().to_string()),
                None => (line.to_string(), String::new()),
            };
            entries.push(AllowEntry { path, pattern });
        }
        Ok(Allowlist { entries })
    }

    /// Index of the first entry covering this (file, line), if any.
    pub fn matches(&self, rel_path: &str, line: &str) -> Option<usize> {
        self.entries
            .iter()
            .position(|e| e.path == rel_path && (e.pattern.is_empty() || line.contains(&e.pattern)))
    }
}

/// One analyze exception: rule + path + substring + mandatory justification.
#[derive(Debug)]
pub struct AnalyzeAllowEntry {
    /// The rule id the entry waives (`vfs-io`, `wire-cast`, …).
    pub rule: String,
    /// Workspace-relative `/`-separated path.
    pub path: String,
    /// Substring the violating line must contain (empty = any line).
    pub pattern: String,
    /// One-line reason the exception is sound.
    pub justification: String,
}

/// The analyze allowlist plus parse diagnostics.
#[derive(Debug, Default)]
pub struct AnalyzeAllowlist {
    /// Entries in file order.
    pub entries: Vec<AnalyzeAllowEntry>,
    /// Malformed lines (`(line_number, problem)`), reported as findings.
    pub malformed: Vec<(u32, String)>,
}

impl AnalyzeAllowlist {
    /// Loads `path`; a missing file is an empty list.
    ///
    /// # Errors
    ///
    /// I/O errors reading an existing file.
    pub fn load(path: &Path) -> Result<Self, std::io::Error> {
        let text = if path.is_file() {
            fs::read_to_string(path)?
        } else {
            String::new()
        };
        let mut list = AnalyzeAllowlist::default();
        for (idx, line) in text.lines().enumerate() {
            let line = line.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let fields: Vec<&str> = line.split("::").map(str::trim).collect();
            // `::` also appears inside Rust paths in the pattern field, so
            // split from both ends: rule, path, justification are `::`-free.
            if fields.len() < 4 {
                list.malformed.push((
                    idx as u32 + 1,
                    "expected `rule :: path :: substring :: justification`".to_string(),
                ));
                continue;
            }
            let rule = fields[0].to_string();
            let path = fields[1].to_string();
            let justification = fields[fields.len() - 1].to_string();
            let pattern = fields[2..fields.len() - 1].join("::");
            if justification.is_empty() {
                list.malformed
                    .push((idx as u32 + 1, "missing justification".to_string()));
                continue;
            }
            list.entries.push(AnalyzeAllowEntry {
                rule,
                path,
                pattern,
                justification,
            });
        }
        Ok(list)
    }

    /// Index of the first entry waiving `rule` at this (file, line), if any.
    pub fn matches(&self, rule: &str, rel_path: &str, line: &str) -> Option<usize> {
        self.entries.iter().position(|e| {
            e.rule == rule
                && e.path == rel_path
                && (e.pattern.is_empty() || line.contains(&e.pattern))
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(text: &str) -> AnalyzeAllowlist {
        let dir = std::env::temp_dir().join(format!("xtask-allow-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let file = dir.join("analyze-allow.txt");
        std::fs::write(&file, text).unwrap();
        let list = AnalyzeAllowlist::load(&file).unwrap();
        std::fs::remove_file(&file).unwrap();
        list
    }

    #[test]
    fn four_fields_parse_and_match() {
        let list = parse("vfs-io :: crates/a/src/lib.rs :: std::fs::rename :: output staging\n");
        assert_eq!(list.entries.len(), 1);
        assert_eq!(list.entries[0].pattern, "std::fs::rename");
        assert!(list
            .matches(
                "vfs-io",
                "crates/a/src/lib.rs",
                "std::fs::rename(&tmp, path)?"
            )
            .is_some());
        assert!(list
            .matches(
                "wire-cast",
                "crates/a/src/lib.rs",
                "std::fs::rename(&tmp, path)?"
            )
            .is_none());
    }

    #[test]
    fn pattern_may_contain_path_separators() {
        let list = parse("vfs-io :: a.rs :: use std::fs::File :: client-side output\n");
        assert_eq!(list.entries[0].pattern, "use std::fs::File");
        assert_eq!(list.entries[0].justification, "client-side output");
    }

    #[test]
    fn missing_justification_is_malformed() {
        let list = parse("vfs-io :: a.rs :: x ::\nvfs-io :: a.rs\n");
        assert_eq!(list.entries.len(), 0);
        assert_eq!(list.malformed.len(), 2);
    }

    #[test]
    fn comments_and_blanks_ignored() {
        let list = parse("# comment\n\nwire-cast :: b.rs :: as u32 :: bounded upstream\n");
        assert_eq!(list.entries.len(), 1);
        assert!(list.malformed.is_empty());
    }
}
