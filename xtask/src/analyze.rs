//! `cargo xtask analyze` — the invariant-enforcing static-analysis wall.
//!
//! Orchestrates the rule families in [`crate::rules`] over the lexed
//! workspace, applies the `xtask/analyze-allow.txt` allowlist (with stale-
//! and malformed-entry detection), and emits either the human report or the
//! deterministic `--json` report. Exit codes: 0 clean, 1 findings, 2
//! usage/I/O errors.

use std::path::Path;

use crate::allow::AnalyzeAllowlist;
use crate::findings::{Finding, Report, Severity};
use crate::rules;
use crate::workspace::Workspace;

const ALLOW_FILE: &str = "xtask/analyze-allow.txt";

/// Runs the analysis over `root`. Returns the process exit code.
pub fn run(root: &Path, json: bool) -> u8 {
    let allowlist = match AnalyzeAllowlist::load(&root.join("xtask").join("analyze-allow.txt")) {
        Ok(list) => list,
        Err(e) => {
            eprintln!("xtask: cannot read {ALLOW_FILE}: {e}");
            return 2;
        }
    };
    let ws = Workspace::collect(root);
    if !ws.unreadable.is_empty() {
        for u in &ws.unreadable {
            eprintln!("xtask: {u}");
        }
        return 2;
    }

    let report = analyze(&ws, &allowlist);
    if json {
        print!("{}", report.to_json());
    } else {
        print!("{}", report.to_text());
    }
    u8::from(!report.clean())
}

/// Runs every rule family and folds in the allowlist. Exposed for tests.
pub fn analyze(ws: &Workspace, allowlist: &AnalyzeAllowlist) -> Report {
    let mut raw: Vec<Finding> = Vec::new();
    raw.extend(rules::vfs::scan(ws));
    raw.extend(rules::locks::scan(ws));
    raw.extend(rules::wire::scan(ws));
    raw.extend(rules::net::scan(ws));
    raw.extend(rules::panic::scan(ws));

    let mut allow_hits = vec![false; allowlist.entries.len()];
    let mut findings: Vec<Finding> = Vec::new();
    for f in raw {
        let line_text = ws
            .files
            .iter()
            .find(|sf| sf.rel == f.file)
            .map(|sf| sf.line_text(f.line))
            .unwrap_or("");
        match allowlist.matches(f.rule, &f.file, line_text) {
            Some(idx) => allow_hits[idx] = true,
            None => findings.push(f),
        }
    }

    for (i, entry) in allowlist.entries.iter().enumerate() {
        if !allow_hits[i] {
            findings.push(Finding {
                rule: "allowlist-stale",
                severity: Severity::Low,
                file: ALLOW_FILE.to_string(),
                line: 0,
                message: format!(
                    "stale entry `{} :: {} :: {}` matches nothing",
                    entry.rule, entry.path, entry.pattern
                ),
            });
        }
    }
    for (line, problem) in &allowlist.malformed {
        findings.push(Finding {
            rule: "allowlist-malformed",
            severity: Severity::Low,
            file: ALLOW_FILE.to_string(),
            line: *line,
            message: problem.clone(),
        });
    }

    let mut report = Report {
        files: ws.files.len(),
        findings,
    };
    report.sort();
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::SourceFile;
    use std::path::PathBuf;

    fn ws_of(files: Vec<(&str, &str)>) -> Workspace {
        Workspace {
            root: PathBuf::new(),
            files: files
                .into_iter()
                .map(|(rel, src)| SourceFile::parse(rel, src))
                .collect(),
            crate_roots: vec![],
            unreadable: vec![],
        }
    }

    fn allow(text: &str) -> AnalyzeAllowlist {
        let dir = std::env::temp_dir().join(format!("xtask-analyze-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let file = dir.join("aa.txt");
        std::fs::write(&file, text).unwrap();
        AnalyzeAllowlist::load(&file).unwrap()
    }

    #[test]
    fn allowlisted_finding_is_waived_and_entry_counts_as_used() {
        let ws = ws_of(vec![(
            "crates/core/src/lib.rs",
            "fn f() { std::fs::write(\"x\", b\"\").ok(); }\n",
        )]);
        let list = allow("vfs-io :: crates/core/src/lib.rs :: std::fs::write :: scratch output\n");
        let report = analyze(&ws, &list);
        assert!(report.clean(), "{:?}", report.findings);
    }

    #[test]
    fn stale_entry_is_a_finding() {
        let ws = ws_of(vec![("crates/core/src/lib.rs", "fn f() {}\n")]);
        let list = allow("vfs-io :: crates/core/src/lib.rs :: std::fs::write :: gone\n");
        let report = analyze(&ws, &list);
        assert_eq!(report.findings.len(), 1);
        assert_eq!(report.findings[0].rule, "allowlist-stale");
    }

    #[test]
    fn malformed_entry_is_a_finding() {
        let ws = ws_of(vec![]);
        let list = allow("vfs-io :: crates/core/src/lib.rs :: no justification\n");
        let report = analyze(&ws, &list);
        assert_eq!(report.findings.len(), 1);
        assert_eq!(report.findings[0].rule, "allowlist-malformed");
    }

    #[test]
    fn findings_from_all_families_aggregate_sorted() {
        let ws = ws_of(vec![
            (
                "crates/proto/src/wire.rs",
                "fn f(s: &str) -> u32 { s.len() as u32 }\n",
            ),
            (
                "crates/core/src/lib.rs",
                "fn g() { std::fs::read(\"x\").ok(); }\nfn h() { todo!() }\n",
            ),
        ]);
        let report = analyze(&ws, &AnalyzeAllowlist::default());
        let rules: Vec<&str> = report.findings.iter().map(|f| f.rule).collect();
        assert_eq!(rules, ["vfs-io", "panic-marker", "wire-cast"]);
    }
}
