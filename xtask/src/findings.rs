//! Finding taxonomy and the deterministic report formats for
//! `cargo xtask analyze`.

use std::fmt::Write as _;

/// How serious a finding is. Severity is taxonomy, not policy: *every*
/// finding fails the analysis (exit 1); severity tells a reader which to
/// fix first and feeds the JSON report.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    /// Violates a paid-for system guarantee (crash atomicity, deadlock
    /// freedom, allocation-bounded decoding).
    High,
    /// Erodes a guarantee or its diagnosability (poison-punting, silent
    /// length truncation).
    Medium,
    /// Hygiene: debug leftovers, stale allowlist entries.
    Low,
}

impl Severity {
    /// Lower-case label used in both report formats.
    pub fn label(self) -> &'static str {
        match self {
            Severity::High => "high",
            Severity::Medium => "medium",
            Severity::Low => "low",
        }
    }
}

/// One rule violation at a source location.
#[derive(Debug, Clone)]
pub struct Finding {
    /// Stable rule identifier (`vfs-io`, `lock-cycle`, `lock-poison`,
    /// `wire-cast`, `wire-alloc`, `panic-marker`, `allowlist-stale`).
    pub rule: &'static str,
    /// Severity class.
    pub severity: Severity,
    /// Workspace-relative `/`-separated file path.
    pub file: String,
    /// 1-based line (0 for file- or list-level findings).
    pub line: u32,
    /// Human-readable explanation, deterministic (derived from source only).
    pub message: String,
}

/// The complete result of one analysis run.
#[derive(Debug)]
pub struct Report {
    /// How many library files were scanned.
    pub files: usize,
    /// All findings, sorted by [`Report::sort`]'s key.
    pub findings: Vec<Finding>,
}

impl Report {
    /// Sorts findings deterministically: file, then line, then rule, then
    /// message. Both output formats and the tests rely on this order.
    pub fn sort(&mut self) {
        self.findings.sort_by(|a, b| {
            (&a.file, a.line, a.rule, &a.message).cmp(&(&b.file, b.line, b.rule, &b.message))
        });
    }

    /// Whether the tree is clean.
    pub fn clean(&self) -> bool {
        self.findings.is_empty()
    }

    /// The human-readable report: one line per finding plus a summary line.
    pub fn to_text(&self) -> String {
        let mut out = String::new();
        for f in &self.findings {
            if f.line == 0 {
                let _ = writeln!(
                    out,
                    "{}: [{}/{}] {}",
                    f.file,
                    f.rule,
                    f.severity.label(),
                    f.message
                );
            } else {
                let _ = writeln!(
                    out,
                    "{}:{}: [{}/{}] {}",
                    f.file,
                    f.line,
                    f.rule,
                    f.severity.label(),
                    f.message
                );
            }
        }
        let _ = writeln!(
            out,
            "xtask analyze: {} finding(s) across {} file(s)",
            self.findings.len(),
            self.files
        );
        out
    }

    /// The machine-readable report: one line of JSON with a fixed key order
    /// and no timestamps, pinned byte-for-byte by tests (same discipline as
    /// the proto JSON serializer).
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(128 + self.findings.len() * 96);
        let _ = write!(
            out,
            "{{\"tool\":\"xtask-analyze\",\"schema\":1,\"clean\":{},\"files\":{},\"findings\":[",
            self.clean(),
            self.files
        );
        for (i, f) in self.findings.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("{\"rule\":");
            json_string(&mut out, f.rule);
            out.push_str(",\"severity\":");
            json_string(&mut out, f.severity.label());
            out.push_str(",\"file\":");
            json_string(&mut out, &f.file);
            let _ = write!(out, ",\"line\":{},\"message\":", f.line);
            json_string(&mut out, &f.message);
            out.push('}');
        }
        out.push_str("]}");
        out.push('\n');
        out
    }
}

/// Escapes `s` into `out` as a JSON string literal.
fn json_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;

    fn finding(rule: &'static str, file: &str, line: u32) -> Finding {
        Finding {
            rule,
            severity: Severity::High,
            file: file.into(),
            line,
            message: format!("m {file}:{line}"),
        }
    }

    #[test]
    fn sort_is_total_and_stable() {
        let mut r = Report {
            files: 2,
            findings: vec![
                finding("b", "z.rs", 3),
                finding("a", "a.rs", 9),
                finding("a", "z.rs", 3),
            ],
        };
        r.sort();
        let order: Vec<_> = r
            .findings
            .iter()
            .map(|f| (f.file.clone(), f.line, f.rule))
            .collect();
        assert_eq!(
            order,
            vec![
                ("a.rs".to_string(), 9, "a"),
                ("z.rs".to_string(), 3, "a"),
                ("z.rs".to_string(), 3, "b"),
            ]
        );
    }

    #[test]
    fn json_is_deterministic_and_escaped() {
        let mut r = Report {
            files: 1,
            findings: vec![Finding {
                rule: "panic-marker",
                severity: Severity::Low,
                file: "crates/x/src/lib.rs".into(),
                line: 7,
                message: "forbidden `dbg!` with \"quotes\"".into(),
            }],
        };
        r.sort();
        assert_eq!(
            r.to_json(),
            "{\"tool\":\"xtask-analyze\",\"schema\":1,\"clean\":false,\"files\":1,\"findings\":[{\"rule\":\"panic-marker\",\"severity\":\"low\",\"file\":\"crates/x/src/lib.rs\",\"line\":7,\"message\":\"forbidden `dbg!` with \\\"quotes\\\"\"}]}\n"
        );
    }

    #[test]
    fn clean_json_shape() {
        let r = Report {
            files: 4,
            findings: vec![],
        };
        assert_eq!(
            r.to_json(),
            "{\"tool\":\"xtask-analyze\",\"schema\":1,\"clean\":true,\"files\":4,\"findings\":[]}\n"
        );
    }
}
