//! A small hand-rolled Rust lexer for the static-analysis tasks.
//!
//! The previous lint wall scanned lines with substring heuristics, which
//! cannot tell a token from the inside of a string literal or a block
//! comment, and tracked `#[cfg(test)]` scope by indentation luck. This
//! module tokenizes real Rust source — line and *nested* block comments,
//! plain/raw/byte string literals, char literals vs lifetimes — and then
//! computes two structural overlays on the token stream:
//!
//! * a **test mask**: which tokens belong to `#[cfg(test)]` / `#[test]`
//!   items (attribute-aware, `cfg(not(test))` is correctly *not* test), and
//! * **function spans**: the token range of every `fn` body, used by rules
//!   that reason about what happens "within one function" (lock nesting,
//!   visible bound checks before an allocation).
//!
//! The lexer is deliberately not a full Rust parser: it does not build an
//! AST and it does not resolve types. Every rule built on it is therefore
//! heuristic — but the heuristics operate on *tokens*, so strings, comments
//! and test scope can no longer produce the false positives and negatives
//! the line scanner suffered.

/// What kind of lexeme a token is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword (`fn`, `as`, `unwrap`, …).
    Ident,
    /// Punctuation; multi-char `::` is a single token, all else one char.
    Punct,
    /// String literal of any flavor (plain, raw, byte, raw-byte).
    Str,
    /// Char literal (`'a'`, `'\n'`).
    Char,
    /// Lifetime (`'a`) — distinct from char literals.
    Lifetime,
    /// Numeric literal.
    Num,
}

/// One lexed token with its 1-based source line.
#[derive(Debug, Clone)]
pub struct Tok {
    /// Lexeme class.
    pub kind: TokKind,
    /// The token text; for strings this is the *raw source slice* (quotes
    /// and all) so rules never mistake literal content for code.
    pub text: String,
    /// 1-based line the token starts on.
    pub line: u32,
}

impl Tok {
    /// True when this token is the identifier `s`.
    pub fn is_ident(&self, s: &str) -> bool {
        self.kind == TokKind::Ident && self.text == s
    }

    /// True when this token is the punctuation `s`.
    pub fn is_punct(&self, s: &str) -> bool {
        self.kind == TokKind::Punct && self.text == s
    }
}

/// The token range of one `fn` body, including nested items.
#[derive(Debug, Clone)]
pub struct FnSpan {
    /// The function's name.
    pub name: String,
    /// Index of the token *after* the opening `{` of the body.
    pub body_start: usize,
    /// Index of the matching closing `}`.
    pub body_end: usize,
}

/// A lexed source file plus the structural overlays rules consume.
#[derive(Debug)]
pub struct SourceFile {
    /// Workspace-relative path, `/`-separated.
    pub rel: String,
    /// The raw source lines (for finding messages and allowlist matching).
    pub lines: Vec<String>,
    /// The token stream.
    pub toks: Vec<Tok>,
    /// `test_mask[i]` is true when token `i` is inside a test-scoped item.
    pub test_mask: Vec<bool>,
    /// Every function body span found outside test scope.
    pub fns: Vec<FnSpan>,
}

impl SourceFile {
    /// Lexes `source` into tokens and computes the overlays.
    pub fn parse(rel: &str, source: &str) -> SourceFile {
        let toks = lex(source);
        let test_mask = test_mask(&toks);
        let fns = fn_spans(&toks, &test_mask);
        SourceFile {
            rel: rel.to_string(),
            lines: source.lines().map(str::to_string).collect(),
            toks,
            test_mask,
            fns,
        }
    }

    /// The trimmed text of 1-based line `line`, or `""` when out of range.
    pub fn line_text(&self, line: u32) -> &str {
        self.lines
            .get(line as usize - 1)
            .map(|s| s.trim())
            .unwrap_or("")
    }
}

/// Tokenizes Rust source. Comments vanish; everything else becomes a [`Tok`].
pub fn lex(source: &str) -> Vec<Tok> {
    let chars: Vec<char> = source.chars().collect();
    let mut toks = Vec::new();
    let mut i = 0usize;
    let mut line = 1u32;
    let n = chars.len();

    // Advances `line` for every newline in chars[from..to].
    let count_newlines = |chars: &[char], from: usize, to: usize| -> u32 {
        chars[from..to].iter().filter(|&&c| c == '\n').count() as u32
    };

    while i < n {
        let c = chars[i];
        match c {
            '\n' => {
                line += 1;
                i += 1;
            }
            c if c.is_whitespace() => i += 1,
            // Line comment (incl. doc comments) — skip to end of line.
            '/' if chars.get(i + 1) == Some(&'/') => {
                while i < n && chars[i] != '\n' {
                    i += 1;
                }
            }
            // Block comment — nested, newline-aware.
            '/' if chars.get(i + 1) == Some(&'*') => {
                let start = i;
                i += 2;
                let mut depth = 1u32;
                while i < n && depth > 0 {
                    if chars[i] == '/' && chars.get(i + 1) == Some(&'*') {
                        depth += 1;
                        i += 2;
                    } else if chars[i] == '*' && chars.get(i + 1) == Some(&'/') {
                        depth -= 1;
                        i += 2;
                    } else {
                        i += 1;
                    }
                }
                line += count_newlines(&chars, start, i);
            }
            '"' => {
                let (end, nl) = scan_string(&chars, i);
                toks.push(Tok {
                    kind: TokKind::Str,
                    text: chars[i..end].iter().collect(),
                    line,
                });
                line += nl;
                i = end;
            }
            '\'' => {
                // Char literal or lifetime: `'a'` is a char, `'a` (an ident
                // run not terminated by a quote) is a lifetime.
                let is_lifetime = match chars.get(i + 1) {
                    Some(&c1) if is_ident_start(c1) => {
                        let mut j = i + 1;
                        while j < n && is_ident_continue(chars[j]) {
                            j += 1;
                        }
                        chars.get(j) != Some(&'\'')
                    }
                    _ => false,
                };
                if is_lifetime {
                    let mut j = i + 1;
                    while j < n && is_ident_continue(chars[j]) {
                        j += 1;
                    }
                    toks.push(Tok {
                        kind: TokKind::Lifetime,
                        text: chars[i..j].iter().collect(),
                        line,
                    });
                    i = j;
                } else {
                    let end = scan_char(&chars, i);
                    toks.push(Tok {
                        kind: TokKind::Char,
                        text: chars[i..end].iter().collect(),
                        line,
                    });
                    i = end;
                }
            }
            c if c.is_ascii_digit() => {
                let mut j = i + 1;
                while j < n && (is_ident_continue(chars[j]) || chars[j] == '.') {
                    // Stop a range expression `0..x` from being eaten.
                    if chars[j] == '.' && chars.get(j + 1) == Some(&'.') {
                        break;
                    }
                    j += 1;
                }
                toks.push(Tok {
                    kind: TokKind::Num,
                    text: chars[i..j].iter().collect(),
                    line,
                });
                i = j;
            }
            c if is_ident_start(c) => {
                let mut j = i + 1;
                while j < n && is_ident_continue(chars[j]) {
                    j += 1;
                }
                let word: String = chars[i..j].iter().collect();
                // Raw / byte string prefixes: r"", r#""#, b"", br#""#, and
                // raw identifiers r#name.
                let next = chars.get(j);
                let prefix_is_stringish = matches!(word.as_str(), "r" | "b" | "br" | "rb");
                if prefix_is_stringish && (next == Some(&'"') || next == Some(&'#')) {
                    if next == Some(&'#') && word == "r" {
                        // `r#…`: raw string only if hashes lead to a quote;
                        // otherwise it is a raw identifier (`r#type`).
                        let mut k = j;
                        while k < n && chars[k] == '#' {
                            k += 1;
                        }
                        if chars.get(k) != Some(&'"') {
                            let mut m = k;
                            while m < n && is_ident_continue(chars[m]) {
                                m += 1;
                            }
                            toks.push(Tok {
                                kind: TokKind::Ident,
                                text: chars[k..m].iter().collect(),
                                line,
                            });
                            i = m;
                            continue;
                        }
                    }
                    let (end, nl) = scan_raw_or_plain_string(&chars, i, j);
                    toks.push(Tok {
                        kind: TokKind::Str,
                        text: chars[i..end].iter().collect(),
                        line,
                    });
                    line += nl;
                    i = end;
                } else {
                    toks.push(Tok {
                        kind: TokKind::Ident,
                        text: word,
                        line,
                    });
                    i = j;
                }
            }
            ':' if chars.get(i + 1) == Some(&':') => {
                toks.push(Tok {
                    kind: TokKind::Punct,
                    text: "::".to_string(),
                    line,
                });
                i += 2;
            }
            _ => {
                toks.push(Tok {
                    kind: TokKind::Punct,
                    text: c.to_string(),
                    line,
                });
                i += 1;
            }
        }
    }
    toks
}

fn is_ident_start(c: char) -> bool {
    c.is_alphabetic() || c == '_'
}

fn is_ident_continue(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

/// Scans a char literal starting at the `'` at `start`; returns the index
/// just past the closing `'`.
fn scan_char(chars: &[char], start: usize) -> usize {
    let mut i = start + 1;
    while i < chars.len() {
        match chars[i] {
            '\\' => i += 2,
            '\'' => return i + 1,
            _ => i += 1,
        }
    }
    chars.len()
}

/// Scans a plain `"…"` string starting at `start`; returns (end, newlines).
fn scan_string(chars: &[char], start: usize) -> (usize, u32) {
    let mut i = start + 1;
    let mut nl = 0u32;
    while i < chars.len() {
        match chars[i] {
            '\\' => {
                // An escaped newline (line-continuation) is still a newline
                // for line accounting.
                if chars.get(i + 1) == Some(&'\n') {
                    nl += 1;
                }
                i += 2;
            }
            '"' => return (i + 1, nl),
            '\n' => {
                nl += 1;
                i += 1;
            }
            _ => i += 1,
        }
    }
    (chars.len(), nl)
}

/// Scans a string whose prefix (`r`, `b`, `br`, …) ends at `after_prefix`.
/// Raw flavors count `#`s and run to `"` + that many `#`s, no escapes.
fn scan_raw_or_plain_string(chars: &[char], _start: usize, after_prefix: usize) -> (usize, u32) {
    let n = chars.len();
    let mut i = after_prefix;
    let mut hashes = 0usize;
    while i < n && chars[i] == '#' {
        hashes += 1;
        i += 1;
    }
    if chars.get(i) != Some(&'"') {
        return (i, 0); // malformed; bail without looping forever
    }
    if hashes == 0 && !raw_prefix(chars, after_prefix) {
        // b"…" — escapes apply.
        let (end, nl) = scan_string(chars, i);
        return (end, nl);
    }
    // Raw string: find `"` followed by `hashes` hashes.
    i += 1;
    let mut nl = 0u32;
    while i < n {
        if chars[i] == '\n' {
            nl += 1;
        }
        if chars[i] == '"' {
            let mut j = i + 1;
            let mut seen = 0usize;
            while j < n && seen < hashes && chars[j] == '#' {
                seen += 1;
                j += 1;
            }
            if seen == hashes {
                return (j, nl);
            }
        }
        i += 1;
    }
    (n, nl)
}

/// Whether the string prefix ending at `after_prefix` contains `r`.
fn raw_prefix(chars: &[char], after_prefix: usize) -> bool {
    // Look back at most 2 chars for an `r`.
    (1..=2).any(|k| after_prefix >= k && chars[after_prefix - k] == 'r')
}

/// True when the attribute token slice (the tokens between `[` and `]`)
/// marks a test item: `#[test]`, `#[cfg(test)]`, `#[cfg(any(test, …))]`.
/// `test` under `not(…)` does not count, so `#[cfg(not(test))]` is code.
fn attr_is_test(attr: &[Tok]) -> bool {
    match attr.first() {
        Some(t) if t.is_ident("test") => true,
        Some(t) if t.is_ident("cfg") => {
            let mut not_depth = 0usize;
            let mut paren_stack: Vec<bool> = Vec::new(); // true = a not(..) paren
            let mut k = 1;
            while k < attr.len() {
                let tok = &attr[k];
                if tok.is_ident("not") && attr.get(k + 1).is_some_and(|t| t.is_punct("(")) {
                    paren_stack.push(true);
                    not_depth += 1;
                    k += 2;
                    continue;
                }
                if tok.is_punct("(") {
                    paren_stack.push(false);
                } else if tok.is_punct(")") {
                    if paren_stack.pop() == Some(true) {
                        not_depth -= 1;
                    }
                } else if tok.is_ident("test") && not_depth == 0 {
                    return true;
                }
                k += 1;
            }
            false
        }
        _ => false,
    }
}

/// Computes the per-token test mask: tokens belonging to `#[cfg(test)]` /
/// `#[test]` items (the attribute itself, any stacked attributes, and the
/// item through its closing `}` or `;`).
fn test_mask(toks: &[Tok]) -> Vec<bool> {
    let mut mask = vec![false; toks.len()];
    let mut i = 0usize;
    while i < toks.len() {
        // A `mod tests { … }` block is test scope by convention even when
        // the `#[cfg(test)]` attribute was forgotten.
        if toks[i].is_ident("mod") && toks.get(i + 1).is_some_and(|t| t.is_ident("tests")) {
            if let Some(open) = toks.get(i + 2).filter(|t| t.is_punct("{")).map(|_| i + 2) {
                let end = match_brace(toks, open);
                for m in mask.iter_mut().take(end).skip(i) {
                    *m = true;
                }
                i = end;
                continue;
            }
        }
        if !toks[i].is_punct("#") || !toks.get(i + 1).is_some_and(|t| t.is_punct("[")) {
            i += 1;
            continue;
        }
        // Parse the attribute's bracket group.
        let attr_start = i;
        let Some((attr_toks, after_attr)) = bracket_group(toks, i + 1) else {
            i += 1;
            continue;
        };
        if !attr_is_test(attr_toks_slice(toks, &attr_toks)) {
            i = after_attr;
            continue;
        }
        // Skip any further stacked attributes.
        let mut j = after_attr;
        while j < toks.len()
            && toks[j].is_punct("#")
            && toks.get(j + 1).is_some_and(|t| t.is_punct("["))
        {
            match bracket_group(toks, j + 1) {
                Some((_, after)) => j = after,
                None => break,
            }
        }
        // Consume the item: to the matching `}` of its first `{`, or to a
        // terminating `;` when no body appears first (`mod tests;`).
        let mut k = j;
        let mut end = toks.len();
        while k < toks.len() {
            if toks[k].is_punct("{") {
                end = match_brace(toks, k);
                break;
            }
            if toks[k].is_punct(";") {
                end = k + 1;
                break;
            }
            k += 1;
        }
        for m in mask.iter_mut().take(end.min(toks.len())).skip(attr_start) {
            *m = true;
        }
        i = end.min(toks.len());
    }
    mask
}

/// Returns the (start, end) token range inside a `[...]` group whose `[` is
/// at `open`, plus the index just past the closing `]`.
fn bracket_group(toks: &[Tok], open: usize) -> Option<((usize, usize), usize)> {
    if !toks.get(open)?.is_punct("[") {
        return None;
    }
    let mut depth = 0i64;
    for (k, t) in toks.iter().enumerate().skip(open) {
        if t.is_punct("[") {
            depth += 1;
        } else if t.is_punct("]") {
            depth -= 1;
            if depth == 0 {
                return Some(((open + 1, k), k + 1));
            }
        }
    }
    None
}

fn attr_toks_slice<'t>(toks: &'t [Tok], range: &(usize, usize)) -> &'t [Tok] {
    &toks[range.0..range.1]
}

/// Index just past the `)` matching the `(` at `open` (or `toks.len()`).
/// Returns `open` itself when the token there is not a `(`.
pub fn match_paren(toks: &[Tok], open: usize) -> usize {
    if !toks.get(open).is_some_and(|t| t.is_punct("(")) {
        return open;
    }
    let mut depth = 0i64;
    for (k, t) in toks.iter().enumerate().skip(open) {
        if t.is_punct("(") {
            depth += 1;
        } else if t.is_punct(")") {
            depth -= 1;
            if depth == 0 {
                return k + 1;
            }
        }
    }
    toks.len()
}

/// Index just past the `}` matching the `{` at `open` (or `toks.len()`).
fn match_brace(toks: &[Tok], open: usize) -> usize {
    let mut depth = 0i64;
    for (k, t) in toks.iter().enumerate().skip(open) {
        if t.is_punct("{") {
            depth += 1;
        } else if t.is_punct("}") {
            depth -= 1;
            if depth == 0 {
                return k + 1;
            }
        }
    }
    toks.len()
}

/// Collects the body span of every `fn` outside test scope. Nested functions
/// produce nested spans; rules treat each span independently.
fn fn_spans(toks: &[Tok], mask: &[bool]) -> Vec<FnSpan> {
    let mut spans = Vec::new();
    let mut i = 0usize;
    while i < toks.len() {
        if mask[i] || !toks[i].is_ident("fn") {
            i += 1;
            continue;
        }
        let Some(name_tok) = toks.get(i + 1) else {
            break;
        };
        if name_tok.kind != TokKind::Ident {
            i += 1;
            continue;
        }
        // Scan to the body `{` or a `;` (trait method declaration).
        let mut k = i + 2;
        let mut found = None;
        while k < toks.len() {
            if toks[k].is_punct("{") {
                found = Some(k);
                break;
            }
            if toks[k].is_punct(";") {
                break;
            }
            k += 1;
        }
        if let Some(open) = found {
            let end = match_brace(toks, open);
            spans.push(FnSpan {
                name: name_tok.text.clone(),
                body_start: open + 1,
                body_end: end.saturating_sub(1),
            });
        }
        i += 1;
    }
    spans
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        lex(src)
            .into_iter()
            .filter(|t| t.kind == TokKind::Ident)
            .map(|t| t.text)
            .collect()
    }

    #[test]
    fn strings_hide_their_content() {
        let toks = lex("let s = \"x.unwrap() { } std::fs\"; done();");
        assert!(toks
            .iter()
            .all(|t| t.kind != TokKind::Ident || t.text != "unwrap"));
        assert!(toks.iter().any(|t| t.is_ident("done")));
    }

    #[test]
    fn raw_strings_with_hashes() {
        let src = r####"let s = r#"quote " inside .unwrap()"#; after();"####;
        let toks = lex(src);
        assert!(toks.iter().any(|t| t.is_ident("after")));
        assert!(!toks.iter().any(|t| t.is_ident("unwrap")));
        let s = toks.iter().find(|t| t.kind == TokKind::Str).expect("str");
        assert!(s.text.starts_with("r#\"") && s.text.ends_with("\"#"));
    }

    #[test]
    fn raw_identifiers_are_idents_not_strings() {
        let toks = lex("fn r#type() {}");
        assert!(toks.iter().any(|t| t.is_ident("type")));
    }

    #[test]
    fn byte_and_raw_byte_strings() {
        let toks = lex(r##"let a = b"ab\"cd"; let b = br#"e"f"#; tail();"##);
        assert_eq!(toks.iter().filter(|t| t.kind == TokKind::Str).count(), 2);
        assert!(toks.iter().any(|t| t.is_ident("tail")));
    }

    #[test]
    fn nested_block_comments_skip_cleanly() {
        let toks = lex("a(); /* outer /* inner .unwrap() */ still comment */ b();");
        let names = toks
            .iter()
            .filter(|t| t.kind == TokKind::Ident)
            .map(|t| t.text.as_str())
            .collect::<Vec<_>>();
        assert_eq!(names, ["a", "b"]);
    }

    #[test]
    fn line_numbers_survive_multiline_constructs() {
        let toks = lex("one\n/* c\nc */\n\"s\ns\"\nlast");
        let last = toks.iter().find(|t| t.is_ident("last")).expect("last");
        assert_eq!(last.line, 6);
    }

    #[test]
    fn escaped_newline_in_string_still_counts_a_line() {
        let toks = lex("let s = \"a\\\n b\";\nlast");
        let last = toks.iter().find(|t| t.is_ident("last")).expect("last");
        assert_eq!(last.line, 3);
    }

    #[test]
    fn lifetimes_vs_char_literals() {
        let toks = lex("fn f<'a>(x: &'a str) { let c = 'x'; let esc = '\\n'; }");
        assert_eq!(
            toks.iter().filter(|t| t.kind == TokKind::Lifetime).count(),
            2
        );
        assert_eq!(toks.iter().filter(|t| t.kind == TokKind::Char).count(), 2);
    }

    #[test]
    fn char_brace_literal_is_not_a_brace() {
        let sf = SourceFile::parse(
            "x.rs",
            "#[cfg(test)]\nmod t { let c = '{'; }\nfn after() { live(); }",
        );
        let live = sf
            .toks
            .iter()
            .position(|t| t.is_ident("live"))
            .expect("live");
        assert!(!sf.test_mask[live]);
    }

    #[test]
    fn cfg_test_mod_masks_its_body_and_nothing_else() {
        let src = "fn a() { before(); }\n#[cfg(test)]\nmod tests {\n  fn b() { x.unwrap(); }\n}\nfn c() { after(); }\n";
        let sf = SourceFile::parse("x.rs", src);
        let pos = |name: &str| sf.toks.iter().position(|t| t.is_ident(name)).expect(name);
        assert!(!sf.test_mask[pos("before")]);
        assert!(sf.test_mask[pos("unwrap")]);
        assert!(!sf.test_mask[pos("after")]);
    }

    #[test]
    fn cfg_not_test_is_not_test_scope() {
        let src = "#[cfg(not(test))]\nfn live() { x.unwrap(); }\n";
        let sf = SourceFile::parse("x.rs", src);
        let pos = sf
            .toks
            .iter()
            .position(|t| t.is_ident("unwrap"))
            .expect("unwrap");
        assert!(!sf.test_mask[pos], "cfg(not(test)) must stay live code");
    }

    #[test]
    fn cfg_any_with_test_is_test_scope() {
        let src = "#[cfg(any(test, feature = \"x\"))]\nfn t() { x.unwrap(); }\n";
        let sf = SourceFile::parse("x.rs", src);
        let pos = sf
            .toks
            .iter()
            .position(|t| t.is_ident("unwrap"))
            .expect("unwrap");
        assert!(sf.test_mask[pos]);
    }

    #[test]
    fn stacked_attributes_after_test_are_masked() {
        let src = "#[test]\n#[should_panic]\nfn t() { boom(); }\nfn keep() { live(); }\n";
        let sf = SourceFile::parse("x.rs", src);
        let boom = sf
            .toks
            .iter()
            .position(|t| t.is_ident("boom"))
            .expect("boom");
        let live = sf
            .toks
            .iter()
            .position(|t| t.is_ident("live"))
            .expect("live");
        assert!(sf.test_mask[boom]);
        assert!(!sf.test_mask[live]);
    }

    #[test]
    fn bare_mod_tests_block_is_test_scope() {
        let src = "mod tests { fn t() { x.unwrap(); } }\nfn live() { go(); }\n";
        let sf = SourceFile::parse("x.rs", src);
        let unwrap = sf
            .toks
            .iter()
            .position(|t| t.is_ident("unwrap"))
            .expect("unwrap");
        let go = sf.toks.iter().position(|t| t.is_ident("go")).expect("go");
        assert!(sf.test_mask[unwrap]);
        assert!(!sf.test_mask[go]);
    }

    #[test]
    fn mod_tests_semicolon_form() {
        let src = "#[cfg(test)]\nmod tests;\nfn live() { go(); }\n";
        let sf = SourceFile::parse("x.rs", src);
        let go = sf.toks.iter().position(|t| t.is_ident("go")).expect("go");
        assert!(!sf.test_mask[go]);
    }

    #[test]
    fn fn_spans_cover_bodies() {
        let src = "fn a() { one(); }\nfn b() { two(); inner(); }\n";
        let sf = SourceFile::parse("x.rs", src);
        assert_eq!(sf.fns.len(), 2);
        assert_eq!(sf.fns[0].name, "a");
        let body: Vec<_> = sf.toks[sf.fns[1].body_start..sf.fns[1].body_end]
            .iter()
            .filter(|t| t.kind == TokKind::Ident)
            .map(|t| t.text.as_str())
            .collect();
        assert_eq!(body, ["two", "inner"]);
    }

    #[test]
    fn test_fns_have_no_spans() {
        let src = "#[test]\nfn t() { x(); }\nfn live() { y(); }\n";
        let sf = SourceFile::parse("x.rs", src);
        assert_eq!(sf.fns.len(), 1);
        assert_eq!(sf.fns[0].name, "live");
    }

    #[test]
    fn double_colon_is_one_token() {
        let toks = lex("std::fs::read(x)");
        assert!(toks.iter().any(|t| t.is_punct("::")));
        assert_eq!(idents("std::fs::read"), ["std", "fs", "read"]);
    }

    #[test]
    fn numbers_do_not_eat_ranges() {
        assert_eq!(
            idents("for i in 0..n { f(i) }"),
            ["for", "i", "in", "n", "f", "i"]
        );
    }
}
