//! Workspace automation tasks, invoked as `cargo xtask <task>`.
//!
//! Two tasks share one engine — a small hand-rolled Rust lexer
//! ([`lexer`]) with comment/string/raw-string handling and
//! `#[cfg(test)]`-scope tracking — so they can never disagree about what
//! is test code:
//!
//! * **`cargo xtask lint`** ([`lint`]) — panic-free library code
//!   (`.unwrap()`, `.expect(`, `panic!`) plus mandatory crate-root
//!   attributes, with the `xtask/lint-allow.txt` allowlist.
//! * **`cargo xtask analyze`** ([`analyze`]) — the invariant-enforcing
//!   static-analysis wall: Vfs I/O discipline, lock discipline
//!   (nested-acquisition cycles, poison-punting), wire safety in
//!   `crates/proto`/`crates/server`, and panic markers
//!   (`todo!`/`unimplemented!`/`dbg!`). Findings carry a severity
//!   taxonomy, a deterministic `--json` mode, and the
//!   `xtask/analyze-allow.txt` allowlist with stale-entry detection.
//!
//! Both tasks exit 0 when clean, 1 with findings, 2 on usage/I/O errors.
//! See `DESIGN.md` §11 for the rule taxonomy and how to add a rule.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod allow;
pub mod analyze;
pub mod findings;
pub mod lexer;
pub mod lint;
pub mod rules;
pub mod workspace;

use std::path::{Path, PathBuf};

/// The `cargo xtask --help` text, listing both tasks.
pub const USAGE: &str = "\
usage: cargo xtask <task>

tasks:
  lint                  panic-free library code + mandatory crate-root
                        attributes (allowlist: xtask/lint-allow.txt)
  analyze [--json] [--root <dir>]
                        static-analysis wall: Vfs I/O discipline, lock
                        discipline, wire safety, panic markers
                        (allowlist: xtask/analyze-allow.txt)
  help                  print this text

exit codes: 0 clean, 1 findings, 2 usage or I/O error
";

/// The workspace root (`xtask`'s parent directory, compiled in).
pub fn workspace_root() -> PathBuf {
    let manifest = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    manifest.parent().map(Path::to_path_buf).unwrap_or(manifest)
}

/// Dispatches a task invocation. Returns the process exit code.
pub fn run(args: &[String]) -> u8 {
    match args.first().map(String::as_str) {
        Some("lint") => lint::run(&workspace_root()),
        Some("analyze") => {
            let mut json = false;
            let mut root: Option<PathBuf> = None;
            let mut rest = args[1..].iter();
            while let Some(arg) = rest.next() {
                match arg.as_str() {
                    "--json" => json = true,
                    "--root" => match rest.next() {
                        Some(dir) => root = Some(PathBuf::from(dir)),
                        None => {
                            eprintln!("xtask: --root requires a directory");
                            return 2;
                        }
                    },
                    other => {
                        eprintln!("xtask: unknown flag `{other}` for analyze");
                        return 2;
                    }
                }
            }
            analyze::run(&root.unwrap_or_else(workspace_root), json)
        }
        Some("help") | Some("--help") | Some("-h") => {
            print!("{USAGE}");
            0
        }
        Some(other) => {
            eprintln!("xtask: unknown task `{other}` (available: lint, analyze, help)");
            2
        }
        None => {
            eprint!("{USAGE}");
            2
        }
    }
}
