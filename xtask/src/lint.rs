//! `cargo xtask lint` — the PR 1 lint wall, now riding the shared lexer.
//!
//! Two checks over every library source in the workspace:
//!
//! 1. **Panic-free library code** — `.unwrap()`, `.expect(` and `panic!`
//!    are forbidden outside `#[cfg(test)]`/`#[test]` scope and `src/bin/`
//!    binaries. Deliberate exceptions live in `xtask/lint-allow.txt`
//!    (`<path> :: <substring>`, one per line); stale entries fail the lint.
//! 2. **Mandatory crate-root attributes** — every `src/lib.rs` must carry
//!    `#![forbid(unsafe_code)]` and `#![warn(missing_docs)]`.
//!
//! Because the token scan and test-scope tracking now come from
//! [`crate::lexer`] — the same engine `analyze` uses — the two tasks cannot
//! disagree about what is test code, and the substring scanner's false
//! classes are gone: tokens inside string literals and block comments are
//! invisible, and `#[cfg(test)]` scope is tracked by real brace matching.

use std::path::Path;

use crate::allow::Allowlist;
use crate::lexer::TokKind;
use crate::workspace::Workspace;

const REQUIRED_CRATE_ATTRS: [&str; 2] = ["#![forbid(unsafe_code)]", "#![warn(missing_docs)]"];

/// Runs the lint over `root`. Returns the process exit code.
pub fn run(root: &Path) -> u8 {
    let allowlist = match Allowlist::load(&root.join("xtask").join("lint-allow.txt")) {
        Ok(list) => list,
        Err(e) => {
            eprintln!("xtask: cannot read allowlist: {e}");
            return 2;
        }
    };

    let ws = Workspace::collect(root);
    let mut violations: Vec<String> = ws.unreadable.clone();
    let mut allow_hits = vec![false; allowlist.entries.len()];

    for sf in &ws.files {
        for (i, t) in sf.toks.iter().enumerate() {
            if sf.test_mask[i] || t.kind != TokKind::Ident {
                continue;
            }
            let name = match t.text.as_str() {
                // `.unwrap()` — exactly the niladic panic form.
                "unwrap"
                    if i >= 1
                        && sf.toks[i - 1].is_punct(".")
                        && sf.toks.get(i + 1).is_some_and(|p| p.is_punct("("))
                        && sf.toks.get(i + 2).is_some_and(|p| p.is_punct(")")) =>
                {
                    "unwrap"
                }
                // `.expect(…)`
                "expect"
                    if i >= 1
                        && sf.toks[i - 1].is_punct(".")
                        && sf.toks.get(i + 1).is_some_and(|p| p.is_punct("(")) =>
                {
                    "expect"
                }
                // `panic!`
                "panic" if sf.toks.get(i + 1).is_some_and(|p| p.is_punct("!")) => "panic",
                _ => continue,
            };
            let line_text = sf.line_text(t.line);
            if let Some(idx) = allowlist.matches(&sf.rel, line_text) {
                allow_hits[idx] = true;
            } else {
                violations.push(format!(
                    "{}:{}: forbidden `{name}` in library code: {line_text}",
                    sf.rel, t.line
                ));
            }
        }
    }

    for (i, entry) in allowlist.entries.iter().enumerate() {
        if !allow_hits[i] {
            violations.push(format!(
                "xtask/lint-allow.txt: stale entry `{} :: {}` matches nothing",
                entry.path, entry.pattern
            ));
        }
    }

    for rel in &ws.crate_roots {
        let Some(sf) = ws.files.iter().find(|f| &f.rel == rel) else {
            continue;
        };
        for attr in REQUIRED_CRATE_ATTRS {
            if !sf.lines.iter().any(|l| l.trim() == attr) {
                violations.push(format!("{rel}: crate root is missing `{attr}`"));
            }
        }
    }

    if violations.is_empty() {
        println!(
            "xtask lint: clean ({} library files, {} crate roots)",
            ws.files.len(),
            ws.crate_roots.len()
        );
        0
    } else {
        violations.sort();
        for v in &violations {
            eprintln!("{v}");
        }
        eprintln!("xtask lint: {} violation(s)", violations.len());
        1
    }
}
