//! Thin binary entry point: all logic lives in the `xtask` library so the
//! lexer, rules, and allowlists are unit-testable.

use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    ExitCode::from(xtask::run(&args))
}
