//! Workspace automation tasks, invoked as `cargo xtask <task>`.
//!
//! The only task today is `lint`: the repo-wide lint wall.
//!
//! # `cargo xtask lint`
//!
//! Two checks over every library source in the workspace (root facade,
//! `crates/*`, and the vendored stand-ins in `vendor/*`):
//!
//! 1. **Panic-free library code** — `.unwrap()`, `.expect(` and `panic!` are
//!    forbidden outside `#[cfg(test)]`/`#[test]` blocks and `src/bin/`
//!    binaries. Deliberate exceptions live in `xtask/lint-allow.txt`, one
//!    per line as `<path> :: <substring>`; stale entries fail the lint so
//!    the list cannot rot.
//! 2. **Mandatory crate-root attributes** — every `src/lib.rs` must carry
//!    `#![forbid(unsafe_code)]` and `#![warn(missing_docs)]`.
//!
//! Exit code 0 when clean, 1 with findings, 2 on usage/I/O errors.

use std::fmt::Write as _;
use std::fs;
use std::path::{Path, PathBuf};
use std::process::ExitCode;

/// Tokens forbidden in non-test library code.
///
/// Assembled at runtime so this file would not trip the scan even if it were
/// in scope (it is not: binaries are exempt).
fn forbidden_tokens() -> [(String, &'static str); 3] {
    [
        (format!(".{}()", "unwrap"), "unwrap"),
        (format!(".{}(", "expect"), "expect"),
        (format!("{}!", "panic"), "panic"),
    ]
}

const REQUIRED_CRATE_ATTRS: [&str; 2] = ["#![forbid(unsafe_code)]", "#![warn(missing_docs)]"];

fn main() -> ExitCode {
    let mut args = std::env::args().skip(1);
    match args.next().as_deref() {
        Some("lint") => run_lint(),
        Some(other) => {
            eprintln!("xtask: unknown task `{other}` (available: lint)");
            ExitCode::from(2)
        }
        None => {
            eprintln!("usage: cargo xtask lint");
            ExitCode::from(2)
        }
    }
}

fn workspace_root() -> PathBuf {
    // xtask lives at <root>/xtask; its manifest dir is compiled in.
    let manifest = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    manifest.parent().map(Path::to_path_buf).unwrap_or(manifest)
}

fn run_lint() -> ExitCode {
    let root = workspace_root();
    let mut violations: Vec<String> = Vec::new();

    let allowlist = match Allowlist::load(&root.join("xtask").join("lint-allow.txt")) {
        Ok(list) => list,
        Err(e) => {
            eprintln!("xtask: cannot read allowlist: {e}");
            return ExitCode::from(2);
        }
    };

    // Library source roots: the facade, the workspace crates, the vendored
    // stand-ins. Binaries (src/bin/) are exempt from the token scan; xtask
    // itself is dev tooling and out of scope.
    let mut lib_files: Vec<PathBuf> = Vec::new();
    let mut crate_roots: Vec<PathBuf> = Vec::new();
    collect_src_dir(
        &root.join("src"),
        &mut lib_files,
        &mut crate_roots,
        &mut violations,
    );
    for family in ["crates", "vendor"] {
        let Ok(entries) = fs::read_dir(root.join(family)) else {
            continue;
        };
        let mut dirs: Vec<PathBuf> = entries
            .filter_map(Result::ok)
            .map(|e| e.path())
            .filter(|p| p.is_dir())
            .collect();
        dirs.sort();
        for dir in dirs {
            collect_src_dir(
                &dir.join("src"),
                &mut lib_files,
                &mut crate_roots,
                &mut violations,
            );
        }
    }

    let tokens = forbidden_tokens();
    let mut allow_hits = vec![false; allowlist.entries.len()];
    for file in &lib_files {
        let rel = relative(&root, file);
        let source = match fs::read_to_string(file) {
            Ok(s) => s,
            Err(e) => {
                violations.push(format!("{rel}: unreadable: {e}"));
                continue;
            }
        };
        for (line_no, line) in non_test_lines(&source) {
            let code = strip_comment(line);
            for (token, name) in &tokens {
                if !code.contains(token.as_str()) {
                    continue;
                }
                if let Some(i) = allowlist.matches(&rel, line) {
                    allow_hits[i] = true;
                } else {
                    violations.push(format!(
                        "{rel}:{line_no}: forbidden `{name}` in library code: {}",
                        line.trim()
                    ));
                }
            }
        }
    }

    for (i, entry) in allowlist.entries.iter().enumerate() {
        if !allow_hits[i] {
            violations.push(format!(
                "xtask/lint-allow.txt: stale entry `{} :: {}` matches nothing",
                entry.path, entry.pattern
            ));
        }
    }

    for root_file in &crate_roots {
        let rel = relative(&root, root_file);
        let source = match fs::read_to_string(root_file) {
            Ok(s) => s,
            Err(e) => {
                violations.push(format!("{rel}: unreadable: {e}"));
                continue;
            }
        };
        for attr in REQUIRED_CRATE_ATTRS {
            if !source.lines().any(|l| l.trim() == attr) {
                violations.push(format!("{rel}: crate root is missing `{attr}`"));
            }
        }
    }

    if violations.is_empty() {
        println!(
            "xtask lint: clean ({} library files, {} crate roots)",
            lib_files.len(),
            crate_roots.len()
        );
        ExitCode::SUCCESS
    } else {
        let mut out = String::new();
        for v in &violations {
            let _ = writeln!(out, "{v}");
        }
        eprint!("{out}");
        eprintln!("xtask lint: {} violation(s)", violations.len());
        ExitCode::from(1)
    }
}

/// Recursively collects `.rs` files under a `src/` dir, skipping `bin/`
/// subtrees, and records `lib.rs` crate roots.
fn collect_src_dir(
    src: &Path,
    files: &mut Vec<PathBuf>,
    crate_roots: &mut Vec<PathBuf>,
    violations: &mut Vec<String>,
) {
    if !src.is_dir() {
        return;
    }
    let lib = src.join("lib.rs");
    if lib.is_file() {
        crate_roots.push(lib);
    }
    let mut stack = vec![src.to_path_buf()];
    while let Some(dir) = stack.pop() {
        let entries = match fs::read_dir(&dir) {
            Ok(e) => e,
            Err(e) => {
                violations.push(format!("{}: unreadable directory: {e}", dir.display()));
                continue;
            }
        };
        let mut paths: Vec<PathBuf> = entries.filter_map(Result::ok).map(|e| e.path()).collect();
        paths.sort();
        for path in paths {
            if path.is_dir() {
                if path.file_name().is_some_and(|n| n == "bin") {
                    continue; // binaries are exempt from the token scan
                }
                stack.push(path);
            } else if path.extension().is_some_and(|x| x == "rs") {
                files.push(path);
            }
        }
    }
}

fn relative(root: &Path, file: &Path) -> String {
    file.strip_prefix(root)
        .unwrap_or(file)
        .components()
        .map(|c| c.as_os_str().to_string_lossy())
        .collect::<Vec<_>>()
        .join("/")
}

/// Yields `(line_number, line)` for lines outside `#[cfg(test)]` / `#[test]`
/// items, tracking brace depth to find where the skipped item ends.
fn non_test_lines(source: &str) -> Vec<(usize, &str)> {
    enum State {
        Code,
        /// Saw a test attribute; the next non-attribute line starts the item.
        Pending,
        /// Inside the test item, `depth` braces deep; `entered` once a `{`
        /// has been seen.
        Skipping {
            depth: i64,
            entered: bool,
        },
    }
    let mut state = State::Code;
    let mut out = Vec::new();
    for (idx, line) in source.lines().enumerate() {
        let trimmed = line.trim_start();
        match state {
            State::Code => {
                if trimmed.starts_with("#[cfg(test)]") || trimmed.starts_with("#[test]") {
                    state = State::Pending;
                } else {
                    out.push((idx + 1, line));
                }
            }
            State::Pending => {
                if trimmed.starts_with("#[") {
                    // Another attribute on the same item; keep waiting.
                } else {
                    let code = strip_comment(line);
                    let (delta, saw_open) = brace_delta(&code);
                    if saw_open {
                        if delta <= 0 {
                            state = State::Code; // one-line item
                        } else {
                            state = State::Skipping {
                                depth: delta,
                                entered: true,
                            };
                        }
                    } else if code.contains(';') {
                        state = State::Code; // e.g. `mod tests;` — body is elsewhere
                    } else {
                        // Signature continues on following lines.
                        state = State::Skipping {
                            depth: delta,
                            entered: false,
                        };
                    }
                }
            }
            State::Skipping { depth, entered } => {
                let code = strip_comment(line);
                let (delta, saw_open) = brace_delta(&code);
                let depth = depth + delta;
                let entered = entered || saw_open;
                if entered && depth <= 0 {
                    state = State::Code;
                } else {
                    state = State::Skipping { depth, entered };
                }
            }
        }
    }
    out
}

/// Net `{`/`}` balance of a line, ignoring braces inside string and char
/// literals; also reports whether any real `{` was seen.
fn brace_delta(code: &str) -> (i64, bool) {
    let mut delta = 0i64;
    let mut saw_open = false;
    let mut in_str = false;
    let mut chars = code.chars().peekable();
    while let Some(c) = chars.next() {
        match c {
            '\\' if in_str => {
                let _ = chars.next();
            }
            '"' => in_str = !in_str,
            '\'' if !in_str => {
                // Char literal: consume it whole so `'{'` does not count.
                // Lifetimes (`'a`) have no closing quote and fall through.
                let mut look = chars.clone();
                match (look.next(), look.next(), look.next()) {
                    (Some('\\'), _, Some('\'')) => chars = look,
                    (Some(_), Some('\''), _) => {
                        let _ = chars.next();
                        let _ = chars.next();
                    }
                    _ => {}
                }
            }
            '{' if !in_str => {
                delta += 1;
                saw_open = true;
            }
            '}' if !in_str => delta -= 1,
            _ => {}
        }
    }
    (delta, saw_open)
}

/// Cuts a trailing `//` comment off a line (quote-parity heuristic: a `//`
/// preceded by an even number of quotes is treated as a comment).
fn strip_comment(line: &str) -> String {
    let mut quotes = 0usize;
    let bytes = line.as_bytes();
    let mut i = 0;
    while i < bytes.len() {
        match bytes[i] {
            b'\\' if !quotes.is_multiple_of(2) => i += 1, // skip escaped char in string
            b'"' => quotes += 1,
            b'/' if quotes.is_multiple_of(2) && i + 1 < bytes.len() && bytes[i + 1] == b'/' => {
                return line[..i].to_string();
            }
            _ => {}
        }
        i += 1;
    }
    line.to_string()
}

/// One deliberate exception: a file plus a required line substring.
struct AllowEntry {
    path: String,
    pattern: String,
}

struct Allowlist {
    entries: Vec<AllowEntry>,
}

impl Allowlist {
    fn load(path: &Path) -> Result<Self, std::io::Error> {
        let text = if path.is_file() {
            fs::read_to_string(path)?
        } else {
            String::new()
        };
        let mut entries = Vec::new();
        for line in text.lines() {
            let line = line.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let (path, pattern) = match line.split_once("::") {
                Some((p, pat)) => (p.trim().to_string(), pat.trim().to_string()),
                None => (line.to_string(), String::new()),
            };
            entries.push(AllowEntry { path, pattern });
        }
        Ok(Allowlist { entries })
    }

    /// Index of the first entry covering this (file, line), if any.
    fn matches(&self, rel_path: &str, line: &str) -> Option<usize> {
        self.entries
            .iter()
            .position(|e| e.path == rel_path && (e.pattern.is_empty() || line.contains(&e.pattern)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn non_test_lines_skip_cfg_test_blocks() {
        let src = "fn a() {}\n#[cfg(test)]\nmod tests {\n    fn b() { x.unwrap() }\n}\nfn c() {}\n";
        let kept: Vec<usize> = non_test_lines(src).iter().map(|&(n, _)| n).collect();
        assert_eq!(kept, vec![1, 6]);
    }

    #[test]
    fn non_test_lines_skip_test_fns_with_extra_attrs() {
        let src = "#[test]\n#[should_panic]\nfn t() {\n    boom();\n}\nfn keep() {}\n";
        let kept: Vec<usize> = non_test_lines(src).iter().map(|&(n, _)| n).collect();
        assert_eq!(kept, vec![6]);
    }

    #[test]
    fn braces_in_strings_do_not_confuse_tracking() {
        let src = "#[cfg(test)]\nmod tests {\n    const S: &str = \"{\";\n}\nfn after() {}\n";
        let kept: Vec<usize> = non_test_lines(src).iter().map(|&(n, _)| n).collect();
        assert_eq!(kept, vec![5]);
    }

    #[test]
    fn char_brace_literal_not_counted() {
        assert_eq!(brace_delta("let c = '{';"), (0, false));
        assert_eq!(brace_delta("fn f() {"), (1, true));
    }

    #[test]
    fn comments_are_stripped() {
        assert_eq!(
            strip_comment("code(); // has .unwrap() mention"),
            "code(); "
        );
        assert_eq!(
            strip_comment("let url = \"http://x\"; real();"),
            "let url = \"http://x\"; real();"
        );
    }

    #[test]
    fn allowlist_requires_both_path_and_pattern() {
        let list = Allowlist {
            entries: vec![AllowEntry {
                path: "a/b.rs".into(),
                pattern: "expect(\"ok\")".into(),
            }],
        };
        assert!(list.matches("a/b.rs", "x.expect(\"ok\");").is_some());
        assert!(list.matches("a/b.rs", "x.expect(\"other\");").is_none());
        assert!(list.matches("a/c.rs", "x.expect(\"ok\");").is_none());
    }
}
