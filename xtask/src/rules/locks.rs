//! Rule family 2 — lock discipline (`lock-cycle` high, `lock-poison`
//! medium).
//!
//! The daemon's single-writer/concurrent-reader model (PR 5) and the staged
//! pipelines (PRs 3–4) depend on two conventions:
//!
//! 1. **Well-ordered acquisition.** Whenever two locks are held together,
//!    every function acquires them in the same order. The rule collects
//!    every `Mutex`/`RwLock`/`Condvar` acquisition site per crate, builds
//!    the nested-acquisition graph (lock A → lock B when a function
//!    acquires B while A is, by syntactic order, still held) and fails on
//!    any cycle — a potential deadlock order.
//! 2. **No poison-punting.** `.lock().unwrap()` turns one panicking holder
//!    into a process-wide cascade. Library code recovers poisoning
//!    explicitly (`unwrap_or_else(|e| e.into_inner())`, as `crates/sync`
//!    does) or uses the vendored `parking_lot` stand-in.
//!
//! The analysis is syntactic: a lock *name* is any binding whose declared
//! type mentions `Mutex<`/`RwLock<`/`Condvar`, or a `let` bound to
//! `Mutex::new`/`RwLock::new`; an *acquisition* is `<name>.lock()`,
//! `<name>.read()`, `<name>.write()`, or `<name>.wait(…)` on a known name.
//! Acquisitions routed through helper functions are attributed to the
//! helper's body, not its callers — order your helpers accordingly.

use std::collections::{BTreeMap, BTreeSet};

use crate::findings::{Finding, Severity};
use crate::lexer::{SourceFile, TokKind};
use crate::workspace::Workspace;

fn in_scope(rel: &str) -> bool {
    rel.starts_with("src/") || rel.starts_with("crates/")
}

/// An acquisition edge `from → to` with the site that witnessed it.
type Edges = BTreeMap<(String, String), (String, u32)>;

/// Scans the workspace for lock-order cycles and poison-punting.
pub fn scan(ws: &Workspace) -> Vec<Finding> {
    let mut findings = Vec::new();
    // crate name -> set of lock binding names.
    let mut locks_per_crate: BTreeMap<String, BTreeSet<String>> = BTreeMap::new();
    for sf in ws.files.iter().filter(|f| in_scope(&f.rel)) {
        let krate = Workspace::crate_of(&sf.rel).to_string();
        let names = locks_per_crate.entry(krate).or_default();
        collect_lock_names(sf, names);
    }

    let mut edges_per_crate: BTreeMap<String, Edges> = BTreeMap::new();
    for sf in ws.files.iter().filter(|f| in_scope(&f.rel)) {
        let krate = Workspace::crate_of(&sf.rel).to_string();
        let Some(names) = locks_per_crate.get(&krate) else {
            continue;
        };
        let edges = edges_per_crate.entry(krate).or_default();
        scan_functions(sf, names, edges, &mut findings);
    }

    for (krate, edges) in &edges_per_crate {
        report_cycles(krate, edges, &mut findings);
    }
    findings
}

/// Finds lock binding names: `name: …Mutex<…`, `name: Condvar`, and
/// `let [mut] name = …Mutex::new(…)`.
fn collect_lock_names(sf: &SourceFile, names: &mut BTreeSet<String>) {
    let toks = &sf.toks;
    for i in 0..toks.len() {
        if sf.test_mask[i] || toks[i].kind != TokKind::Ident {
            continue;
        }
        let is_lock_path = matches!(toks[i].text.as_str(), "Mutex" | "RwLock")
            && (toks.get(i + 1).is_some_and(|t| t.is_punct("<"))
                || (toks.get(i + 1).is_some_and(|t| t.is_punct("::"))
                    && toks.get(i + 2).is_some_and(|t| t.is_ident("new"))));
        let is_condvar = toks[i].text == "Condvar";
        if !is_lock_path && !is_condvar {
            continue;
        }
        if let Some(name) = binding_name_before(toks, i) {
            names.insert(name);
        }
    }
}

/// Walks back from a lock-type token over type/path syntax to the binding:
/// either `name :` (field or typed let) or `let [mut] name = …`.
fn binding_name_before(toks: &[crate::lexer::Tok], mut i: usize) -> Option<String> {
    let mut budget = 12usize;
    while i > 0 && budget > 0 {
        i -= 1;
        budget -= 1;
        let t = &toks[i];
        match t.kind {
            // Type-position syntax we may walk across.
            TokKind::Ident if t.text != "let" => continue,
            TokKind::Lifetime => continue,
            TokKind::Punct if matches!(t.text.as_str(), "::" | "<" | "&" | "mut" | "(") => continue,
            TokKind::Punct if t.text == ":" => {
                // `name : …Lock…`
                let prev = toks.get(i.checked_sub(1)?)?;
                if prev.kind == TokKind::Ident {
                    return Some(prev.text.clone());
                }
                return None;
            }
            TokKind::Punct if t.text == "=" => {
                // `let [mut] name = …Lock::new`
                let prev = toks.get(i.checked_sub(1)?)?;
                if prev.kind == TokKind::Ident && prev.text != "mut" {
                    return Some(prev.text.clone());
                }
                return None;
            }
            _ => return None,
        }
    }
    None
}

const ACQUIRE_METHODS: [&str; 4] = ["lock", "read", "write", "wait"];

/// Scans each function body for acquisitions: records nesting edges and
/// reports poison-punting.
fn scan_functions(
    sf: &SourceFile,
    names: &BTreeSet<String>,
    edges: &mut Edges,
    findings: &mut Vec<Finding>,
) {
    let toks = &sf.toks;
    for span in &sf.fns {
        let mut held: Vec<String> = Vec::new();
        let mut i = span.body_start;
        while i < span.body_end.min(toks.len()) {
            let t = &toks[i];
            let is_acquire = t.kind == TokKind::Ident
                && ACQUIRE_METHODS.contains(&t.text.as_str())
                && i >= 2
                && toks[i - 1].is_punct(".")
                && toks[i - 2].kind == TokKind::Ident
                && names.contains(&toks[i - 2].text)
                && toks.get(i + 1).is_some_and(|p| p.is_punct("("));
            if !is_acquire {
                i += 1;
                continue;
            }
            let lock_name = toks[i - 2].text.clone();
            for prior in &held {
                if *prior != lock_name {
                    edges
                        .entry((prior.clone(), lock_name.clone()))
                        .or_insert_with(|| (sf.rel.clone(), t.line));
                }
            }
            if !held.contains(&lock_name) {
                held.push(lock_name);
            }
            // Poison-punting: `<acquire>(…).unwrap()` / `.expect(…)`.
            let after_args = crate::lexer::match_paren(toks, i + 1);
            if toks.get(after_args).is_some_and(|t| t.is_punct("."))
                && toks
                    .get(after_args + 1)
                    .is_some_and(|t| t.is_ident("unwrap") || t.is_ident("expect"))
            {
                findings.push(Finding {
                    rule: "lock-poison",
                    severity: Severity::Medium,
                    file: sf.rel.clone(),
                    line: t.line,
                    message: format!(
                        "lock poisoning punted to a panic; recover it explicitly \
                         (`unwrap_or_else(|e| e.into_inner())`): {}",
                        sf.line_text(t.line)
                    ),
                });
            }
            i += 1;
        }
    }
}

/// Reports one `lock-cycle` finding per strongly-connected set of two or
/// more locks in a crate's acquisition graph.
fn report_cycles(krate: &str, edges: &Edges, findings: &mut Vec<Finding>) {
    // Transitive closure over the (small) per-crate graph.
    let mut reach: BTreeMap<&str, BTreeSet<&str>> = BTreeMap::new();
    for (from, to) in edges.keys() {
        reach.entry(from).or_default().insert(to);
        reach.entry(to).or_default();
    }
    loop {
        let mut grew = false;
        let nodes: Vec<&str> = reach.keys().copied().collect();
        for a in &nodes {
            let direct: Vec<&str> = reach[*a].iter().copied().collect();
            for b in direct {
                let via: Vec<&str> = reach
                    .get(b)
                    .map(|s| s.iter().copied().collect())
                    .unwrap_or_default();
                for c in via {
                    if reach.get_mut(*a).is_some_and(|s| s.insert(c)) {
                        grew = true;
                    }
                }
            }
        }
        if !grew {
            break;
        }
    }
    // Strongly-connected pairs → components.
    let mut reported: BTreeSet<BTreeSet<String>> = BTreeSet::new();
    let nodes: Vec<&str> = reach.keys().copied().collect();
    for a in &nodes {
        let mut component: BTreeSet<String> = BTreeSet::new();
        for b in &nodes {
            if a != b && reach[*a].contains(*b) && reach[*b].contains(*a) {
                component.insert((*a).to_string());
                component.insert((*b).to_string());
            }
        }
        if component.len() >= 2 && reported.insert(component.clone()) {
            // Anchor the finding at the first edge inside the component.
            let site = edges
                .iter()
                .find(|((f, t), _)| component.contains(f) && component.contains(t))
                .map(|(_, site)| site.clone());
            let (file, line) = site.unwrap_or_else(|| (format!("crates/{krate}"), 0));
            let names: Vec<String> = component.iter().cloned().collect();
            findings.push(Finding {
                rule: "lock-cycle",
                severity: Severity::High,
                file,
                line,
                message: format!(
                    "lock-order cycle in crate `{krate}` among {{{}}}: functions acquire \
                     these locks in conflicting orders (potential deadlock)",
                    names.join(", ")
                ),
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::SourceFile;
    use std::path::PathBuf;

    fn scan_src(rel: &str, src: &str) -> Vec<Finding> {
        let ws = Workspace {
            root: PathBuf::new(),
            files: vec![SourceFile::parse(rel, src)],
            crate_roots: vec![],
            unreadable: vec![],
        };
        scan(&ws)
    }

    const CYCLE: &str = "struct S { a: Mutex<u32>, b: Mutex<u32> }\n\
        impl S {\n\
        fn one(&self) { let _g = self.a.lock(); let _h = self.b.lock(); }\n\
        fn two(&self) { let _g = self.b.lock(); let _h = self.a.lock(); }\n\
        }\n";

    #[test]
    fn opposing_orders_are_a_cycle() {
        let f = scan_src("crates/x/src/lib.rs", CYCLE);
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].rule, "lock-cycle");
        assert!(f[0].message.contains("a, b"));
    }

    #[test]
    fn consistent_order_is_clean() {
        let src = "struct S { a: Mutex<u32>, b: Mutex<u32> }\n\
            impl S {\n\
            fn one(&self) { let _g = self.a.lock(); let _h = self.b.lock(); }\n\
            fn two(&self) { let _g = self.a.lock(); let _h = self.b.lock(); }\n\
            }\n";
        assert!(scan_src("crates/x/src/lib.rs", src).is_empty());
    }

    #[test]
    fn condvar_wait_participates_in_ordering() {
        let src = "struct Q { state: Mutex<u32>, not_full: Condvar }\n\
            impl Q {\n\
            fn push(&self) { let s = self.state.lock(); let _ = self.not_full.wait(s); }\n\
            }\n";
        assert!(scan_src("crates/x/src/lib.rs", src).is_empty());
    }

    #[test]
    fn poison_punting_is_flagged_outside_tests_only() {
        let src = "struct S { m: Mutex<u32> }\n\
            impl S { fn f(&self) { let _g = self.m.lock().unwrap(); } }\n\
            #[cfg(test)]\nmod tests { fn t(s: &super::S) { let _g = s.m.lock().unwrap(); } }\n";
        let f = scan_src("crates/x/src/lib.rs", src);
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].rule, "lock-poison");
        assert_eq!(f[0].line, 2);
    }

    #[test]
    fn recovering_poison_is_clean() {
        let src = "struct S { m: Mutex<u32> }\n\
            impl S { fn f(&self) { let _g = self.m.lock().unwrap_or_else(|e| e.into_inner()); } }\n";
        assert!(scan_src("crates/x/src/lib.rs", src).is_empty());
    }

    #[test]
    fn let_bound_mutex_is_tracked() {
        let src = "fn f() { let shared = Mutex::new(0u32); let _g = shared.lock().unwrap(); }\n";
        let f = scan_src("crates/x/src/lib.rs", src);
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].rule, "lock-poison");
    }

    #[test]
    fn io_read_write_on_non_locks_is_ignored() {
        let src = "fn f(mut s: std::net::TcpStream, buf: &mut [u8]) { let _ = s.read(buf).unwrap_or(0); }\n";
        assert!(scan_src("crates/x/src/lib.rs", src).is_empty());
    }

    #[test]
    fn cross_crate_names_do_not_mix() {
        // Crate y has a lock named `a`; crate z uses an unrelated `a.read()`.
        let ws = Workspace {
            root: PathBuf::new(),
            files: vec![
                SourceFile::parse("crates/y/src/lib.rs", "struct S { a: RwLock<u32> }\n"),
                SourceFile::parse(
                    "crates/z/src/lib.rs",
                    "fn f(a: &mut dyn std::io::Read) { let mut b = [0u8; 4]; let _ = a.read(&mut b).unwrap_or(0); }\n",
                ),
            ],
            crate_roots: vec![],
            unreadable: vec![],
        };
        assert!(scan(&ws).is_empty());
    }
}
