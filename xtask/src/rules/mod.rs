//! The rule families of `cargo xtask analyze`.
//!
//! Every rule consumes the lexed [`crate::workspace::Workspace`] and
//! returns raw [`crate::findings::Finding`]s; the orchestrator in
//! [`crate::analyze`] applies the allowlist and assembles the report.
//!
//! | rule id          | family        | severity | scope                         |
//! |------------------|---------------|----------|-------------------------------|
//! | `vfs-io`         | I/O discipline| high     | `src/`, `crates/*` except `crates/failpoint` |
//! | `lock-cycle`     | lock discipline| high    | `src/`, `crates/*`            |
//! | `lock-poison`    | lock discipline| medium  | `src/`, `crates/*`            |
//! | `wire-cast`      | wire safety   | medium   | `crates/proto`, `crates/server` |
//! | `wire-alloc`     | wire safety   | high     | `crates/proto`, `crates/server` |
//! | `net-io`         | I/O discipline| high     | `src/`, `crates/server`, `crates/proto` except `crates/netfault` |
//! | `panic-marker`   | panic audit   | medium/low | everything `lint` scans     |

pub mod locks;
pub mod net;
pub mod panic;
pub mod vfs;
pub mod wire;

use crate::lexer::{SourceFile, TokKind};

/// True when the identifier at `i` is name-like length-typed: it mentions
/// `len`, `size`, or `count` (but is not the primitive `usize`/`isize`).
pub(crate) fn is_lengthy_ident(text: &str) -> bool {
    if text == "usize" || text == "isize" {
        return false;
    }
    let lower = text.to_ascii_lowercase();
    lower.contains("len") || lower.contains("size") || lower.contains("count")
}

/// The innermost function span containing token `i`, if any.
pub(crate) fn enclosing_fn(sf: &SourceFile, i: usize) -> Option<&crate::lexer::FnSpan> {
    sf.fns
        .iter()
        .filter(|f| f.body_start <= i && i < f.body_end)
        .min_by_key(|f| f.body_end - f.body_start)
}

/// True when every token of the size expression is structurally constant:
/// numeric literals, SCREAMING_CASE constants, and arithmetic punctuation.
pub(crate) fn expr_is_constant(sf: &SourceFile, range: std::ops::Range<usize>) -> bool {
    sf.toks[range].iter().all(|t| match t.kind {
        TokKind::Num => true,
        TokKind::Ident => t
            .text
            .chars()
            .all(|c| c.is_ascii_uppercase() || c == '_' || c.is_ascii_digit()),
        TokKind::Punct => matches!(
            t.text.as_str(),
            "+" | "-" | "*" | "/" | "(" | ")" | "::" | "<" | ">" | "."
        ),
        _ => false,
    })
}
