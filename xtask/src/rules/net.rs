//! Rule family 5 — network I/O discipline (`net-io`, severity high).
//!
//! The chaos matrix of PR 7 enumerates *wire operations through the
//! `hidestore-netfault` shim*: every read and write the client or server
//! performs on a socket must flow through a [`NetStream`] so a fault can be
//! injected at that exact operation. A raw `std::net` socket used directly
//! for I/O is a wire operation the matrix can never cut, delay, or tear.
//! This rule forbids, in library code under `src/`, `crates/server/`, and
//! `crates/proto/` (but not `crates/netfault/`, which owns the raw socket):
//!
//! * the `TcpStream` / `TcpListener` / `UdpSocket` type names, however
//!   imported or referenced.
//!
//! Type-level plumbing that never does I/O (the listener the acceptor owns,
//! the accepted socket handed to the shim before a byte moves) is waived in
//! `xtask/analyze-allow.txt` with a one-line justification. `SocketAddr`
//! and the other non-I/O `std::net` types are deliberately not flagged.
//!
//! [`NetStream`]: ../../../crates/netfault/src/lib.rs

use crate::findings::{Finding, Severity};
use crate::lexer::SourceFile;
use crate::workspace::Workspace;

const SOCKET_TYPES: [&str; 3] = ["TcpStream", "TcpListener", "UdpSocket"];

/// Whether `rel` is in scope for this rule.
fn in_scope(rel: &str) -> bool {
    rel.starts_with("src/") || rel.starts_with("crates/server/") || rel.starts_with("crates/proto/")
}

/// Scans the workspace for raw socket types outside the netfault shim.
pub fn scan(ws: &Workspace) -> Vec<Finding> {
    let mut findings = Vec::new();
    for sf in ws.files.iter().filter(|f| in_scope(&f.rel)) {
        scan_file(sf, &mut findings);
    }
    findings
}

fn scan_file(sf: &SourceFile, findings: &mut Vec<Finding>) {
    let toks = &sf.toks;
    let mut flagged_lines: Vec<u32> = Vec::new();
    for (i, t) in toks.iter().enumerate() {
        if sf.test_mask[i] {
            continue;
        }
        let Some(what) = SOCKET_TYPES.iter().find(|name| t.is_ident(name)) else {
            continue;
        };
        if flagged_lines.contains(&t.line) {
            continue; // one finding per line: `use std::net::{TcpListener, TcpStream}` is one sin
        }
        flagged_lines.push(t.line);
        findings.push(Finding {
            rule: "net-io",
            severity: Severity::High,
            file: sf.rel.clone(),
            line: t.line,
            message: format!(
                "raw `{what}` bypasses the netfault shim (chaos-matrix blind spot): {}",
                sf.line_text(t.line)
            ),
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::SourceFile;
    use std::path::PathBuf;

    fn scan_src(rel: &str, src: &str) -> Vec<Finding> {
        let ws = Workspace {
            root: PathBuf::new(),
            files: vec![SourceFile::parse(rel, src)],
            crate_roots: vec![],
            unreadable: vec![],
        };
        scan(&ws)
    }

    #[test]
    fn flags_each_raw_socket_type() {
        let src = "use std::net::TcpStream;\nfn f() { let _ = TcpListener::bind(\"x\"); }\nfn g(_s: UdpSocket) {}\n";
        let f = scan_src("crates/server/src/lib.rs", src);
        assert_eq!(f.len(), 3);
        assert!(f.iter().all(|x| x.rule == "net-io"));
    }

    #[test]
    fn one_finding_per_line() {
        let f = scan_src(
            "crates/server/src/lib.rs",
            "use std::net::{TcpListener, TcpStream};\n",
        );
        assert_eq!(f.len(), 1);
    }

    #[test]
    fn socket_addr_and_out_of_scope_and_tests_are_exempt() {
        let addr_only = "use std::net::{SocketAddr, ToSocketAddrs};\n";
        assert!(scan_src("crates/server/src/lib.rs", addr_only).is_empty());
        let shim = "use std::net::TcpStream;\n";
        assert!(scan_src("crates/netfault/src/lib.rs", shim).is_empty());
        assert!(scan_src("crates/storage/src/lib.rs", shim).is_empty());
        let test_side =
            "#[cfg(test)]\nmod tests { use std::net::TcpStream; fn t() { let _ = TcpStream::connect(\"x\"); } }\n";
        assert!(scan_src("crates/server/src/lib.rs", test_side).is_empty());
        let comment = "/// Wraps a `TcpStream` in the shim.\nfn doc() {}\n";
        assert!(scan_src("crates/server/src/lib.rs", comment).is_empty());
    }
}
