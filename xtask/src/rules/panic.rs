//! Rule family 4 — panic-audit upgrade (`panic-marker`, medium/low).
//!
//! `cargo xtask lint` forbids `.unwrap()`, `.expect(` and `panic!` in
//! library code; both tasks now share the same lexer, so they agree exactly
//! on what is test code. This family adds the markers the lint wall never
//! covered:
//!
//! * `todo!` / `unimplemented!` (medium) — a guaranteed panic pretending to
//!   be a plan; library code must return errors, not placeholders.
//! * `dbg!` (low) — a debug leftover that writes to stderr in production.

use crate::findings::{Finding, Severity};
use crate::workspace::Workspace;

/// Scans all library code (the same surface as `lint`) for panic markers.
pub fn scan(ws: &Workspace) -> Vec<Finding> {
    let mut findings = Vec::new();
    for sf in &ws.files {
        for (i, t) in sf.toks.iter().enumerate() {
            if sf.test_mask[i] {
                continue;
            }
            let marker = matches!(t.text.as_str(), "todo" | "unimplemented" | "dbg")
                && t.kind == crate::lexer::TokKind::Ident
                && sf.toks.get(i + 1).is_some_and(|n| n.is_punct("!"));
            if !marker {
                continue;
            }
            let severity = if t.text == "dbg" {
                Severity::Low
            } else {
                Severity::Medium
            };
            findings.push(Finding {
                rule: "panic-marker",
                severity,
                file: sf.rel.clone(),
                line: t.line,
                message: format!(
                    "forbidden `{}!` in library code: {}",
                    t.text,
                    sf.line_text(t.line)
                ),
            });
        }
    }
    findings
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::SourceFile;
    use std::path::PathBuf;

    fn scan_src(src: &str) -> Vec<Finding> {
        let ws = Workspace {
            root: PathBuf::new(),
            files: vec![SourceFile::parse("crates/x/src/lib.rs", src)],
            crate_roots: vec![],
            unreadable: vec![],
        };
        scan(&ws)
    }

    #[test]
    fn markers_are_flagged_with_severities() {
        let f = scan_src(
            "fn a() { todo!() }\nfn b() { unimplemented!() }\nfn c(x: u32) { let _ = dbg!(x); }\n",
        );
        assert_eq!(f.len(), 3);
        assert_eq!(f[0].severity, Severity::Medium);
        assert_eq!(f[2].severity, Severity::Low);
    }

    #[test]
    fn test_scope_and_strings_are_exempt() {
        let f = scan_src(
            "#[cfg(test)]\nmod tests { fn t() { todo!() } }\nfn live() { let _ = \"todo! dbg!\"; }\n",
        );
        assert!(f.is_empty(), "{f:?}");
    }
}
