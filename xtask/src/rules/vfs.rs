//! Rule family 1 — Vfs I/O discipline (`vfs-io`, severity high).
//!
//! The crash-consistency story of PR 2 holds only if every byte the
//! repository reads or writes flows through the `failpoint` Vfs shim: the
//! crash matrix enumerates *Vfs call sites*, so a direct `std::fs` call is
//! an I/O operation the matrix can never crash at. This rule forbids, in
//! library code outside `crates/failpoint`:
//!
//! * any `std::fs` path (including `use std::fs…` imports),
//! * `OpenOptions` (a `std::fs` handle factory however it was imported),
//! * `File::create` / `File::open` / `File::options` calls.
//!
//! Genuinely non-repository I/O (a restore's *destination* file on the
//! client, the bench harness's CSV results) is waived in
//! `xtask/analyze-allow.txt` with a one-line justification.

use crate::findings::{Finding, Severity};
use crate::lexer::SourceFile;
use crate::workspace::Workspace;

const FILE_FACTORIES: [&str; 3] = ["create", "open", "options"];

/// Whether `rel` is in scope for this rule.
fn in_scope(rel: &str) -> bool {
    (rel.starts_with("src/") || rel.starts_with("crates/")) && !rel.starts_with("crates/failpoint/")
}

/// Scans the workspace for direct filesystem access.
pub fn scan(ws: &Workspace) -> Vec<Finding> {
    let mut findings = Vec::new();
    for sf in ws.files.iter().filter(|f| in_scope(&f.rel)) {
        scan_file(sf, &mut findings);
    }
    findings
}

fn scan_file(sf: &SourceFile, findings: &mut Vec<Finding>) {
    let toks = &sf.toks;
    let mut flagged_lines: Vec<u32> = Vec::new();
    let mut push = |line: u32, what: &str, findings: &mut Vec<Finding>| {
        if flagged_lines.contains(&line) {
            return; // one finding per line: `std::fs::File::create` is one sin
        }
        flagged_lines.push(line);
        findings.push(Finding {
            rule: "vfs-io",
            severity: Severity::High,
            file: sf.rel.clone(),
            line,
            message: format!(
                "direct {what} bypasses the Vfs shim (crash-matrix blind spot): {}",
                sf.line_text(line)
            ),
        });
    };
    for i in 0..toks.len() {
        if sf.test_mask[i] {
            continue;
        }
        let t = &toks[i];
        // `std :: fs`
        if t.is_ident("std")
            && toks.get(i + 1).is_some_and(|t| t.is_punct("::"))
            && toks.get(i + 2).is_some_and(|t| t.is_ident("fs"))
        {
            push(t.line, "`std::fs`", findings);
            continue;
        }
        // `OpenOptions`
        if t.is_ident("OpenOptions") {
            push(t.line, "`OpenOptions`", findings);
            continue;
        }
        // `fs::…` after a `use std::fs;` import (not a field named `fs`).
        if t.is_ident("fs")
            && toks.get(i + 1).is_some_and(|t| t.is_punct("::"))
            && (i == 0 || !(toks[i - 1].is_punct(".") || toks[i - 1].is_punct("::")))
        {
            push(t.line, "`fs::` module access", findings);
            continue;
        }
        // `File::create` / `File::open` / `File::options`
        if t.is_ident("File")
            && toks.get(i + 1).is_some_and(|t| t.is_punct("::"))
            && toks
                .get(i + 2)
                .is_some_and(|t| FILE_FACTORIES.iter().any(|m| t.is_ident(m)))
        {
            push(t.line, "`File::` constructor", findings);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::SourceFile;
    use std::path::PathBuf;

    fn scan_src(rel: &str, src: &str) -> Vec<Finding> {
        let ws = Workspace {
            root: PathBuf::new(),
            files: vec![SourceFile::parse(rel, src)],
            crate_roots: vec![],
            unreadable: vec![],
        };
        scan(&ws)
    }

    #[test]
    fn flags_std_fs_and_file_and_openoptions() {
        let src = "use std::fs::File;\nfn f() { let _ = File::create(\"x\"); }\nfn g() { let _ = OpenOptions::new(); }\n";
        let f = scan_src("crates/storage/src/lib.rs", src);
        assert_eq!(f.len(), 3);
        assert!(f.iter().all(|x| x.rule == "vfs-io"));
    }

    #[test]
    fn one_finding_per_line() {
        let f = scan_src(
            "crates/core/src/lib.rs",
            "fn f() { std::fs::File::create(\"x\").ok(); }\n",
        );
        assert_eq!(f.len(), 1);
    }

    #[test]
    fn test_code_and_failpoint_and_comments_are_exempt() {
        let test_side =
            "#[cfg(test)]\nmod tests { use std::fs; fn t() { fs::write(\"x\", b\"\").ok(); } }\n";
        assert!(scan_src("crates/core/src/lib.rs", test_side).is_empty());
        let failpoint = "use std::fs;\n";
        assert!(scan_src("crates/failpoint/src/vfs.rs", failpoint).is_empty());
        let comment = "/// [`RealVfs`] maps to a direct `std::fs` call.\nfn doc() {}\n// std::fs in a comment\n";
        assert!(scan_src("crates/storage/src/lib.rs", comment).is_empty());
    }

    #[test]
    fn fs_file_create_without_std_prefix_is_caught() {
        let f = scan_src(
            "crates/bench/src/lib.rs",
            "fn f() { let _ = fs::File::create(\"x\"); }\n",
        );
        assert_eq!(f.len(), 1);
    }
}
