//! Rule family 3 — wire safety in `crates/proto` and `crates/server`
//! (`wire-cast` medium, `wire-alloc` high).
//!
//! The daemon's panic-free decode guarantee (PR 5) is really two promises:
//! no length from the network is trusted before a [`Limits`]-style bound
//! check, and no integer is silently truncated on its way to or from the
//! wire. Two rules police the code that keeps those promises:
//!
//! * **`wire-cast`** — a truncating `as` cast (`as u8`/`u16`/`u32`, or
//!   their signed twins) applied to a length-typed expression (one that
//!   mentions `len`, `size`, or `count`). `as` wraps silently; a length
//!   that wraps encodes a frame whose announced size lies. Use
//!   `u32::try_from(..)` (or the checked helpers in `proto::wire`) so
//!   overflow is impossible or fails closed.
//! * **`wire-alloc`** — a byte-buffer allocation (`Vec::with_capacity(n)`
//!   or `vec![_; n]`) whose size is not structurally constant and has no
//!   *visible* bound: neither a `.min(..)`/`MAX_*` clamp in the size
//!   expression nor a `limits`/`MAX_*` check earlier in the same function.
//!   A wire-derived size without such a check lets one corrupt length
//!   field allocate gigabytes. (`String::with_capacity` is exempt: decode
//!   paths build strings from already-validated byte slices, so a string
//!   capacity is a hint, not a wire-sized buffer.)

use crate::findings::{Finding, Severity};
use crate::lexer::{match_paren, SourceFile, TokKind};
use crate::workspace::Workspace;

use super::{enclosing_fn, expr_is_constant, is_lengthy_ident};

fn in_scope(rel: &str) -> bool {
    rel.starts_with("crates/proto/src") || rel.starts_with("crates/server/src")
}

const NARROW_TARGETS: [&str; 6] = ["u8", "u16", "u32", "i8", "i16", "i32"];

/// Tokens that terminate the backward walk over a cast's operand.
fn is_expr_boundary(t: &crate::lexer::Tok) -> bool {
    (t.kind == TokKind::Punct && matches!(t.text.as_str(), ";" | "," | "=" | "{" | "}" | "["))
        || (t.kind == TokKind::Ident
            && matches!(t.text.as_str(), "return" | "if" | "match" | "let"))
}

/// Scans proto/server library code for unsafe casts and unchecked
/// allocations.
pub fn scan(ws: &Workspace) -> Vec<Finding> {
    let mut findings = Vec::new();
    for sf in ws.files.iter().filter(|f| in_scope(&f.rel)) {
        scan_casts(sf, &mut findings);
        scan_allocs(sf, &mut findings);
    }
    findings
}

fn scan_casts(sf: &SourceFile, findings: &mut Vec<Finding>) {
    let toks = &sf.toks;
    for i in 0..toks.len() {
        if sf.test_mask[i] || !toks[i].is_ident("as") {
            continue;
        }
        let Some(target) = toks.get(i + 1) else {
            continue;
        };
        if target.kind != TokKind::Ident || !NARROW_TARGETS.contains(&target.text.as_str()) {
            continue;
        }
        // Walk back over the casted expression looking for a length-typed
        // identifier.
        let mut lengthy = false;
        let mut k = i;
        let mut budget = 12usize;
        while k > 0 && budget > 0 {
            k -= 1;
            budget -= 1;
            let t = &toks[k];
            if is_expr_boundary(t) {
                break;
            }
            if t.kind == TokKind::Ident && is_lengthy_ident(&t.text) {
                lengthy = true;
                break;
            }
        }
        if lengthy {
            findings.push(Finding {
                rule: "wire-cast",
                severity: Severity::Medium,
                file: sf.rel.clone(),
                line: toks[i].line,
                message: format!(
                    "truncating `as {}` on a length-typed expression silently wraps; \
                     use a checked conversion: {}",
                    target.text,
                    sf.line_text(toks[i].line)
                ),
            });
        }
    }
}

fn scan_allocs(sf: &SourceFile, findings: &mut Vec<Finding>) {
    let toks = &sf.toks;
    for i in 0..toks.len() {
        if sf.test_mask[i] {
            continue;
        }
        // `Vec::with_capacity( expr )`
        let size_range = if toks[i].is_ident("Vec")
            && toks.get(i + 1).is_some_and(|t| t.is_punct("::"))
            && toks.get(i + 2).is_some_and(|t| t.is_ident("with_capacity"))
        {
            let open = i + 3;
            let close = match_paren(toks, open);
            if close == open {
                continue;
            }
            Some((open + 1)..(close - 1))
        }
        // `vec![ init ; expr ]`
        else if toks[i].is_ident("vec")
            && toks.get(i + 1).is_some_and(|t| t.is_punct("!"))
            && toks.get(i + 2).is_some_and(|t| t.is_punct("["))
        {
            let mut depth = 0i64;
            let mut semi = None;
            let mut close = None;
            for (k, t) in toks.iter().enumerate().skip(i + 2) {
                if t.is_punct("[") || t.is_punct("(") || t.is_punct("{") {
                    depth += 1;
                } else if t.is_punct("]") || t.is_punct(")") || t.is_punct("}") {
                    depth -= 1;
                    if depth == 0 {
                        close = Some(k);
                        break;
                    }
                } else if t.is_punct(";") && depth == 1 {
                    semi = Some(k);
                }
            }
            match (semi, close) {
                (Some(s), Some(c)) if s + 1 < c => Some((s + 1)..c),
                _ => None,
            }
        } else {
            None
        };
        let Some(range) = size_range else {
            continue;
        };
        if expr_is_constant(sf, range.clone()) {
            continue;
        }
        // A visible clamp inside the size expression?
        let visibly_bounded = toks[range.clone()].iter().any(|t| {
            t.kind == TokKind::Ident
                && (t.text == "min"
                    || t.text == "limits"
                    || t.text == "Limits"
                    || t.text.starts_with("MAX"))
        });
        if visibly_bounded {
            continue;
        }
        // A bound check earlier in the same function?
        let checked_in_fn = enclosing_fn(sf, i).is_some_and(|span| {
            toks[span.body_start..i].iter().any(|t| {
                t.kind == TokKind::Ident
                    && (t.text == "limits"
                        || t.text == "Limits"
                        || t.text.starts_with("MAX")
                        || t.text == "min")
            })
        });
        if checked_in_fn {
            continue;
        }
        findings.push(Finding {
            rule: "wire-alloc",
            severity: Severity::High,
            file: sf.rel.clone(),
            line: toks[i].line,
            message: format!(
                "allocation sized from a non-constant value with no visible `Limits`/`MAX_*`/\
                 `.min(..)` bound in this function: {}",
                sf.line_text(toks[i].line)
            ),
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::SourceFile;
    use std::path::PathBuf;

    fn scan_src(rel: &str, src: &str) -> Vec<Finding> {
        let ws = Workspace {
            root: PathBuf::new(),
            files: vec![SourceFile::parse(rel, src)],
            crate_roots: vec![],
            unreadable: vec![],
        };
        scan(&ws)
    }

    #[test]
    fn len_as_u32_is_flagged_in_proto_only() {
        let src = "fn f(s: &str) -> u32 { s.len() as u32 }\n";
        let in_proto = scan_src("crates/proto/src/wire.rs", src);
        assert_eq!(in_proto.len(), 1, "{in_proto:?}");
        assert_eq!(in_proto[0].rule, "wire-cast");
        assert!(scan_src("crates/core/src/lib.rs", src).is_empty());
    }

    #[test]
    fn widening_and_non_length_casts_pass() {
        let src = "fn f(len: u32, tag: u64) -> (usize, u8, u64) { (len as usize, tag as u8, len as u64) }\n";
        assert!(scan_src("crates/proto/src/frame.rs", src).is_empty());
    }

    #[test]
    fn checked_conversion_passes() {
        let src = "fn f(s: &str) -> u32 { u32::try_from(s.len()).unwrap_or(u32::MAX) }\n";
        assert!(scan_src("crates/proto/src/wire.rs", src).is_empty());
    }

    #[test]
    fn unchecked_alloc_is_flagged() {
        let src = "fn f(n: usize) -> Vec<u8> { let buf = vec![0u8; n]; buf }\n";
        let f = scan_src("crates/proto/src/frame.rs", src);
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].rule, "wire-alloc");
    }

    #[test]
    fn min_clamp_and_limits_check_pass() {
        let clamped = "fn f(n: usize) -> Vec<u8> { Vec::with_capacity(n.min(1024)) }\n";
        assert!(scan_src("crates/proto/src/message.rs", clamped).is_empty());
        let checked = "fn f(len: u32, limits: &Limits) -> Result<Vec<u8>, ()> {\n\
            if len > limits.max_frame { return Err(()); }\n\
            Ok(vec![0u8; len as usize])\n}\n";
        assert!(scan_src("crates/proto/src/frame.rs", checked).is_empty());
    }

    #[test]
    fn constant_capacity_and_string_capacity_pass() {
        let src = "const N: usize = 64;\nfn f(s: &str) -> (Vec<u8>, String) {\n\
            (Vec::with_capacity(N * 2), String::with_capacity(s.len() + 2))\n}\n";
        assert!(scan_src("crates/proto/src/json.rs", src).is_empty());
    }

    #[test]
    fn test_code_is_exempt() {
        let src = "#[cfg(test)]\nmod tests { fn t(n: usize) { let _ = vec![0u8; n]; } }\n";
        assert!(scan_src("crates/proto/src/frame.rs", src).is_empty());
    }
}
