//! Library-source discovery shared by `lint` and `analyze`.
//!
//! Both tasks scan the same surface: the root facade (`src/`), every
//! workspace crate (`crates/*/src`), and the vendored stand-ins
//! (`vendor/*/src`). `src/bin/` subtrees are exempt — binaries may abort
//! with a message — and `lib.rs` crate roots are recorded separately for
//! the mandatory-attribute check.

use std::fs;
use std::path::{Path, PathBuf};

use crate::lexer::SourceFile;

/// All the library sources of one workspace tree, lexed.
#[derive(Debug)]
pub struct Workspace {
    /// The workspace root the relative paths are anchored at.
    pub root: PathBuf,
    /// Every library `.rs` file, lexed, sorted by relative path.
    pub files: Vec<SourceFile>,
    /// Relative paths of `lib.rs` crate roots.
    pub crate_roots: Vec<String>,
    /// Files that could not be read (reported as errors by callers).
    pub unreadable: Vec<String>,
}

impl Workspace {
    /// Collects and lexes every library source under `root`.
    pub fn collect(root: &Path) -> Workspace {
        let mut paths: Vec<PathBuf> = Vec::new();
        let mut crate_root_paths: Vec<PathBuf> = Vec::new();
        let mut unreadable: Vec<String> = Vec::new();

        collect_src_dir(
            &root.join("src"),
            &mut paths,
            &mut crate_root_paths,
            &mut unreadable,
        );
        for family in ["crates", "vendor"] {
            let Ok(entries) = fs::read_dir(root.join(family)) else {
                continue;
            };
            let mut dirs: Vec<PathBuf> = entries
                .filter_map(Result::ok)
                .map(|e| e.path())
                .filter(|p| p.is_dir())
                .collect();
            dirs.sort();
            for dir in dirs {
                collect_src_dir(
                    &dir.join("src"),
                    &mut paths,
                    &mut crate_root_paths,
                    &mut unreadable,
                );
            }
        }

        paths.sort();
        let mut files = Vec::with_capacity(paths.len());
        for path in &paths {
            let rel = relative(root, path);
            match fs::read_to_string(path) {
                Ok(source) => files.push(SourceFile::parse(&rel, &source)),
                Err(e) => unreadable.push(format!("{rel}: unreadable: {e}")),
            }
        }
        let crate_roots = crate_root_paths.iter().map(|p| relative(root, p)).collect();
        Workspace {
            root: root.to_path_buf(),
            files,
            crate_roots,
            unreadable,
        }
    }

    /// The crate a relative path belongs to: `crates/foo/…` → `foo`,
    /// `vendor/bar/…` → `vendor/bar`, the root facade → `.`.
    pub fn crate_of(rel: &str) -> &str {
        let mut parts = rel.split('/');
        match parts.next() {
            Some("crates") => parts.next().unwrap_or(""),
            Some("vendor") => match parts.next() {
                Some(name) => &rel[..("vendor/".len() + name.len())],
                None => "vendor",
            },
            _ => ".",
        }
    }
}

/// Recursively collects `.rs` files under a `src/` dir, skipping `bin/`
/// subtrees, and records `lib.rs` crate roots.
fn collect_src_dir(
    src: &Path,
    files: &mut Vec<PathBuf>,
    crate_roots: &mut Vec<PathBuf>,
    unreadable: &mut Vec<String>,
) {
    if !src.is_dir() {
        return;
    }
    let lib = src.join("lib.rs");
    if lib.is_file() {
        crate_roots.push(lib);
    }
    let mut stack = vec![src.to_path_buf()];
    while let Some(dir) = stack.pop() {
        let entries = match fs::read_dir(&dir) {
            Ok(e) => e,
            Err(e) => {
                unreadable.push(format!("{}: unreadable directory: {e}", dir.display()));
                continue;
            }
        };
        let mut paths: Vec<PathBuf> = entries.filter_map(Result::ok).map(|e| e.path()).collect();
        paths.sort();
        for path in paths {
            if path.is_dir() {
                if path.file_name().is_some_and(|n| n == "bin") {
                    continue; // binaries are exempt from the scans
                }
                stack.push(path);
            } else if path.extension().is_some_and(|x| x == "rs") {
                files.push(path);
            }
        }
    }
}

/// `file` relative to `root`, `/`-separated regardless of platform.
pub fn relative(root: &Path, file: &Path) -> String {
    file.strip_prefix(root)
        .unwrap_or(file)
        .components()
        .map(|c| c.as_os_str().to_string_lossy())
        .collect::<Vec<_>>()
        .join("/")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crate_of_classifies_paths() {
        assert_eq!(Workspace::crate_of("crates/core/src/lib.rs"), "core");
        assert_eq!(Workspace::crate_of("vendor/rand/src/lib.rs"), "vendor/rand");
        assert_eq!(Workspace::crate_of("src/lib.rs"), ".");
    }
}
