//! End-to-end tests for the `xtask` binary: exit codes, the per-rule
//! fixture trees under `tests/fixtures/`, and the byte-for-byte pinned
//! `--json` report (same discipline as `crates/fsck/tests/cli.rs`).

use std::process::Command;

fn fixture(name: &str) -> String {
    format!("{}/tests/fixtures/{name}", env!("CARGO_MANIFEST_DIR"))
}

fn xtask(args: &[&str]) -> (i32, String, String) {
    let out = Command::new(env!("CARGO_BIN_EXE_xtask"))
        .args(args)
        .output()
        .expect("spawn xtask");
    (
        out.status.code().unwrap_or(-1),
        String::from_utf8_lossy(&out.stdout).into_owned(),
        String::from_utf8_lossy(&out.stderr).into_owned(),
    )
}

fn analyze_fixture(name: &str) -> (i32, String, String) {
    xtask(&["analyze", "--root", &fixture(name)])
}

#[test]
fn clean_fixture_exits_zero() {
    let (code, stdout, stderr) = analyze_fixture("clean");
    assert_eq!(code, 0, "stdout: {stdout}\nstderr: {stderr}");
    assert!(stdout.contains("0 finding(s)"), "stdout: {stdout}");
}

#[test]
fn vfs_fixture_trips_vfs_io() {
    let (code, stdout, _) = analyze_fixture("vfs_bad");
    assert_eq!(code, 1);
    assert!(stdout.contains("[vfs-io/high]"), "stdout: {stdout}");
}

#[test]
fn lock_cycle_fixture_trips_lock_cycle() {
    let (code, stdout, _) = analyze_fixture("lock_cycle");
    assert_eq!(code, 1);
    assert!(stdout.contains("[lock-cycle/high]"), "stdout: {stdout}");
    assert!(stdout.contains("{alpha, beta}"), "stdout: {stdout}");
}

#[test]
fn lock_poison_fixture_trips_lock_poison() {
    let (code, stdout, _) = analyze_fixture("lock_poison");
    assert_eq!(code, 1);
    assert!(stdout.contains("[lock-poison/medium]"), "stdout: {stdout}");
}

#[test]
fn wire_fixture_trips_both_wire_rules() {
    let (code, stdout, _) = analyze_fixture("wire_bad");
    assert_eq!(code, 1);
    assert!(stdout.contains("[wire-cast/medium]"), "stdout: {stdout}");
    assert!(stdout.contains("[wire-alloc/high]"), "stdout: {stdout}");
}

#[test]
fn net_fixture_trips_net_io() {
    let (code, stdout, _) = analyze_fixture("net_bad");
    assert_eq!(code, 1);
    assert!(stdout.contains("[net-io/high]"), "stdout: {stdout}");
}

#[test]
fn panic_fixture_trips_panic_marker() {
    let (code, stdout, _) = analyze_fixture("panic_bad");
    assert_eq!(code, 1);
    assert!(stdout.contains("[panic-marker/medium]"), "stdout: {stdout}");
}

#[test]
fn json_report_is_pinned_byte_for_byte() {
    let (code, stdout, _) = xtask(&["analyze", "--json", "--root", &fixture("vfs_bad")]);
    assert_eq!(code, 1);
    assert_eq!(
        stdout,
        "{\"tool\":\"xtask-analyze\",\"schema\":1,\"clean\":false,\"files\":2,\
         \"findings\":[{\"rule\":\"vfs-io\",\"severity\":\"high\",\
         \"file\":\"crates/store/src/lib.rs\",\"line\":5,\
         \"message\":\"direct `std::fs` bypasses the Vfs shim \
         (crash-matrix blind spot): std::fs::write(path, data)\"},\
         {\"rule\":\"vfs-io\",\"severity\":\"high\",\
         \"file\":\"crates/tree/src/lib.rs\",\"line\":3,\
         \"message\":\"direct `std::fs` bypasses the Vfs shim \
         (crash-matrix blind spot): use std::fs;\"},\
         {\"rule\":\"vfs-io\",\"severity\":\"high\",\
         \"file\":\"crates/tree/src/lib.rs\",\"line\":7,\
         \"message\":\"direct `fs::` module access bypasses the Vfs shim \
         (crash-matrix blind spot): fs::read(path)\"}]}\n"
    );
}

#[test]
fn clean_json_report_is_pinned_byte_for_byte() {
    let (code, stdout, _) = xtask(&["analyze", "--json", "--root", &fixture("clean")]);
    assert_eq!(code, 0);
    assert_eq!(
        stdout,
        "{\"tool\":\"xtask-analyze\",\"schema\":1,\"clean\":true,\"files\":1,\"findings\":[]}\n"
    );
}

#[test]
fn shipped_tree_is_clean() {
    // The repository's own sources plus the checked-in allowlist must pass:
    // this is the wall ci.sh runs.
    let (code, stdout, stderr) = xtask(&["analyze"]);
    assert_eq!(code, 0, "stdout: {stdout}\nstderr: {stderr}");
}

#[test]
fn usage_errors_exit_two() {
    assert_eq!(xtask(&[]).0, 2);
    assert_eq!(xtask(&["frobnicate"]).0, 2);
    assert_eq!(xtask(&["analyze", "--bogus"]).0, 2);
    assert_eq!(xtask(&["analyze", "--root"]).0, 2);
}

#[test]
fn help_exits_zero_with_usage() {
    let (code, stdout, _) = xtask(&["help"]);
    assert_eq!(code, 0);
    assert!(stdout.contains("cargo xtask <task>"), "stdout: {stdout}");
    assert!(stdout.contains("analyze"), "stdout: {stdout}");
}
