//! Violation-free fixture crate: `analyze` must exit 0 here.

/// Adds without overflow.
pub fn add(a: u32, b: u32) -> u32 {
    a.wrapping_add(b)
}
