//! Fixture: two functions acquire the same locks in opposite orders.

use std::sync::Mutex;

/// A pair of counters behind independent locks.
pub struct Pair {
    alpha: Mutex<u32>,
    beta: Mutex<u32>,
}

impl Pair {
    /// Acquires alpha, then beta.
    pub fn forward(&self) -> u32 {
        let a = self.alpha.lock().unwrap_or_else(|e| e.into_inner());
        let b = self.beta.lock().unwrap_or_else(|e| e.into_inner());
        *a + *b
    }

    /// Acquires beta, then alpha — the conflicting order.
    pub fn backward(&self) -> u32 {
        let b = self.beta.lock().unwrap_or_else(|e| e.into_inner());
        let a = self.alpha.lock().unwrap_or_else(|e| e.into_inner());
        *b - *a
    }
}
