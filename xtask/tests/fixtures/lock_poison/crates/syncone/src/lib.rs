//! Fixture: lock poisoning punted to a panic via `.lock().unwrap()`.

use std::sync::Mutex;

/// A counter behind one lock.
pub struct Counter {
    state: Mutex<u32>,
}

impl Counter {
    /// Increments, panicking if a previous holder panicked.
    pub fn bump(&self) {
        let mut g = self.state.lock().unwrap();
        *g += 1;
    }
}
