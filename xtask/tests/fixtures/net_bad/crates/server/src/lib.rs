//! Fixture: raw socket I/O outside the netfault shim.

use std::io::Write;
use std::net::TcpStream;

/// Writes bytes straight onto a raw socket, bypassing the shim.
pub fn send(addr: &str, data: &[u8]) -> std::io::Result<()> {
    let mut stream = TcpStream::connect(addr)?;
    stream.write_all(data)
}
