//! Fixture: a `todo!` placeholder shipped in library code.

/// Not implemented yet — the marker the panic-audit rule forbids.
pub fn later() {
    todo!()
}
