//! Fixture: direct `std::fs` repository I/O outside the Vfs shim.

/// Writes bytes straight through `std::fs`, bypassing the shim.
pub fn persist(path: &std::path::Path, data: &[u8]) -> std::io::Result<()> {
    std::fs::write(path, data)
}
