//! Fixture: a tree walk reading source files without the Vfs shim.

use std::fs;

/// Reads a file straight through `fs::read`, bypassing the shim.
pub fn slurp(path: &std::path::Path) -> std::io::Result<Vec<u8>> {
    fs::read(path)
}
