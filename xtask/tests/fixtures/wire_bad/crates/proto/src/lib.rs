//! Fixture: truncating length cast and unbounded wire-sized allocation.

/// Announces a length as `u32`, silently truncating on 32-bit overflow.
pub fn announce(len: usize) -> u32 {
    len as u32
}

/// Allocates from a wire-derived count with no visible bound.
pub fn reserve(count: usize) -> Vec<u64> {
    Vec::with_capacity(count)
}
